"""``python -m repro.harness traces <convert|profile|sample|run> [...]``.

The trace pipeline's command-line face (see ``docs/traces.md``)::

    # capture a generated benchmark as a portable trace file
    traces convert bench:tpc-w big.bin --processors 4 --ops 250000

    # formats convert freely (content-sniffed, gzip-transparent)
    traces convert big.bin big.csv.gz

    # profile: reuse distance, sharing footprint, oracle Figure 2
    traces profile big.bin --json profile.json

    # shrink it 8x, emitting the sample-vs-full error report
    traces sample big.bin small.bin --rate 8 --report report.json

    # replay through the full simulator (and optionally a region sweep)
    traces run small.bin --config 4p-cgct
    traces run small.bin --sweep --workers 4

Every subcommand takes ``--runlog PATH`` and appends one JSON-lines
record; ``run`` additionally exports full telemetry with
``--telemetry-dir``. Trace files also work wherever a workload name
does (``trace:<path>``), so sweeps, experiments, conformance and the
campaign service replay them unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.common.errors import WorkloadError


def _add_runlog(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--runlog", metavar="PATH", default=None,
                        help="append one JSON-lines record to PATH")


def _runlog(args):
    if not args.runlog:
        return None
    from repro.harness.runlog import RunLog

    return RunLog(args.runlog)


def _resolve_source(src: str, args) -> str:
    """Materialize ``bench:<name>`` sources into a temporary npz file."""
    if not src.startswith("bench:"):
        return src
    from repro.workloads.benchmarks import build_benchmark

    name = src[len("bench:"):]
    workload = build_benchmark(
        name,
        num_processors=args.processors,
        seed=getattr(args, "trace_seed", 0),
        ops_per_processor=args.ops,
    )
    return workload


def _format_for(path: Path, override=None) -> str:
    if override:
        return override
    name = path.name[:-3] if path.name.endswith(".gz") else path.name
    if name.endswith(".csv"):
        return "csv"
    if name.endswith(".npz"):
        return "npz"
    return "binary"


# ----------------------------------------------------------------------
def _convert(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness traces convert",
        description="Convert between trace formats (csv, binary, npz), "
                    "or capture a generated benchmark as a trace file.",
    )
    parser.add_argument("src", help="trace file, or bench:<name> to "
                                    "generate a benchmark workload")
    parser.add_argument("dst", help="output path (.csv/.bin/.npz, "
                                    "optional .gz)")
    parser.add_argument("--format", choices=("csv", "binary", "npz"),
                        default=None,
                        help="output format (default: from dst suffix)")
    parser.add_argument("--processors", type=int, default=4,
                        help="machine width for bench: sources "
                             "(default 4)")
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per processor for bench: "
                             "sources (default: the profile's)")
    parser.add_argument("--trace-seed", type=int, default=0,
                        help="generator seed for bench: sources")
    parser.add_argument("--chunk", type=int, default=65_536,
                        help="streaming chunk size in records")
    _add_runlog(parser)
    args = parser.parse_args(argv)

    from repro.traces import reader
    from repro.workloads.trace import MultiTrace

    started = time.time()
    dst = Path(args.dst)
    out_format = _format_for(dst, args.format)
    source = _resolve_source(args.src, args)
    if isinstance(source, MultiTrace):
        records = reader.save_workload(source, dst, out_format)
        nprocs = source.num_processors
    else:
        info = reader.detect_format(source)
        if info.format == "npz" or out_format == "npz" \
                or info.num_processors is None:
            # No declared width (bare CSV) or no event order (npz):
            # materialize, then save.
            workload = reader.load_workload(source)
            records = reader.save_workload(workload, dst, out_format)
            nprocs = workload.num_processors
        else:
            nprocs = info.num_processors
            chunks = reader.read_events(source, chunk_records=args.chunk)
            if out_format == "csv":
                records = reader.write_csv(dst, chunks, nprocs)
            else:
                records = reader.write_binary(
                    dst, chunks, nprocs, record_count=info.record_count,
                )
    elapsed = time.time() - started
    print(f"[traces convert: {records} records, {nprocs} processors "
          f"-> {dst} ({out_format}) in {elapsed:.1f}s]")
    runlog = _runlog(args)
    if runlog is not None:
        with runlog:
            runlog.record("traces-convert", src=str(args.src),
                          dst=str(dst), format=out_format,
                          records=records, processors=nprocs,
                          elapsed=elapsed)
    return 0


# ----------------------------------------------------------------------
def _profile(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness traces profile",
        description="Profile a trace: reuse-distance histogram, "
                    "per-region sharing footprint, oracle Figure-2 "
                    "broadcast profile (no simulation).",
    )
    parser.add_argument("src", help="trace file (csv/binary/npz), or "
                                    "bench:<name>")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full profile to PATH as JSON")
    parser.add_argument("--line-bytes", type=int, default=64)
    parser.add_argument("--region-bytes", type=int, default=512)
    parser.add_argument("--processors", type=int, default=4,
                        help="machine width for bench: sources")
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per processor for bench: "
                             "sources")
    parser.add_argument("--chunk", type=int, default=65_536)
    _add_runlog(parser)
    args = parser.parse_args(argv)

    from repro.traces import profiler
    from repro.workloads.trace import MultiTrace

    started = time.time()
    source = _resolve_source(args.src, args)
    if isinstance(source, MultiTrace):
        profile = profiler.profile_workload(
            source, line_bytes=args.line_bytes,
            region_bytes=args.region_bytes,
        )
    else:
        profile = profiler.profile_file(
            source, line_bytes=args.line_bytes,
            region_bytes=args.region_bytes, chunk_records=args.chunk,
        )
    elapsed = time.time() - started
    print(render_profile(profile))
    print(f"[traces profile: {profile.accesses} accesses in "
          f"{elapsed:.1f}s]")
    if args.json:
        profile.save_json(args.json)
        print(f"[profile written to {args.json}]")
    runlog = _runlog(args)
    if runlog is not None:
        with runlog:
            runlog.record(
                "traces-profile", src=str(args.src),
                accesses=profile.accesses,
                fraction_unnecessary=profile.oracle.fraction_unnecessary,
                mean_reuse_distance=profile.reuse.mean,
                regions=profile.regions_touched,
                shared_fraction=profile.shared_region_fraction,
                elapsed=elapsed,
            )
    return 0


def render_profile(profile) -> str:
    """Human-readable profile summary."""
    lines = [
        f"trace profile: {profile.accesses} accesses, "
        f"{profile.num_processors} processors, "
        f"{profile.lines_touched} lines, "
        f"{profile.regions_touched} regions "
        f"({profile.region_bytes} B regions)",
        f"  op mix: " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(profile.op_counts.items())
        ),
        f"  reuse distance: mean {profile.reuse.mean:.1f}, "
        f"max {profile.reuse.max_distance}, "
        f"cold {profile.reuse.cold} "
        f"({profile.reuse.cold / profile.accesses:.1%})"
        if profile.accesses else "  reuse distance: (empty trace)",
        f"  sharing: {profile.regions_shared} shared regions "
        f"({profile.shared_region_fraction:.1%}), "
        f"{profile.regions_write_shared} write-shared, "
        f"{profile.upgrades} upgrades",
        f"  oracle figure 2: {profile.oracle.unnecessary} of "
        f"{profile.oracle.total} accesses need no broadcast "
        f"({profile.oracle.fraction_unnecessary:.1%} unnecessary)",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
def _sample(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness traces sample",
        description="Region-aligned spatial sampling: keep a "
                    "deterministic 1/RATE of regions, write the sampled "
                    "trace, and emit a sample-vs-full error report.",
    )
    parser.add_argument("src", help="trace file (csv or binary)")
    parser.add_argument("dst", help="sampled trace output path")
    parser.add_argument("--rate", type=int, required=True,
                        help="keep 1 in RATE regions")
    parser.add_argument("--seed", type=int, default=0,
                        help="sampling hash seed (default 0)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the error report to PATH as JSON")
    parser.add_argument("--bound", action="append", default=[],
                        metavar="METRIC=VALUE",
                        help="override a per-metric error bound "
                             "(repeatable)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when the sample violates its "
                             "error bounds")
    parser.add_argument("--line-bytes", type=int, default=64)
    parser.add_argument("--region-bytes", type=int, default=512)
    parser.add_argument("--chunk", type=int, default=65_536)
    _add_runlog(parser)
    args = parser.parse_args(argv)

    from repro.traces import sample as sample_mod

    bounds = {}
    for spec in args.bound:
        name, _, value = spec.partition("=")
        if name not in sample_mod.DEFAULT_BOUNDS:
            parser.error(
                f"unknown metric {name!r} (bounds: "
                f"{', '.join(sample_mod.DEFAULT_BOUNDS)})"
            )
        try:
            bounds[name] = float(value)
        except ValueError:
            parser.error(f"bad bound {spec!r}")

    started = time.time()
    report = sample_mod.sample_file(
        args.src, args.dst, rate=args.rate, seed=args.seed,
        region_bytes=args.region_bytes, line_bytes=args.line_bytes,
        chunk_records=args.chunk, bounds=bounds,
    )
    elapsed = time.time() - started
    kept = report["accesses"]["sampled"]
    total = report["accesses"]["full"]
    print(f"[traces sample: kept {kept} of {total} accesses "
          f"({kept / total:.1%} at rate {args.rate}), "
          f"{report['regions']['sampled']} of "
          f"{report['regions']['full']} regions -> {args.dst} "
          f"in {elapsed:.1f}s]" if total else
          f"[traces sample: empty trace -> {args.dst}]")
    for name, cell in sorted(report["metrics"].items()):
        flag = "ok  " if cell["within"] else "FAIL"
        print(f"  {flag} {name}: full {cell['full']:.4f} vs sampled "
              f"{cell['sampled']:.4f} (rel err {cell['rel_error']:.3f}, "
              f"bound {cell['bound']})")
    verdict = "within bounds" if report["within_bounds"] \
        else "OUTSIDE bounds"
    print(f"[error report: {verdict}]")
    if args.report:
        sample_mod.save_report(report, args.report)
        print(f"[error report written to {args.report}]")
    runlog = _runlog(args)
    if runlog is not None:
        with runlog:
            runlog.record(
                "traces-sample", src=str(args.src), dst=str(args.dst),
                rate=args.rate, seed=args.seed, kept=kept, total=total,
                within_bounds=report["within_bounds"], elapsed=elapsed,
            )
    if args.enforce and not report["within_bounds"]:
        return 1
    return 0


# ----------------------------------------------------------------------
def _run(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness traces run",
        description="Replay a trace file through the full simulator "
                    "(optionally as a region-size sweep through the "
                    "parallel harness).",
    )
    parser.add_argument("src", help="trace file (csv/binary/npz)")
    parser.add_argument("--config", default=None,
                        help="perf-config name (e.g. 4p-cgct; default: "
                             "<N>p-cgct for the trace's width)")
    parser.add_argument("--baseline", action="store_true",
                        help="with no --config, use <N>p-baseline")
    parser.add_argument("--ops", type=int, default=None,
                        help="truncate each processor's stream")
    parser.add_argument("--seed", type=int, default=0,
                        help="timing perturbation seed")
    parser.add_argument("--warmup", type=float, default=0.0,
                        help="warm-up fraction (default 0: captured "
                             "traces carry their own warm state)")
    parser.add_argument("--sweep", action="store_true",
                        help="sweep region sizes 256/512/1024 B through "
                             "the harness instead of one run")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for --sweep")
    parser.add_argument("--telemetry-dir", metavar="DIR", default=None,
                        help="instrument the (single) run and export "
                             "telemetry JSON/CSV/Prometheus under DIR")
    _add_runlog(parser)
    args = parser.parse_args(argv)

    from repro.traces.reader import load_workload
    from repro.workloads.benchmarks import TRACE_PREFIX

    src = Path(args.src)
    probe = load_workload(src)
    width = probe.num_processors
    name = TRACE_PREFIX + str(src)
    runlog = _runlog(args)
    try:
        if args.sweep:
            return _run_sweep(args, name, width, runlog)
        return _run_single(args, name, width, runlog)
    finally:
        if runlog is not None:
            runlog.close()


def _bench_config(args, width: int):
    from repro.harness.perfbench import PERF_CONFIGS, bench_config

    if args.config:
        return args.config, bench_config(args.config)
    widths = sorted({p for _, p, _ in PERF_CONFIGS})
    fits = [p for p in widths if p >= width]
    if not fits:
        raise WorkloadError(
            f"trace is {width} processors wide; the widest canonical "
            f"machine has {widths[-1]} (pass --config)"
        )
    config_name = f"{fits[0]}p-{'baseline' if args.baseline else 'cgct'}"
    return config_name, bench_config(config_name)


def _run_single(args, name: str, width: int, runlog) -> int:
    from repro.system.simulator import run_workload
    from repro.workloads.benchmarks import build_benchmark

    config_name, config = _bench_config(args, width)
    workload = build_benchmark(
        name, num_processors=config.num_processors,
        ops_per_processor=args.ops,
    )
    registry = None
    if args.telemetry_dir:
        from repro.telemetry import TelemetryRegistry

        registry = TelemetryRegistry(interval=100_000)
    started = time.time()
    result = run_workload(
        config, workload, seed=args.seed,
        warmup_fraction=args.warmup, telemetry=registry,
    )
    elapsed = time.time() - started
    print(f"[{name} on {config_name}: {result.cycles} cycles, "
          f"{result.stats.total_external} external requests, "
          f"{result.stats.total_broadcasts} broadcasts, "
          f"{result.fraction_avoided():.1%} avoided, "
          f"{result.fraction_unnecessary():.1%} unnecessary "
          f"in {elapsed:.1f}s]")
    if registry is not None:
        from repro.telemetry import export as tele_export

        out = Path(args.telemetry_dir)
        out.mkdir(parents=True, exist_ok=True)
        tele_export.save_json(registry, out / "telemetry.json")
        tele_export.save_csv(registry, out / "telemetry.csv")
        tele_export.save_prometheus(registry, out / "telemetry.prom")
        print(f"[telemetry written to {out}/telemetry.{{json,csv,prom}}]")
    if runlog is not None:
        runlog.record(
            "traces-run", src=str(args.src), config=config_name,
            cycles=result.cycles,
            external=result.stats.total_external,
            broadcasts=result.stats.total_broadcasts,
            fraction_avoided=result.fraction_avoided(),
            fraction_unnecessary=result.fraction_unnecessary(),
            seed=args.seed, elapsed=elapsed,
        )
    return 0


def _run_sweep(args, name: str, width: int, runlog) -> int:
    from repro.harness.sweep import ConfigSweep

    config_name, config = _bench_config(args, width)
    if not config.cgct_enabled:
        raise WorkloadError("--sweep varies the region size; use a "
                            "cgct config")
    from repro.harness.perfbench import bench_config

    baseline = bench_config(config_name.replace("cgct", "baseline"))
    sweep = ConfigSweep(
        base=config,
        axes={"geometry.region_bytes": [256, 512, 1024]},
        baseline=baseline,
    )
    ops = args.ops if args.ops is not None else 1 << 62
    records = sweep.run(
        [name], ops_per_processor=ops, warmup_fraction=args.warmup,
        seed=args.seed, workers=args.workers, runlog=runlog,
    )
    for record in records:
        print(f"  region {record['geometry.region_bytes']:>5} B: "
              f"runtime reduction "
              f"{record['runtime_reduction']:+.2%}, "
              f"avoided {record['fraction_avoided']:.1%}, "
              f"cycles {record['cycles']:.0f}")
    print(f"[traces run --sweep: {len(records)} grid points on "
          f"{config_name} via the sweep harness]")
    return 0


# ----------------------------------------------------------------------
def traces_command(argv=None) -> int:
    """Entry point for the ``traces`` subcommand."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    commands = {
        "convert": _convert,
        "profile": _profile,
        "sample": _sample,
        "run": _run,
    }
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print(f"subcommands: {', '.join(commands)}")
        return 0
    command = commands.get(argv[0])
    if command is None:
        print(f"unknown traces subcommand {argv[0]!r} "
              f"(expected {', '.join(commands)})", file=sys.stderr)
        return 2
    try:
        return command(argv[1:])
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(traces_command())
