"""Real-trace ingestion, profiling, and spatial sampling.

The paper evaluates CGCT on traces of real commercial and scientific
workloads; this package turns the simulator from "nine calibrated
generators" into an instrument that answers CGCT questions about *any*
captured workload:

* :mod:`repro.traces.reader` — streamed CSV / packed-binary access-trace
  readers and writers (chunked, gzip-transparent, schema-validated)
  that materialize into the existing
  :class:`~repro.workloads.trace.MultiTrace`; ``trace:<path>`` workload
  names resolve through
  :func:`~repro.workloads.benchmarks.build_benchmark`, so trace-driven
  runs flow through the simulator, harness, workload cache, and
  conformance machinery unchanged.
* :mod:`repro.traces.profiler` — one streaming pass computing the
  reuse-distance histogram (exact Olken/Fenwick stack distances),
  per-region sharing footprints, and the oracle Figure-2
  broadcast-needed/unnecessary profile straight from the trace (golden
  may-hold model, no simulation).
* :mod:`repro.traces.sample` — a region-aligned spatial sampler
  (hash-of-region-id mod rate) that shrinks large traces to
  simulator-sized ones while preserving those profiles, emitting a
  machine-readable sample-vs-full error report.
* :mod:`repro.traces.cli` — the ``traces`` subcommand
  (``convert | profile | sample | run``) of ``python -m repro.harness``.

See ``docs/traces.md`` for formats, metric definitions, and the
sampler's error-bound methodology.
"""

from repro.traces.profiler import (
    TraceProfile,
    TraceProfiler,
    profile_events,
    profile_file,
    profile_workload,
)
from repro.traces.reader import (
    EventChunk,
    TraceInfo,
    detect_format,
    events_to_workload,
    load_workload,
    read_events,
    save_workload,
    trace_file_digest,
    workload_to_events,
    write_binary,
    write_csv,
)
from repro.traces.sample import (
    DEFAULT_BOUNDS,
    SpatialSampler,
    build_error_report,
    load_report,
    sample_file,
    save_report,
    validate_report,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "EventChunk",
    "SpatialSampler",
    "TraceInfo",
    "TraceProfile",
    "TraceProfiler",
    "build_error_report",
    "detect_format",
    "events_to_workload",
    "load_report",
    "load_workload",
    "profile_events",
    "profile_file",
    "profile_workload",
    "read_events",
    "sample_file",
    "save_report",
    "save_workload",
    "trace_file_digest",
    "validate_report",
    "workload_to_events",
    "write_binary",
    "write_csv",
]
