"""Calibration sweep: run every benchmark baseline vs CGCT-512B and
print the Figure 2 / 7 / 8 / 10 headline numbers against targets.

Goes through the harness result cache and (optionally) the parallel
runner::

    PYTHONPATH=src python scripts/calibrate.py                 # serial
    PYTHONPATH=src python scripts/calibrate.py 20000 tpc-w     # subset
    PYTHONPATH=src python scripts/calibrate.py --workers 4 \\
        --cache-dir .repro-cache --runlog calibrate.jsonl
"""
import argparse
import time

from repro import SystemConfig, benchmark_names
from repro.harness.cache import DiskCache
from repro.harness.parallel import ExperimentTask, ParallelRunner
from repro.harness.runcache import RunCache
from repro.harness.runlog import RunLog
from repro.system.machine import OracleCategory

TARGETS = {  # paper-shape targets: unnecessary fraction, runtime reduction
    "ocean": (0.72, 0.06), "raytrace": (0.80, 0.05), "barnes": (0.40, 0.02),
    "specint2000rate": (0.94, 0.05), "specweb99": (0.75, 0.07),
    "specjbb2000": (0.70, 0.06), "tpc-w": (0.85, 0.14),
    "tpc-b": (0.65, 0.08), "tpc-h": (0.17, 0.01),
}
WARMUP = 0.4


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("ops", nargs="?", type=int, default=60_000)
    parser.add_argument("names", nargs="*", default=None)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--cache-dir", default=None,
                        help="enable the on-disk result cache at this path")
    parser.add_argument("--runlog", default=None)
    args = parser.parse_args()

    names = args.names or benchmark_names()
    disk = DiskCache(args.cache_dir) if args.cache_dir else None
    cache = RunCache(disk=disk)
    runlog = RunLog(args.runlog) if args.runlog else None

    base_cfg = SystemConfig.paper_baseline()
    cgct_cfg = SystemConfig.paper_cgct(512)
    tasks = [
        ExperimentTask(name, config, args.ops, warmup_fraction=WARMUP)
        for name in names for config in (base_cfg, cgct_cfg)
    ]
    t0 = time.time()
    runner = ParallelRunner(workers=args.workers, cache=disk, runlog=runlog)
    try:
        for task, result in zip(tasks, runner.run(tasks)):
            cache.preload(task.benchmark, task.config, task.ops_per_processor,
                          result, warmup_fraction=WARMUP)
    finally:
        if runlog is not None:
            runlog.close()
    grid_s = time.time() - t0

    unnecs, rrs = [], []
    for name in names:
        base = cache.run(name, base_cfg, args.ops, warmup_fraction=WARMUP)
        cgct = cache.run(name, cgct_cfg, args.ops, warmup_fraction=WARMUP)
        unnec = base.fraction_unnecessary()
        rr = cgct.runtime_reduction_over(base)
        unnecs.append(unnec)
        rrs.append(rr)
        tu, tr = TARGETS[name]
        cats = " ".join(
            f"{c.name[:2]}={base.category_fraction(c, of='unnecessary'):.2f}"
            for c in OracleCategory
        )
        print(f"{name:16s} unnec={unnec:.3f} (t{tu:.2f}) rr={rr:+.3f} (t{tr:.2f}) "
              f"avoided={cgct.fraction_avoided():.3f} [{cats}] "
              f"traffic={base.broadcasts_per_window():.0f}->{cgct.broadcasts_per_window():.0f}",
              flush=True)
    print(f"MEAN unnec={sum(unnecs)/len(unnecs):.3f} (paper 0.67) "
          f"rr={sum(rrs)/len(rrs):+.3f} (paper 0.088) "
          f"[{len(tasks)} runs in {grid_s:.0f}s, workers={args.workers or 1}]")


if __name__ == "__main__":
    main()
