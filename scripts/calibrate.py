"""Calibration sweep: run every benchmark baseline vs CGCT-512B and
print the Figure 2 / 7 / 8 / 10 headline numbers against targets."""
import sys
import time

from repro import SystemConfig, run_workload, build_benchmark, benchmark_names
from repro.system.machine import OracleCategory

TARGETS = {  # paper-shape targets: unnecessary fraction, runtime reduction
    "ocean": (0.72, 0.06), "raytrace": (0.80, 0.05), "barnes": (0.40, 0.02),
    "specint2000rate": (0.94, 0.05), "specweb99": (0.75, 0.07),
    "specjbb2000": (0.70, 0.06), "tpc-w": (0.85, 0.14),
    "tpc-b": (0.65, 0.08), "tpc-h": (0.17, 0.01),
}

def main():
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    names = sys.argv[2:] or benchmark_names()
    unnecs, rrs = [], []
    for name in names:
        t0 = time.time()
        trace = build_benchmark(name, ops_per_processor=ops)
        base = run_workload(SystemConfig.paper_baseline(), trace, warmup_fraction=0.4)
        cgct = run_workload(SystemConfig.paper_cgct(512), trace, warmup_fraction=0.4)
        unnec = base.fraction_unnecessary()
        rr = cgct.runtime_reduction_over(base)
        unnecs.append(unnec); rrs.append(rr)
        tu, tr = TARGETS[name]
        cats = " ".join(
            f"{c.name[:2]}={base.category_fraction(c, of='unnecessary'):.2f}"
            for c in OracleCategory
        )
        print(f"{name:16s} unnec={unnec:.3f} (t{tu:.2f}) rr={rr:+.3f} (t{tr:.2f}) "
              f"avoided={cgct.fraction_avoided():.3f} [{cats}] "
              f"traffic={base.broadcasts_per_window():.0f}->{cgct.broadcasts_per_window():.0f} "
              f"({time.time()-t0:.0f}s)", flush=True)
    print(f"MEAN unnec={sum(unnecs)/len(unnecs):.3f} (paper 0.67) "
          f"rr={sum(rrs)/len(rrs):+.3f} (paper 0.088)")

if __name__ == "__main__":
    main()
