#!/usr/bin/env python3
"""Protocol walkthrough: watch the Region Coherence Array think.

Replays the paper's Section 1.1 narrative — and a few more scenarios —
on a real two-chip machine, printing each processor's region state after
every access. No workload generator, no statistics: just the protocol.

Run:  python examples/protocol_walkthrough.py
"""

from repro.system.machine import Machine, RequestPath
from repro.system.config import SystemConfig, TimingParameters
from repro.rca.states import RegionState

ADDRESS = 0x4_2000  # some line; its 512B region is ADDRESS >> 9


def build_machine() -> Machine:
    import dataclasses

    config = dataclasses.replace(
        SystemConfig.paper_cgct(region_bytes=512),
        prefetch_enabled=False,
        timing=TimingParameters(perturbation_cycles=0),
    )
    return Machine(config)


def show(machine: Machine, label: str) -> None:
    region = machine.geometry.region_of(ADDRESS)
    states = []
    for node in machine.nodes:
        entry = node.region_entry(region)
        states.append(entry.state.value if entry else "I")
    counts = []
    for node in machine.nodes:
        entry = node.region_entry(region)
        counts.append(entry.line_count if entry else 0)
    print(f"  {label:<46s} region states: "
          + "  ".join(f"P{i}:{s}({c})" for i, (s, c) in
                      enumerate(zip(states, counts))))


def main() -> None:
    machine = Machine.__new__(Machine)  # placate linters; rebuilt below
    machine = build_machine()
    now = [0]

    def step(description, action):
        action(now[0])
        now[0] += 10_000
        show(machine, description)

    print("Scenario 1 — the paper's Section 1.1 example:")
    print("  Processor A (P0) loads; nobody else caches the region.\n")
    step("P0 load (miss, broadcast, region exclusive)",
         lambda t: machine.load(0, ADDRESS, t))
    step("P0 load of the NEXT line (direct to memory!)",
         lambda t: machine.load(0, ADDRESS + 64, t))
    step("P0 store to a third line (direct, silent DI)",
         lambda t: machine.store(0, ADDRESS + 128, t))

    print("\nScenario 2 — a reader appears on the other chip:")
    step("P2 loads P0's line (c2c; P0's region downgrades)",
         lambda t: machine.load(2, ADDRESS, t))
    step("P0 ifetches in the region (externally clean: direct)",
         lambda t: machine.ifetch(0, ADDRESS + 192, t))
    step("P0 stores to the shared line (UPGRADE broadcast)",
         lambda t: machine.store(0, ADDRESS, t))

    print("\nScenario 3 — migratory data and self-invalidation:")
    step("P2 stores, taking one of P0's four lines",
         lambda t: machine.store(2, ADDRESS, t))
    step("P1 takes every cached line (P0's three, P2's one)",
         lambda t: [machine.store(1, ADDRESS + o, t)
                    for o in (64, 128, 192, 0)])
    step("P1 touches one more line: empty peers self-invalidate",
         lambda t: machine.store(1, ADDRESS + 256, t))
    step("P1 now owns the region exclusively (direct)",
         lambda t: machine.load(1, ADDRESS + 320, t))

    print("\nPath counts for the whole walkthrough:")
    for (request, path), count in sorted(
        machine.request_paths.items(), key=lambda kv: str(kv[0])
    ):
        print(f"  {request.value:12s} {path.value:12s} {count}")

    direct = sum(n for (r, p), n in machine.request_paths.items()
                 if p is RequestPath.DIRECT)
    print(f"\n{direct} requests went straight to memory without a broadcast.")


if __name__ == "__main__":
    main()
