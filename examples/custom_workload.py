#!/usr/bin/env python3
"""Building your own workload profile.

Shows the full workload-authoring API: define a producer/consumer-style
profile from scratch, generate its trace, inspect the oracle profile,
and measure what CGCT does for it — the workflow for studying an access
pattern the built-in Table 4 suite does not cover.

Run:  python examples/custom_workload.py
"""

from repro import SystemConfig, SyntheticWorkload, WorkloadProfile, run_workload
from repro.analysis.oracle import profile_from_result
from repro.system.machine import OracleCategory
from repro.workloads.generator import PhaseSpec

KB = 1 << 10
MB = 1 << 20


def make_profile() -> WorkloadProfile:
    """A pipeline-style workload: mostly private stages, a migratory
    hand-off buffer, and a modest shared code footprint."""
    return WorkloadProfile(
        name="pipeline",
        description="producer/consumer pipeline with private stages",
        category="Custom",
        mean_gap=4.0,
        private_bytes=3 * MB,          # per-stage scratch
        shared_ro_bytes=1 * MB,        # configuration tables
        shared_rw_bytes=512 * KB,      # the hand-off buffers
        code_bytes=512 * KB,
        mean_run_lines=6.0,            # buffer copies are sequential
        store_fraction=0.35,
        ro_bias=0.2,                   # config tables read by everyone
        rw_owner_store_fraction=0.7,   # the producer writes...
        rw_other_store_fraction=0.05,  # ...consumers mostly read
        epoch_ops=2_000,               # hand-offs rotate quickly
        hot_fraction=0.5,
        hot_pool_fraction=0.15,
        phases=(
            PhaseSpec(
                fraction=1.0,
                p_private=0.45,
                p_shared_ro=0.10,
                p_shared_rw=0.25,
                p_code=0.19,
                p_page_zero=0.01,
            ),
        ),
    )


def main() -> None:
    profile = make_profile()
    workload = SyntheticWorkload(profile, num_processors=4).build(
        seed=0, ops_per_processor=20_000
    )
    print(f"generated {len(workload):,} operations for "
          f"{workload.num_processors} processors\n")

    base = run_workload(SystemConfig.paper_baseline(), workload,
                        warmup_fraction=0.4)
    oracle = profile_from_result(base)
    print("oracle profile of the conventional system:")
    print(f"  unnecessary broadcasts: {oracle.unnecessary_fraction:.1%}")
    for category in OracleCategory:
        print(f"    {category.value:16s} {oracle.category(category):6.1%}")

    for region_bytes in (256, 512, 1024):
        cgct = run_workload(SystemConfig.paper_cgct(region_bytes), workload,
                            warmup_fraction=0.4)
        print(f"\nCGCT {region_bytes:>4}B regions: "
              f"avoided {cgct.fraction_avoided():.1%}, "
              f"run time {cgct.runtime_reduction_over(base):+.1%}, "
              f"traffic {base.broadcasts_per_window():.0f} -> "
              f"{cgct.broadcasts_per_window():.0f} per 100K cycles")


if __name__ == "__main__":
    main()
