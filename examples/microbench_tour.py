#!/usr/bin/env python3
"""Tour of the microbenchmarks: CGCT where you can check the math.

Each microbenchmark has a paper-napkin prediction for how Coarse-Grain
Coherence Tracking behaves; this script runs all five and prints the
prediction next to the measurement. A good first stop for building
intuition about region states.

Run:  python examples/microbench_tour.py
"""

from repro import SystemConfig, run_workload
from repro.workloads import microbench


def show(name, prediction, workload, region_bytes=512):
    base = run_workload(SystemConfig.paper_baseline(), workload)
    cgct = run_workload(SystemConfig.paper_cgct(region_bytes), workload)
    print(f"\n== {name} (regions {region_bytes}B) ==")
    print(f"   prediction : {prediction}")
    print(f"   measured   : opportunity {base.fraction_unnecessary():.1%}, "
          f"avoided {cgct.fraction_avoided():.1%}, "
          f"run-time {cgct.runtime_reduction_over(base):+.1%}, "
          f"broadcasts {base.stats.total_broadcasts} -> "
          f"{cgct.stats.total_broadcasts}")


def main() -> None:
    show(
        "streaming",
        "private sweeps: one broadcast per region, 7 of 8 fills direct",
        microbench.streaming(lines_per_processor=512),
    )
    show(
        "ping-pong",
        "pure migratory line: everything is a necessary c2c broadcast",
        microbench.ping_pong(iterations=400),
    )
    show(
        "producer/consumer",
        "writer fills exclusively; readers must broadcast to find the data",
        microbench.producer_consumer(lines=256),
    )
    show(
        "false region sharing @512B",
        "256B parcels in 1KB blocks: 512B regions span two owners — "
        "little avoidable",
        microbench.false_region_sharing(blocks=64),
        region_bytes=512,
    )
    show(
        "false region sharing @256B",
        "parcel-sized regions are single-owner: clearly better than 512B "
        "(the full 3-of-4 shows with prefetching off, whose streams run "
        "across parcel boundaries here)",
        microbench.false_region_sharing(blocks=64),
        region_bytes=256,
    )
    show(
        "uniform random",
        "no locality, heavy sharing: little for the RCA to exploit",
        microbench.uniform_random(ops_per_processor=3000),
    )


if __name__ == "__main__":
    main()
