#!/usr/bin/env python3
"""Ablation and extension study driven through the experiment API.

Shows how to use the harness programmatically: run the design-ablation,
Section 6 extension, and energy experiments on a chosen workload set and
print their tables. This is the "what actually matters in CGCT?" tour:

* How much does self-invalidation buy on migratory data?
* What does the scaled-back one-bit snoop response cost?
* How close does RegionScout get with a fraction of the storage?
* Do the paper's future-work ideas (prefetch filtering, DRAM-speculation
  filtering, region-state prefetch, owner prediction) pay off?

Run:  python examples/ablation_study.py [ops_per_processor]
"""

import dataclasses
import sys

from repro import SystemConfig, build_benchmark, run_workload
from repro.harness.experiments import RunOptions, run_experiment
from repro.harness.runcache import RunCache


def owner_prediction_mini_study(ops: int) -> None:
    """Owner prediction is not part of the registered experiments yet —
    drive it directly as an example of ad-hoc configuration studies."""
    print("\n== owner prediction on migratory data (barnes) ==")
    trace = build_benchmark("barnes", ops_per_processor=ops)
    base = run_workload(SystemConfig.paper_baseline(), trace,
                        warmup_fraction=0.4)
    plain = run_workload(SystemConfig.paper_cgct(512), trace,
                         warmup_fraction=0.4)
    predicted_cfg = dataclasses.replace(
        SystemConfig.paper_cgct(512), owner_prediction=True)
    predicted = run_workload(predicted_cfg, trace, warmup_fraction=0.4)
    print(f"  CGCT:            run-time {plain.runtime_reduction_over(base):+.1%}, "
          f"avoided {plain.fraction_avoided():.1%}")
    print(f"  + owner predict: run-time {predicted.runtime_reduction_over(base):+.1%}, "
          f"avoided {predicted.fraction_avoided():.1%}")


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    options = RunOptions(
        ops_per_processor=ops,
        seeds=1,
        benchmarks=("barnes", "tpc-w", "specweb99"),
    )
    cache = RunCache()
    for experiment_id in ("ablations", "extensions", "energy"):
        result = run_experiment(experiment_id, options, cache)
        print(result.render())
        print()
    owner_prediction_mini_study(ops)


if __name__ == "__main__":
    main()
