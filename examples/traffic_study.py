#!/usr/bin/env python3
"""Broadcast-traffic study (Figure 10 in miniature).

Runs every benchmark on the baseline and the 512 B CGCT system and
plots (in ASCII) the average and peak broadcasts per 100 K cycles —
the scalability argument of Section 5.3: CGCT cuts both the average
and the worst-case load on the address interconnect by more than half
for broadcast-bound workloads.

Run:  python examples/traffic_study.py [ops_per_processor]
"""

import sys

from repro import SystemConfig, benchmark_names, build_benchmark, run_workload
from repro.harness.render import render_bar


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    baseline_cfg = SystemConfig.paper_baseline()
    cgct_cfg = SystemConfig.paper_cgct(512)

    print(f"{ops} ops/processor, 40% warm-up; bars scaled to the busiest "
          "baseline.\n")
    results = []
    for name in benchmark_names():
        workload = build_benchmark(name, ops_per_processor=ops)
        base = run_workload(baseline_cfg, workload, warmup_fraction=0.4)
        cgct = run_workload(cgct_cfg, workload, warmup_fraction=0.4)
        results.append((name, base, cgct))
        print(f"  {name} done", flush=True)

    scale = max(base.broadcasts_per_window() for _n, base, _c in results)
    print(f"\n{'benchmark':16s} {'broadcasts / 100K cycles':>25s}")
    for name, base, cgct in results:
        base_avg = base.broadcasts_per_window()
        cgct_avg = cgct.broadcasts_per_window()
        print(f"{name:16s} baseline {base_avg:7.0f} "
              f"{render_bar(base_avg / scale, 32)}")
        print(f"{'':16s} cgct-512 {cgct_avg:7.0f} "
              f"{render_bar(cgct_avg / scale, 32)}")

    print(f"\n{'benchmark':16s} {'peak window':>12s} {'baseline -> cgct':>20s}")
    for name, base, cgct in results:
        ratio = (base.traffic_peak_per_window /
                 max(1, cgct.traffic_peak_per_window))
        print(f"{name:16s} {base.traffic_peak_per_window:>6} -> "
              f"{cgct.traffic_peak_per_window:<6}  ({ratio:.1f}x lower)")

    total_base = sum(b.broadcasts_per_window() for _n, b, _c in results)
    total_cgct = sum(c.broadcasts_per_window() for _n, _b, c in results)
    print(f"\nsuite-average traffic reduction: "
          f"{1 - total_cgct / total_base:.1%}")


if __name__ == "__main__":
    main()
