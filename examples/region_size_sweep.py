#!/usr/bin/env python3
"""Region-size sweep (Figures 7 and 8 in miniature).

For a chosen workload, sweeps the region size over 256 B / 512 B / 1 KB
(plus line-grain 64 B as a degenerate reference) and reports, per size:
the fraction of broadcasts avoided, the run-time reduction, and the RCA
occupancy statistics that explain the trade-off — bigger regions reach
farther per entry but suffer more region-grain false sharing.

Run:  python examples/region_size_sweep.py [benchmark] [ops_per_processor]
"""

import sys

from repro import SystemConfig, build_benchmark, run_workload
from repro.harness.render import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "specweb99"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"workload: {name} ({ops} ops/processor)\n")
    workload = build_benchmark(name, ops_per_processor=ops)
    base = run_workload(SystemConfig.paper_baseline(), workload,
                        warmup_fraction=0.4)
    print(f"baseline: {base.cycles:,} cycles, "
          f"{base.stats.total_external} external requests, "
          f"{base.fraction_unnecessary():.1%} unnecessary (oracle)\n")

    rows = []
    for region_bytes in (64, 256, 512, 1024):
        cgct = run_workload(
            SystemConfig.paper_cgct(region_bytes=region_bytes), workload,
            warmup_fraction=0.4,
        )
        rows.append([
            f"{region_bytes}B",
            f"{cgct.fraction_avoided():.1%}",
            f"{cgct.runtime_reduction_over(base):+.1%}",
            f"{cgct.rca_mean_line_count:.2f}",
            cgct.rca_self_invalidations,
            cgct.l2_region_forced_evictions,
        ])
    print(render_table(
        ["Region", "Avoided", "Run-time", "Lines/region",
         "Self-invalidations", "Forced L2 evictions"],
        rows,
    ))
    print("\nThe paper finds 512B the sweet spot: small regions waste RCA")
    print("reach, large ones amplify region-grain false sharing (Sec. 5.2).")


if __name__ == "__main__":
    main()
