#!/usr/bin/env python3
"""Quickstart: baseline vs Coarse-Grain Coherence Tracking in 40 lines.

Builds the paper's four-processor system twice — once as a conventional
broadcast machine, once with 512 B Region Coherence Arrays — replays the
same synthetic TPC-W trace on both, and prints the headline comparison:
how many broadcasts were avoided and how much faster the run finished.

Run:  python examples/quickstart.py [ops_per_processor]
"""

import sys

from repro import SystemConfig, build_benchmark, run_workload
from repro.harness.render import render_bar


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"Generating the synthetic TPC-W workload ({ops} ops/processor)...")
    workload = build_benchmark("tpc-w", ops_per_processor=ops)

    print("Running the conventional broadcast baseline...")
    base = run_workload(SystemConfig.paper_baseline(), workload,
                        warmup_fraction=0.4)

    print("Running the same trace with CGCT (512 B regions)...\n")
    cgct = run_workload(SystemConfig.paper_cgct(region_bytes=512), workload,
                        warmup_fraction=0.4)

    unnecessary = base.fraction_unnecessary()
    avoided = cgct.fraction_avoided()
    reduction = cgct.runtime_reduction_over(base)

    print(f"external requests (baseline)   : {base.stats.total_external}")
    print(f"unnecessary broadcasts (oracle): {unnecessary:6.1%}  "
          f"{render_bar(unnecessary, 30)}")
    print(f"avoided by CGCT                : {avoided:6.1%}  "
          f"{render_bar(avoided, 30)}")
    print()
    print(f"  baseline run time : {base.cycles:>12,} cycles "
          f"(mean demand latency {base.demand_latency_mean:.0f})")
    print(f"  CGCT run time     : {cgct.cycles:>12,} cycles "
          f"(mean demand latency {cgct.demand_latency_mean:.0f})")
    print(f"  run-time reduction: {reduction:+.1%}")
    print()
    print(f"  broadcasts / 100K cycles: {base.broadcasts_per_window():.0f} -> "
          f"{cgct.broadcasts_per_window():.0f}")
    print(f"  peak in any window      : {base.traffic_peak_per_window} -> "
          f"{cgct.traffic_peak_per_window}")


if __name__ == "__main__":
    main()
