"""Table 2: RCA storage overhead (must match the paper exactly)."""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def test_table2_storage_overhead(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("table2", options, cache))
    print()
    print(result.render())
    assert len(result.rows) == 9
    by_config = {row[0]: row for row in result.rows}
    # The paper's headline numbers: 16K entries cost 5.9 % of the cache,
    # halved (8K) costs 3.0 %.
    assert by_config["16K-Entries, 512-Byte Regions"][9] == "5.9%"
    assert by_config["8K-Entries, 512-Byte Regions"][9] == "3.0%"
    assert by_config["4K-Entries, 512-Byte Regions"][9] == "1.6%"
    # Total bits per set: 76 / 73 / 71 for 4K / 8K / 16K entries.
    assert by_config["4K-Entries, 256-Byte Regions"][7] == 76
    assert by_config["8K-Entries, 256-Byte Regions"][7] == 73
    assert by_config["16K-Entries, 256-Byte Regions"][7] == 71
