"""Table 4: the benchmark suite."""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def test_table4_benchmark_suite(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("table4", options, cache))
    print()
    print(result.render())
    assert len(result.rows) == 9
    categories = [row[0] for row in result.rows]
    assert categories.count("Scientific") == 3
    assert categories.count("Web") == 3
    assert "OLTP" in categories
    assert "Decision Support" in categories
    assert "Multiprogramming" in categories
