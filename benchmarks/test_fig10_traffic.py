"""Figure 10: average and peak broadcast traffic per 100 K cycles.

Paper shape: both the per-benchmark average traffic and the worst-case
peak fall by more than half with 512 B regions.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig10_broadcast_traffic(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("fig10", options, cache))
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    per_bench = {n: r for n, r in rows.items() if n != "MAX"}

    # Traffic falls for every workload.
    for name, row in per_bench.items():
        base_avg, cgct_avg = float(row[1]), float(row[2])
        assert cgct_avg < base_avg, f"{name}: {cgct_avg} !< {base_avg}"

    # The machine-wide maxima drop strongly (paper: more than half —
    # 2573→1103 average, 7365→2683 peak; at this reduced scale the
    # lightly-improving TPC-H bounds the CGCT maximum, so the factor is
    # slightly under 2; full-scale results are in EXPERIMENTS.md).
    max_row = rows["MAX"]
    assert float(max_row[2]) < float(max_row[1]) / 1.7
    assert int(max_row[4]) < int(max_row[3]) / 1.4

    # Benchmark-by-benchmark, the traffic reduction exceeds 2x for the
    # workloads with real opportunity.
    strong = sum(
        1 for row in per_bench.values() if float(row[2]) < float(row[1]) / 2
    )
    assert strong >= 5
