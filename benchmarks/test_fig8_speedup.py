"""Figure 8: run-time reduction per region size.

Paper shape: every workload improves or is neutral; 512 B is the best
(or tied-best) region size on average; TPC-W gains the most; the
average lands near the upper single digits.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _mean_pct(cell: str) -> float:
    # Cells look like "+8.8% ±0.4%" (benchmark rows) or "+8.8%" (averages).
    return float(cell.split("%")[0].replace("+", "")) / 100.0


def test_fig8_runtime_reduction(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("fig8", options, cache))
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    benchmarks_only = {
        name: row for name, row in rows.items()
        if name not in ("AVERAGE", "COMMERCIAL")
    }

    reductions_512 = {
        name: _mean_pct(row[2]) for name, row in benchmarks_only.items()
    }

    # Nothing gets dramatically slower under CGCT.
    assert all(r > -0.03 for r in reductions_512.values())
    # A solid average gain at 512 B (paper: 8.8 %).
    average_512 = _mean_pct(rows["AVERAGE"][2])
    assert average_512 > 0.03
    # TPC-W is among the biggest winners (paper: the biggest, 21.7 %; at
    # this reduced trace scale compulsory effects compress the ordering —
    # the full-scale runs in EXPERIMENTS.md show the paper's ranking).
    top_three = sorted(reductions_512, key=reductions_512.get)[-3:]
    assert "tpc-w" in top_three
    # Barnes and TPC-H gain the least (paper shows them near zero).
    smallest_two = sorted(reductions_512, key=reductions_512.get)[:2]
    assert set(smallest_two) <= {"barnes", "tpc-h", "raytrace"}
    # 512 B is within a couple of points of the best region size; short
    # traces favour 1 KB slightly (fewer region-acquiring broadcasts).
    averages = [_mean_pct(rows["AVERAGE"][i]) for i in (1, 2, 3)]
    assert averages[1] >= max(averages) - 0.025
    # Commercial workloads gain at least as much as the full suite
    # (paper: 10.4 % vs 8.8 %).
    commercial_512 = _mean_pct(rows["COMMERCIAL"][2])
    assert commercial_512 >= average_512 - 0.01
