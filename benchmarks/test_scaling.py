"""Beyond the paper: scalability from 4 to 16 processors.

Section 5.3 argues CGCT improves scalability by halving the load on the
ordered address interconnect; this experiment extrapolates by actually
growing the machine.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def test_scaling(benchmark, options, cache):
    result = run_once(benchmark,
                      lambda: run_experiment("scaling", options, cache))
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {4, 8, 16}

    # Baseline broadcast traffic grows with processor count...
    base_traffic = [float(rows[p][1]) for p in (4, 8, 16)]
    assert base_traffic[0] < base_traffic[2]
    # ...and CGCT cuts it at every size.
    for p in (4, 8, 16):
        assert float(rows[p][2]) < float(rows[p][1])
    # Bus queuing per broadcast explodes with size in the baseline,
    # which is why CGCT's run-time benefit grows with scale.
    queue = [float(rows[p][3]) for p in (4, 8, 16)]
    assert queue[0] < queue[2]
