"""Table 1: region protocol states."""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def test_table1_region_states(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("table1", options, cache))
    print()
    print(result.render())
    assert len(result.rows) == 7
    by_state = {row[0].split()[0]: row[3] for row in result.rows}
    assert by_state["Invalid"] == "Yes"
    assert by_state["Clean-Invalid"] == "No"
    assert by_state["Dirty-Invalid"] == "No"
    assert by_state["Clean-Clean"] == "For Modifiable Copy"
    assert by_state["Dirty-Dirty"] == "Yes"
