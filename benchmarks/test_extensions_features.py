"""Beyond the paper: the Section 6 future-work features, measured."""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _avoided(cell: str) -> float:
    return float(cell.split("%")[0]) / 100.0


def test_section6_extensions(benchmark, options, cache):
    result = run_once(benchmark,
                      lambda: run_experiment("extensions", options, cache))
    print()
    print(result.render())

    by_variant = {row[0]: row for row in result.rows}
    base = by_variant["CGCT (as evaluated)"]
    region_prefetch = by_variant["+ region-state prefetch"]

    # Region-state prefetch targets first-touch broadcasts: the avoided
    # fraction must not fall on any workload.
    for column in range(1, len(result.headers)):
        assert _avoided(region_prefetch[column]) >= _avoided(base[column]) - 0.01
