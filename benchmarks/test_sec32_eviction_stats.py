"""Section 3.2 / 5.2 statistics: RCA evictions and inclusion cost.

Paper values: with 512 B regions and empty-preferring replacement,
65.1 % of evicted regions are empty (17.2 % one line, 5.1 % two); the
mean lines cached per region is 2.8-5; and the inclusion-induced L2
miss-ratio increase is ≈1.2 %.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _pct(cell: str) -> float:
    return float(cell.rstrip("%")) / 100.0


def test_sec32_rca_eviction_statistics(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("sec32", options, cache))
    print()
    print(result.render())

    for row in result.rows:
        name = row[0]
        mean_lines = float(row[4])
        miss_increase = _pct(row[5])
        # Mean lines cached per region in (or near) the paper's 2.8-5 band.
        assert 1.0 < mean_lines < 8.0, name
        # Inclusion cost stays small (paper: ≈1.2 %).
        assert miss_increase < 0.08, name

    # Across the suite, evicted regions skew toward empty/nearly empty,
    # which is what makes the empty-preferring policy cheap. At this
    # reduced scale the RCA barely replaces at all (a handful of victims
    # per workload), so the bar is set loosely; the full-scale runs in
    # EXPERIMENTS.md show the sharper skew.
    shallow = [
        _pct(row[1]) + _pct(row[2]) + _pct(row[3])
        for row in result.rows
        if any(_pct(row[i]) > 0 for i in (1, 2, 3))
    ]
    if shallow:  # short runs may see almost no replacement at all
        assert sum(shallow) / len(shallow) > 0.35
