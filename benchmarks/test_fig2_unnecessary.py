"""Figure 2: unnecessary broadcasts in the conventional system.

Paper shape: average around two-thirds of all broadcasts unnecessary,
SPECint-rate at the top (~94 %), TPC-H at the bottom (~15 %), with data
reads/writes the largest category.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _pct(cell: str) -> float:
    return float(cell.rstrip("%")) / 100.0


def test_fig2_unnecessary_broadcasts(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("fig2", options, cache))
    print()
    print(result.render())

    by_bench = {row[0]: row for row in result.rows}
    average = _pct(by_bench["AVERAGE"][1])
    fractions = {
        name: _pct(row[1]) for name, row in by_bench.items() if name != "AVERAGE"
    }

    # Shape: a large majority of broadcasts are unnecessary on average
    # (paper: 67 %), with a wide spread (paper: 15-94 %).
    assert 0.5 < average < 0.95
    assert max(fractions.values()) > 0.9
    assert min(fractions.values()) < 0.55

    # Extremes land on the right workloads.
    assert fractions["specint2000rate"] == max(fractions.values())
    assert fractions["tpc-h"] == min(fractions.values())

    # Data reads/writes are the dominant category for most workloads.
    data_dominant = sum(
        1 for name, row in by_bench.items()
        if name != "AVERAGE" and _pct(row[2]) >= max(
            _pct(row[3]), _pct(row[4]), _pct(row[5]))
    )
    assert data_dominant >= 5
