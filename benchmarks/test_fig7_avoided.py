"""Figure 7: broadcasts avoided by CGCT vs the oracle opportunity.

Paper shape: CGCT captures 55-97 % of the unnecessary broadcasts; all
workloads except Barnes and TPC-H see large absolute reductions.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _pct(cell: str) -> float:
    return float(cell.rstrip("%")) / 100.0


def test_fig7_broadcasts_avoided(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("fig7", options, cache))
    print()
    print(result.render())

    captures = {}
    for row in result.rows:
        name = row[0]
        opportunity = _pct(row[1])
        avoided_512 = _pct(row[3])  # columns: 256B, 512B, 1KB
        assert 0.0 <= avoided_512
        # CGCT cannot beat the oracle (small tolerance: the two runs see
        # slightly different request streams).
        assert avoided_512 <= opportunity + 0.06
        if opportunity > 0:
            captures[name] = avoided_512 / opportunity

    # CGCT captures a majority of the opportunity for most workloads
    # (paper: 55-97 %).
    high_capture = sum(1 for c in captures.values() if c > 0.55)
    assert high_capture >= 6

    # Barnes and TPC-H see the smallest absolute reductions.
    avoided = {row[0]: _pct(row[3]) for row in result.rows}
    smallest_two = sorted(avoided, key=avoided.get)[:2]
    assert set(smallest_two) == {"barnes", "tpc-h"}
