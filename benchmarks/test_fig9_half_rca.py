"""Figure 9: half-size RCA (8K entries) versus full size (16K).

Paper shape: halving the RCA costs only about one percentage point of
the average run-time reduction.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _mean_pct(cell: str) -> float:
    return float(cell.split("%")[0].replace("+", "")) / 100.0


def test_fig9_half_size_rca(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("fig9", options, cache))
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    full_avg = _mean_pct(rows["AVERAGE"][1])
    half_avg = _mean_pct(rows["AVERAGE"][2])

    # Both configurations still clearly win over the baseline.
    assert full_avg > 0.03
    assert half_avg > 0.03
    # Halving the array costs little (paper: ~1 percentage point).
    assert abs(full_avg - half_avg) < 0.03
