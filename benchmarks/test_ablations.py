"""Beyond the paper: per-ingredient ablations of the CGCT design.

Not a reproduction of a published figure — this quantifies how much
each design ingredient (self-invalidation, empty-region replacement,
the two-bit snoop response, line-response visibility) contributes, and
how the RegionScout alternative (Section 2) compares.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def _avoided(cell: str) -> float:
    return float(cell.split("%")[0]) / 100.0


def test_ablations(benchmark, options, cache):
    result = run_once(benchmark,
                      lambda: run_experiment("ablations", options, cache))
    print()
    print(result.render())

    by_variant = {row[0]: row for row in result.rows}
    full = by_variant["CGCT (full)"]
    one_bit = by_variant["one-bit response"]
    scout = by_variant["RegionScout"]

    for column in range(1, len(result.headers)):
        # The one-bit variant loses the externally-clean optimisation:
        # never better than the full protocol.
        assert _avoided(one_bit[column]) <= _avoided(full[column]) + 0.01
        # RegionScout's imprecise filter avoids strictly less.
        assert _avoided(scout[column]) < _avoided(full[column])
        # But RegionScout still beats doing nothing on most workloads.
    assert any(_avoided(scout[c]) > 0.0 for c in range(1, len(result.headers)))
