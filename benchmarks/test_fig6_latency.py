"""Figure 6: memory request latency scenarios (exact reproduction)."""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once

#: Paper's worked totals in system cycles, per scenario name.
PAPER_TOTALS = {
    "Snoop Own Memory": 25.0,
    "Directly Access Own Memory": 18.1,
    "Snoop Same-Data Switch Memory": 25.0,
    "Directly Access Same-Data Switch Memory": 20.0,
    "Snoop Same-Board Memory": 30.0,
    "Directly Access Same-Board Memory": 27.0,
    "Snoop Remote Memory": 35.0,
    "Directly Access Remote Memory": 34.0,
}


def test_fig6_latency_scenarios(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("fig6", options, cache))
    print()
    print(result.render())
    measured = {row[0]: float(row[2]) for row in result.rows}
    assert measured == PAPER_TOTALS
