"""Shared fixtures for the figure/table regeneration benchmarks.

Every benchmark file regenerates one artifact of the paper. They share
one :class:`RunCache` across the whole session because the figures
overlap heavily (Figures 7, 8 and 10 reuse the same baseline runs), and
one set of :class:`RunOptions` sized so the full suite finishes in a few
minutes while still showing the paper's shapes.

Scale note: the paper simulated billions of instructions; these runs
replay tens of thousands of memory operations per processor. Absolute
numbers differ — EXPERIMENTS.md records the full-size results produced
with ``python -m repro.harness all``.
"""

import pytest

from repro.harness.experiments import RunOptions
from repro.harness.runcache import RunCache

#: One execution per benchmark: these are regeneration harnesses, not
#: micro-benchmarks, so statistical repetition only wastes wall-clock.
BENCH_KWARGS = dict(rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def cache():
    return RunCache()


@pytest.fixture(scope="session")
def options():
    return RunOptions(
        ops_per_processor=10_000,
        seeds=2,
        warmup_fraction=0.4,
        region_sizes=(256, 512, 1024),
    )


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(func, **BENCH_KWARGS)
