"""Table 3: simulation parameters, printed from the live configuration."""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import run_once


def test_table3_simulation_parameters(benchmark, options, cache):
    result = run_once(benchmark, lambda: run_experiment("table3", options, cache))
    print()
    print(result.render())
    values = dict((row[0], row[1]) for row in result.rows)
    assert values["Processor clock"] == "1.5 GHz"
    assert values["L2 cache"].startswith("1MB 2-way")
    assert values["RCA organisation"] == "8192 sets, 2-way"
    assert values["Coherence protocols"] == "Write-invalidate MOESI (L2), MSI (L1)"
    assert "160" in values["Snoop latency"]
