"""Telemetry interval series reconcile with the figure aggregates.

Figures 2, 7 and 10 are end-of-run aggregates (unnecessary fraction,
avoided fraction, broadcasts per 100 K-cycle window). The telemetry
subsystem samples the same quantities every interval; because probes
record deltas, the sum of every interval must equal the final aggregate
*exactly* — no double counting, no leakage across the warm-up reset.
"""

import pytest

from benchmarks.conftest import run_once
from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.telemetry.registry import DEFAULT_INTERVAL, TelemetryRegistry
from repro.workloads.benchmarks import build_benchmark

WORKLOADS = ("barnes", "ocean")


@pytest.fixture(scope="module")
def telemetry_runs():
    """(workload, mode) -> (RunResult, TelemetryRegistry), fully sampled."""
    runs = {}
    for mode, config in (
        ("baseline", SystemConfig.paper_baseline()),
        ("cgct", SystemConfig.paper_cgct()),
    ):
        for name in WORKLOADS:
            workload = build_benchmark(
                name, num_processors=config.num_processors,
                ops_per_processor=10_000, seed=0,
            )
            registry = TelemetryRegistry()
            result = run_workload(
                config, workload, seed=0, warmup_fraction=0.4,
                telemetry=registry,
            )
            runs[name, mode] = (result, registry)
    return runs


def test_fig2_unnecessary_series_totals_match(benchmark, telemetry_runs):
    """Figure 2's numerator, summed over intervals, is the run total."""
    def check():
        for name in WORKLOADS:
            result, registry = telemetry_runs[name, "baseline"]
            series = registry.get("stats.unnecessary_broadcasts")
            assert series.total == result.stats.total_unnecessary
            assert registry.get("stats.external_requests").total == \
                result.stats.total_external
        return len(WORKLOADS)

    assert run_once(benchmark, check) == len(WORKLOADS)


def test_fig7_avoided_series_totals_match(benchmark, telemetry_runs):
    """Figure 7's numerator (direct + no-request) reconciles per window."""
    def check():
        for name in WORKLOADS:
            result, registry = telemetry_runs[name, "cgct"]
            assert registry.get("stats.avoided").total == \
                result.stats.total_avoided
            assert registry.get("stats.directs").total == \
                result.stats.total_directs
            assert registry.get("stats.no_requests").total == \
                result.stats.total_no_requests
            # The fraction recomputed from telemetry matches the figure.
            fraction = (registry.get("stats.avoided").total
                        / registry.get("stats.external_requests").total)
            assert fraction == pytest.approx(result.fraction_avoided())
        return len(WORKLOADS)

    assert run_once(benchmark, check) == len(WORKLOADS)


def test_fig10_traffic_series_totals_match(benchmark, telemetry_runs):
    """Figure 10's traffic, sampled per window, sums to the bus total."""
    def check():
        for name in WORKLOADS:
            for mode in ("baseline", "cgct"):
                result, registry = telemetry_runs[name, mode]
                series = registry.get("bus.broadcasts")
                # The sampling window is the figure's 100 K-cycle window.
                assert series.window == DEFAULT_INTERVAL == 100_000
                assert series.total == result.broadcasts
        # CGCT moves traffic off the bus: every window total shrinks.
        for name in WORKLOADS:
            base = telemetry_runs[name, "baseline"][1].get("bus.broadcasts")
            cgct = telemetry_runs[name, "cgct"][1].get("bus.broadcasts")
            assert cgct.total < base.total
        return len(WORKLOADS)

    assert run_once(benchmark, check) == len(WORKLOADS)
