"""Failure taxonomy: what retries, what quarantines, what rides along.

The classifier is the routing core of the fault-tolerant runner: a
transient verdict buys a retry with backoff, a deterministic verdict
quarantines the task (it would fail identically on the bit-identical
rerun). These tests pin the verdicts the runner depends on.
"""

import pytest

from repro.common.errors import (
    CGCTError,
    ConfigurationError,
    FailureClass,
    InvariantViolation,
    ProtocolError,
    SimulationError,
    TaskTimeout,
    WorkerCrash,
    classify_failure,
)


class TestClassifyFailure:
    @pytest.mark.parametrize("exc", [
        TaskTimeout("deadline blown"),
        WorkerCrash("pid 123 died"),
        OSError("fork failed"),
        MemoryError(),
        TimeoutError(),
        ConnectionError(),
        InterruptedError(),
    ])
    def test_environmental_failures_are_transient(self, exc):
        assert classify_failure(exc) is FailureClass.TRANSIENT

    @pytest.mark.parametrize("exc", [
        CGCTError("simulator bug"),
        ProtocolError("bad transition"),
        SimulationError("impossible latency"),
        ConfigurationError("bad region size"),
        InvariantViolation("two owners"),
        AssertionError(),
        ValueError("bad input"),
        TypeError(),
        KeyError("missing"),
        ZeroDivisionError(),
        AttributeError(),
    ])
    def test_code_failures_are_deterministic(self, exc):
        assert classify_failure(exc) is FailureClass.DETERMINISTIC

    def test_unknown_exceptions_default_to_transient(self):
        # RuntimeError could be either; retrying once is cheap and the
        # deterministic case still surfaces after the budget runs out.
        assert classify_failure(RuntimeError("boom")) is FailureClass.TRANSIENT

        class Weird(Exception):
            pass

        assert classify_failure(Weird()) is FailureClass.TRANSIENT

    def test_accepts_types_as_well_as_instances(self):
        assert classify_failure(TaskTimeout) is FailureClass.TRANSIENT
        assert classify_failure(ValueError) is FailureClass.DETERMINISTIC

    def test_transient_wins_over_deterministic_base(self):
        # TaskTimeout/WorkerCrash subclass CGCTError (a deterministic
        # family); the transient check must run first or every timeout
        # would be quarantined.
        assert issubclass(TaskTimeout, CGCTError)
        assert issubclass(WorkerCrash, CGCTError)
        assert classify_failure(TaskTimeout("t")) is FailureClass.TRANSIENT
        assert classify_failure(WorkerCrash("c")) is FailureClass.TRANSIENT


class TestInvariantViolation:
    def test_carries_violations_and_bundle_path(self):
        exc = InvariantViolation(
            "coherence invariant violated",
            violations=["line 0x10: two owners", "region 0x2: bad count"],
            bundle_path="diagnostics/bundle-barnes-seed0.json",
        )
        assert len(exc.violations) == 2
        assert exc.bundle_path.endswith(".json")
        assert isinstance(exc, ProtocolError)

    def test_defaults_are_empty(self):
        exc = InvariantViolation("bad")
        assert list(exc.violations) == []
        assert exc.bundle_path is None
