"""Next-free-time resource model (bus/memory-controller queuing)."""

import pytest

from repro.common.resources import OccupiedResource


def test_idle_resource_serves_immediately():
    resource = OccupiedResource(occupancy=10)
    assert resource.acquire(100) == 100
    assert resource.next_free == 110


def test_busy_resource_queues():
    resource = OccupiedResource(occupancy=10)
    resource.acquire(100)
    start = resource.acquire(105)  # arrives mid-service
    assert start == 110
    assert resource.queued_cycles == 5


def test_back_to_back_requests_serialise():
    resource = OccupiedResource(occupancy=10)
    starts = [resource.acquire(0) for _ in range(4)]
    assert starts == [0, 10, 20, 30]


def test_gap_resets_queue():
    resource = OccupiedResource(occupancy=10)
    resource.acquire(0)
    assert resource.acquire(50) == 50
    assert resource.queued_cycles == 0


def test_wait_time_preview_does_not_mutate():
    resource = OccupiedResource(occupancy=10)
    resource.acquire(0)
    assert resource.wait_time(5) == 5
    assert resource.wait_time(5) == 5
    assert resource.services == 1


def test_utilization():
    resource = OccupiedResource(occupancy=10)
    for t in (0, 100, 200):
        resource.acquire(t)
    assert resource.utilization(300) == pytest.approx(0.1)
    assert resource.utilization(0) == 0.0


def test_utilization_clamped_to_one():
    resource = OccupiedResource(occupancy=100)
    resource.acquire(0)
    resource.acquire(0)
    assert resource.utilization(100) == 1.0


def test_reset_clears_everything():
    resource = OccupiedResource(occupancy=10)
    resource.acquire(0)
    resource.reset()
    assert resource.next_free == 0
    assert resource.services == 0
    assert resource.busy_cycles == 0


def test_negative_occupancy_rejected():
    with pytest.raises(ValueError):
        OccupiedResource(occupancy=-1)


def test_zero_occupancy_never_queues():
    resource = OccupiedResource(occupancy=0)
    assert resource.acquire(5) == 5
    assert resource.acquire(5) == 5
