"""Deterministic seed derivation."""

import numpy as np

from repro.common.rng import derive_seed, make_rng


def test_same_scope_same_seed():
    assert derive_seed(42, "tpc-w", 3) == derive_seed(42, "tpc-w", 3)


def test_different_scopes_differ():
    seen = {
        derive_seed(42, "a"),
        derive_seed(42, "b"),
        derive_seed(42, "a", 0),
        derive_seed(42, "a", 1),
        derive_seed(43, "a"),
    }
    assert len(seen) == 5


def test_seed_is_63_bit_non_negative():
    for scope in range(50):
        seed = derive_seed(7, scope)
        assert 0 <= seed < 2**63


def test_make_rng_streams_are_reproducible():
    a = make_rng(1, "x").integers(0, 1 << 30, size=8)
    b = make_rng(1, "x").integers(0, 1 << 30, size=8)
    assert np.array_equal(a, b)


def test_make_rng_streams_are_independent():
    a = make_rng(1, "x").integers(0, 1 << 30, size=8)
    b = make_rng(1, "y").integers(0, 1 << 30, size=8)
    assert not np.array_equal(a, b)


def test_scope_labels_stringified_consistently():
    assert derive_seed(5, 10) == derive_seed(5, "10")
