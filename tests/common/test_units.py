"""Clock-domain conversions (Table 3's two clocks)."""

from repro.common.units import (
    CPU_CYCLES_PER_SYSTEM_CYCLE,
    cpu_cycles,
    nanoseconds,
    system_cycles,
    to_nanoseconds,
)


def test_ten_cpu_cycles_per_system_cycle():
    assert CPU_CYCLES_PER_SYSTEM_CYCLE == 10


def test_snoop_latency_conversion_matches_table3():
    # 16 system cycles = 106 ns at 150 MHz (Table 3 rounds to 106).
    assert system_cycles(16) == 160
    assert abs(to_nanoseconds(system_cycles(16)) - 106.7) < 0.1


def test_nanoseconds_round_trip():
    for cycles in (1, 12, 160, 2500):
        assert nanoseconds(to_nanoseconds(cycles)) == cycles


def test_cpu_cycles_is_identity():
    assert cpu_cycles(12) == 12


def test_dram_overlap_is_seven_system_cycles():
    # Table 3: DRAM overlapped with snoop = 47 ns ≈ 7 system cycles.
    assert nanoseconds(47) in (70, 71)
