"""Confidence intervals, geometric means, streaming moments."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    RunningStat,
    confidence_interval,
    geometric_mean,
)


class TestConfidenceInterval:
    def test_single_sample_has_zero_width(self):
        ci = confidence_interval([3.5])
        assert ci.mean == 3.5
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_identical_samples_have_zero_width(self):
        ci = confidence_interval([2.0, 2.0, 2.0])
        assert ci.mean == 2.0
        assert ci.half_width == pytest.approx(0.0)

    def test_matches_t_distribution_hand_value(self):
        # n=4, stddev=1 ⇒ half-width = t(0.975, 3) / 2 ≈ 1.5912.
        ci = confidence_interval([-1.0, 1.0, -1.0, 1.0], confidence=0.95)
        sem = math.sqrt(4 / 3) / 2
        assert ci.half_width == pytest.approx(3.182446 * sem, rel=1e-4)

    def test_contains_and_overlaps(self):
        ci = confidence_interval([1.0, 2.0, 3.0])
        assert ci.contains(ci.mean)
        assert ci.overlaps(ci)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_bad_confidence_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_wider_confidence_gives_wider_interval(self):
        samples = [1.0, 2.0, 4.0, 8.0]
        assert (
            confidence_interval(samples, 0.99).half_width
            > confidence_interval(samples, 0.90).half_width
        )


class TestGeometricMean:
    def test_hand_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestRunningStat:
    def test_matches_batch_computation(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        stat = RunningStat()
        stat.extend(samples)
        mean = sum(samples) / len(samples)
        var = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
        assert stat.count == len(samples)
        assert stat.mean == pytest.approx(mean)
        assert stat.variance == pytest.approx(var)
        assert stat.minimum == 1.0
        assert stat.maximum == 9.0

    def test_variance_zero_below_two_samples(self):
        stat = RunningStat()
        assert stat.variance == 0.0
        stat.add(5.0)
        assert stat.variance == 0.0

    def test_merge_equals_combined_stream(self):
        left, right, combined = RunningStat(), RunningStat(), RunningStat()
        a = [1.0, 2.0, 3.0]
        b = [10.0, 20.0]
        left.extend(a)
        right.extend(b)
        combined.extend(a + b)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty_is_identity(self):
        stat = RunningStat()
        stat.extend([1.0, 2.0])
        merged = stat.merge(RunningStat())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_welford_agrees_with_two_pass(self, samples):
        stat = RunningStat()
        stat.extend(samples)
        mean = sum(samples) / len(samples)
        assert stat.mean == pytest.approx(mean, abs=1e-6)


class TestRunningStatPercentiles:
    def test_exact_below_sample_limit(self):
        stat = RunningStat()
        stat.extend(float(v) for v in range(101))
        assert stat.percentile(0) == 0.0
        assert stat.percentile(50) == pytest.approx(50.0)
        assert stat.percentile(100) == 100.0
        # Linear interpolation between retained samples.
        assert stat.percentile(12.5) == pytest.approx(12.5)

    def test_single_sample(self):
        stat = RunningStat()
        stat.add(7.0)
        assert stat.percentile(0) == stat.percentile(99) == 7.0

    def test_out_of_range_p_raises(self):
        stat = RunningStat()
        stat.add(1.0)
        with pytest.raises(ValueError):
            stat.percentile(-1)
        with pytest.raises(ValueError):
            stat.percentile(101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStat().percentile(50)

    def test_sample_limit_zero_disables_retention(self):
        stat = RunningStat(sample_limit=0)
        stat.extend([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)  # moments unaffected
        with pytest.raises(ValueError):
            stat.percentile(50)

    def test_retention_is_bounded_and_deterministic(self):
        a, b = RunningStat(sample_limit=64), RunningStat(sample_limit=64)
        values = [float((v * 37) % 1000) for v in range(10_000)]
        a.extend(values)
        b.extend(values)
        assert len(a._samples) <= 64
        assert a._samples == b._samples
        assert a.percentile(90) == b.percentile(90)
        # The strided estimate stays near the true quantile.
        true_p90 = sorted(values)[int(0.9 * (len(values) - 1))]
        assert a.percentile(90) == pytest.approx(true_p90, rel=0.15)

    def test_merge_combines_retained_samples(self):
        left, right = RunningStat(), RunningStat()
        left.extend([1.0, 2.0, 3.0])
        right.extend([10.0, 20.0])
        merged = left.merge(right)
        assert sorted(merged._samples) == [1.0, 2.0, 3.0, 10.0, 20.0]
        assert merged.percentile(100) == 20.0

    def test_merge_decimates_back_under_limit(self):
        left, right = RunningStat(sample_limit=8), RunningStat(sample_limit=8)
        left.extend(float(v) for v in range(8))
        right.extend(float(v) for v in range(8))
        merged = left.merge(right)
        assert len(merged._samples) <= 8
        assert merged.count == 16

    def test_merge_moments_unaffected_by_retention(self):
        left = RunningStat(sample_limit=4)
        right = RunningStat(sample_limit=4)
        a = [float(v) for v in range(100)]
        b = [float(v) for v in range(100, 150)]
        left.extend(a)
        right.extend(b)
        combined = RunningStat()
        combined.extend(a + b)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
