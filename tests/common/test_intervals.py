"""Windowed traffic counting (Figure 10's metric)."""

import pytest

from repro.common.intervals import IntervalCounter


def test_records_bucket_by_window():
    counter = IntervalCounter(window=100)
    counter.record(0)
    counter.record(99)
    counter.record(100)
    assert counter.series() == {0: 2, 1: 1}


def test_peak_is_max_single_window():
    counter = IntervalCounter(window=10)
    for t in (0, 1, 2, 25, 26):
        counter.record(t)
    assert counter.peak() == 3


def test_peak_empty_is_zero():
    assert IntervalCounter().peak() == 0


def test_average_per_window_matches_paper_formula():
    # 50 events over 1_000_000 cycles with a 100_000 window ⇒ 5 / window.
    counter = IntervalCounter(window=100_000)
    for i in range(50):
        counter.record(i * 20_000)
    assert counter.average_per_window(end_time=1_000_000) == pytest.approx(5.0)


def test_average_discounts_warmup_start():
    counter = IntervalCounter(window=100)
    counter.record(950)
    counter.record(960)
    assert counter.average_per_window(end_time=1000, start_time=900) == pytest.approx(2.0)


def test_average_empty_is_zero():
    assert IntervalCounter().average_per_window() == 0.0


def test_series_is_dense_with_gaps_as_zero():
    counter = IntervalCounter(window=10)
    counter.record(5)
    counter.record(35)
    assert counter.series() == {0: 1, 1: 0, 2: 0, 3: 1}


def test_bulk_counts():
    counter = IntervalCounter(window=10)
    counter.record(3, count=7)
    assert counter.total == 7
    assert counter.peak() == 7


def test_merge_requires_same_window():
    with pytest.raises(ValueError):
        IntervalCounter(10).merge(IntervalCounter(20))


def test_merge_sums_buckets():
    a, b = IntervalCounter(10), IntervalCounter(10)
    a.record(5)
    b.record(6)
    b.record(15)
    merged = a.merge(b)
    assert merged.total == 3
    assert merged.series() == {0: 2, 1: 1}


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        IntervalCounter().record(0, count=-1)


def test_zero_window_rejected():
    with pytest.raises(ValueError):
        IntervalCounter(window=0)
