"""Telemetry overhead guard: instrumentation must stay cheap.

The cost contract (see docs/telemetry.md) is one ``is None`` check per
instrumented site when telemetry is off, and bounded bookkeeping when it
is on. This guard compares best-of-three wall times and fails if the
instrumented run exceeds 1.5x the plain run plus a small absolute slack
that absorbs timer noise on loaded CI machines.
"""

import time

from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.telemetry.registry import TelemetryRegistry
from repro.workloads.benchmarks import build_benchmark


def best_of(n, fn) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_within_guard():
    config = SystemConfig.paper_cgct()
    workload = build_benchmark(
        "barnes", num_processors=config.num_processors,
        ops_per_processor=4000, seed=0,
    )

    def plain():
        run_workload(config, workload, seed=0, warmup_fraction=0.4)

    def instrumented():
        run_workload(
            config, workload, seed=0, warmup_fraction=0.4,
            telemetry=TelemetryRegistry(interval=50_000),
        )

    plain()  # warm code paths and trace caches before timing
    off = best_of(3, plain)
    on = best_of(3, instrumented)
    assert on <= off * 1.5 + 0.05, (
        f"telemetry overhead too high: {on:.3f}s vs {off:.3f}s "
        f"({on / off:.2f}x)"
    )


def test_disabled_registry_overhead_is_negligible():
    config = SystemConfig.paper_cgct()
    workload = build_benchmark(
        "barnes", num_processors=config.num_processors,
        ops_per_processor=4000, seed=0,
    )

    def plain():
        run_workload(config, workload, seed=0, warmup_fraction=0.4)

    def disabled():
        run_workload(
            config, workload, seed=0, warmup_fraction=0.4,
            telemetry=TelemetryRegistry(enabled=False),
        )

    plain()
    off = best_of(3, plain)
    on = best_of(3, disabled)
    # A disabled registry hands out no-op singletons; allow the same
    # guard (the attach itself costs nothing measurable).
    assert on <= off * 1.5 + 0.05
