"""RCA transition-matrix legality: only Table 1 / Figures 3–5 edges.

The recorded (from, event, to) cells of a telemetry run must be a subset
of the transitions the region protocol can actually compute, plus the
three documented extra events the machine records directly:

* ``evict`` — any valid state to INVALID (victim replacement);
* ``self_invalidate`` — any valid state to INVALID when the line count
  reached zero (Figure 5 bottom);
* ``region_prefetch`` — INVALID to a Clean-local state installed from a
  piggybacked region snoop (Section 5).

The legal set is *enumerated*, not hand-written: every protocol entry
point is brute-forced over all states × requests × fill states × snoop
responses, keeping whatever does not raise ``ProtocolError``.
"""

import pytest

from repro.coherence.line_states import LineState
from repro.coherence.requests import RequestType
from repro.common.errors import ProtocolError
from repro.rca.protocol import RegionProtocol
from repro.rca.response import RegionSnoopResponse
from repro.rca.states import RegionState
from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.telemetry.registry import TelemetryRegistry
from repro.workloads.benchmarks import build_benchmark

_RESPONSES = [None] + [
    RegionSnoopResponse(clean=clean, dirty=dirty)
    for clean in (False, True)
    for dirty in (False, True)
]


def legal_cells(protocol: RegionProtocol) -> set:
    """Every (from, event, to) cell the protocol and machine can emit."""
    legal = set()
    for state in RegionState:
        for request in RequestType:
            for fill in LineState:
                for response in _RESPONSES:
                    try:
                        new = protocol.after_local_request(
                            state, request, fill, response
                        )
                    except ProtocolError:
                        continue
                    legal.add(
                        (state.value, f"local.{request.value}", new.value)
                    )
            for exclusive in (None, True, False):
                try:
                    new = protocol.after_external_request(
                        state, request, exclusive
                    )
                except ProtocolError:
                    continue
                legal.add(
                    (state.value, f"external.{request.value}", new.value)
                )
    for state in RegionState:
        if state is RegionState.INVALID:
            continue
        legal.add((state.value, "evict", "I"))
        if protocol.response_for(state, 0).self_invalidate:
            legal.add((state.value, "self_invalidate", "I"))
    # Region-state prefetch installs Clean-local entries from the
    # piggybacked snoop's combined response (collapsed in single-bit
    # mode, so the externally-clean install disappears with it).
    externals = ("CI", "CC", "CD") if protocol.two_bit else ("CI", "CD")
    for external in externals:
        legal.add(("I", "region_prefetch", external))
    return legal


class TestLegalSet:
    def test_enumeration_finds_figure3_edges(self):
        legal = legal_cells(RegionProtocol())
        # Spot-check canonical Figure 3/4/5 transitions.
        assert ("I", "local.read", "CI") in legal       # allocation, no copies
        assert ("I", "local.rfo", "DI") in legal        # modifiable allocation
        assert ("CI", "local.rfo", "DI") in legal       # silent clean→dirty
        assert ("CD", "external.read", "CD") in legal   # external stays dirty
        assert ("DI", "external.rfo", "DD") in legal    # invalidation observed
        assert ("DD", "self_invalidate", "I") in legal

    def test_no_transition_leaves_invalid_except_documented(self):
        legal = legal_cells(RegionProtocol())
        for frm, event, to in legal:
            if frm == "I" and to != "I":
                assert event.startswith("local.") or event == "region_prefetch"

    def test_nothing_reaches_invalid_except_evict_and_self_invalidate(self):
        legal = legal_cells(RegionProtocol())
        for frm, event, to in legal:
            if to == "I" and frm != "I":
                assert event in ("evict", "self_invalidate")

    def test_single_bit_variant_never_enters_externally_clean(self):
        # CC/DC stay *enumerable* from a hypothetical CC source, but no
        # transition enters them from outside — they are unreachable.
        legal = legal_cells(RegionProtocol(two_bit=False))
        entering = {
            cell for cell in legal
            if cell[2] in ("CC", "DC") and cell[0] not in ("CC", "DC")
        }
        assert entering == set()


class TestRecordedTransitionsAreLegal:
    @pytest.fixture(scope="class")
    def recorded(self):
        config = SystemConfig.paper_cgct()
        registry = TelemetryRegistry(interval=50_000)
        workload = build_benchmark(
            "barnes", num_processors=config.num_processors,
            ops_per_processor=4000, seed=0,
        )
        run_workload(config, workload, seed=0, warmup_fraction=0.25,
                     telemetry=registry)
        matrix = registry.get("rca.transitions")
        assert matrix is not None and matrix.total > 0
        return config, matrix

    def test_every_recorded_cell_is_legal(self, recorded):
        config, matrix = recorded
        protocol = RegionProtocol(
            two_bit=config.two_bit_response,
            self_invalidation=config.self_invalidation,
        )
        legal = legal_cells(protocol)
        illegal = set(matrix.counts) - legal
        assert not illegal, f"illegal transitions recorded: {sorted(illegal)}"

    def test_matrix_exercises_core_protocol_states(self, recorded):
        _, matrix = recorded
        from_states = {frm for frm, _, _ in matrix.counts}
        # A real workload must exercise at minimum allocation, both local
        # letters, and external downgrades.
        assert {"I", "CI", "DI"} <= from_states

    def test_counts_are_positive(self, recorded):
        _, matrix = recorded
        assert all(count > 0 for count in matrix.counts.values())
        assert matrix.total == sum(matrix.counts.values())
