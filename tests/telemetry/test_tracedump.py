"""Trace-dump mode: merging the event log with interval series."""

import json

from repro.coherence.requests import RequestType
from repro.system.eventlog import EventLog
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.tracedump import merged_records, render, save_trace_dump


def make_sources():
    """An event log and a registry covering two 100-cycle windows."""
    log = EventLog(capacity=16)
    log.record(10, 0, RequestType.READ, 0x1000, "broadcast", 50)
    log.record(99, 1, RequestType.RFO, 0x2000, "direct", 20)
    log.record(150, 0, RequestType.IFETCH, 0x3000, "no_request", 0)
    registry = TelemetryRegistry(interval=100)
    series = registry.interval_series("bus.broadcasts")
    series.record(10, 1.0)
    series.record(150, 2.0)
    other = registry.interval_series("stats.directs")
    other.record(99, 1.0)
    return registry, log


class TestMergedRecords:
    def test_chronological_with_intervals_after_events(self):
        registry, log = make_sources()
        records = merged_records(registry, log)
        times = [(r["time"], r["kind"]) for r in records]
        assert times == [
            (10, "event"),
            (99, "event"),
            (99, "interval"),   # window 0 summary follows its events
            (150, "event"),
            (199, "interval"),
        ]

    def test_interval_records_group_all_series(self):
        registry, log = make_sources()
        first_interval = next(
            r for r in merged_records(registry, log) if r["kind"] == "interval"
        )
        assert first_interval["series"] == {
            "bus.broadcasts": 1.0, "stats.directs": 1.0,
        }

    def test_event_fields_are_plain_values(self):
        registry, log = make_sources()
        event = merged_records(registry, log)[0]
        assert event == {
            "kind": "event", "time": 10, "processor": 0, "request": "read",
            "address": 0x1000, "path": "broadcast", "latency": 50,
        }

    def test_equal_timestamps_keep_insertion_order(self):
        # Several grants can land on the same cycle; the merge must not
        # shuffle them (the sort is stable over the (time, kind) key).
        log = EventLog(capacity=16)
        log.record(50, 3, RequestType.READ, 0x1000, "broadcast", 10)
        log.record(50, 1, RequestType.RFO, 0x2000, "direct", 20)
        log.record(50, 2, RequestType.READ, 0x3000, "broadcast", 30)
        records = merged_records(None, log)
        assert [r["processor"] for r in records] == [3, 1, 2]

    def test_event_precedes_interval_at_the_same_time(self):
        log = EventLog(capacity=4)
        log.record(99, 0, RequestType.READ, 0x1000, "broadcast", 10)
        registry = TelemetryRegistry(interval=100)
        registry.interval_series("bus.broadcasts").record(0, 1.0)
        kinds = [r["kind"] for r in merged_records(registry, log)]
        assert kinds == ["event", "interval"]  # both at time 99

    def test_empty_sources_merge_to_nothing(self):
        # Empty is not None: an attached-but-idle log and a registry
        # with no interval series must merge cleanly.
        registry, log = TelemetryRegistry(interval=100), EventLog(capacity=4)
        assert merged_records(registry, log) == []
        assert render(registry, log) == ""

    def test_empty_source_merges_with_a_full_one(self):
        registry, log = make_sources()
        events_only = merged_records(TelemetryRegistry(interval=100), log)
        assert [r["kind"] for r in events_only] == ["event"] * 3
        intervals_only = merged_records(registry, EventLog(capacity=4))
        assert [r["kind"] for r in intervals_only] == ["interval"] * 2

    def test_either_source_may_be_none(self):
        registry, log = make_sources()
        only_events = merged_records(None, log)
        assert all(r["kind"] == "event" for r in only_events)
        assert len(only_events) == 3
        only_intervals = merged_records(registry, None)
        assert all(r["kind"] == "interval" for r in only_intervals)
        assert len(only_intervals) == 2
        assert merged_records(None, None) == []


class TestDumpAndRender:
    def test_save_trace_dump_writes_parseable_jsonl(self, tmp_path):
        registry, log = make_sources()
        path = tmp_path / "trace.jsonl"
        count = save_trace_dump(registry, log, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 5
        parsed = [json.loads(line) for line in lines]
        assert parsed == merged_records(registry, log)

    def test_render_marks_intervals_and_limits(self):
        registry, log = make_sources()
        text = render(registry, log)
        assert "interval:" in text
        assert "broadcast" in text
        assert len(render(registry, log, limit=2).splitlines()) == 2
