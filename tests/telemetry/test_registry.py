"""Telemetry primitives and the registry: recording, sampling, merging."""

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKET_BOUNDS,
    DEFAULT_INTERVAL,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SERIES,
    NULL_TRANSITIONS,
    Counter,
    Gauge,
    Histogram,
    IntervalSeries,
    TelemetryRegistry,
    TransitionMatrix,
)
from repro.rca.states import RegionState


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_merge_adds(self):
        a, b = Counter("a"), Counter("b")
        a.inc(2)
        b.inc(5)
        a.merge_from(b)
        assert a.value == 7

    def test_to_dict(self):
        c = Counter("c")
        c.inc(9)
        assert c.to_dict() == {"value": 9}


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5

    def test_merge_keeps_latest_non_default(self):
        a, b = Gauge("a"), Gauge("b")
        a.set(3.0)
        a.merge_from(b)  # b is default (0.0): keep ours
        assert a.value == 3.0
        b.set(7.0)
        a.merge_from(b)
        assert a.value == 7.0


class TestHistogram:
    def test_bucket_placement_is_le_semantics(self):
        h = Histogram("h", bounds=[1, 10, 100])
        for value in (0, 1, 2, 10, 11, 1000):
            h.observe(value)
        # counts: <=1, <=10, <=100, overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.cumulative_counts() == [2, 4, 5, 6]

    def test_moments_come_from_running_stat(self):
        h = Histogram("h", bounds=[10])
        for value in (2.0, 4.0, 6.0):
            h.observe(value)
        assert h.stat.mean == pytest.approx(4.0)
        assert h.total == pytest.approx(12.0)
        assert h.stat.minimum == 2.0
        assert h.stat.maximum == 6.0

    def test_percentiles_exposed(self):
        h = Histogram("h", bounds=[1000])
        for value in range(101):
            h.observe(float(value))
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(100) == pytest.approx(100.0)

    def test_empty_bounds_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[])

    def test_default_bounds_are_powers_of_two(self):
        h = Histogram("h")
        assert h.bounds == DEFAULT_BUCKET_BOUNDS
        assert h.bounds[0] == 1 and h.bounds[-1] == 1 << 20

    def test_reset_preserves_layout(self):
        h = Histogram("h", bounds=[1, 2])
        h.observe(1.5)
        h.reset()
        assert h.count == 0
        assert h.counts == [0, 0, 0]
        assert h.bounds == (1, 2)

    def test_merge_combines(self):
        a, b = Histogram("a", bounds=[10]), Histogram("b", bounds=[10])
        a.observe(5.0)
        b.observe(15.0)
        a.merge_from(b)
        assert a.count == 2
        assert a.counts == [1, 1]
        assert a.total == pytest.approx(20.0)

    def test_merge_different_bounds_raises(self):
        a, b = Histogram("a", bounds=[10]), Histogram("b", bounds=[20])
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_to_dict_includes_percentiles_when_populated(self):
        h = Histogram("h", bounds=[10])
        assert "p50" not in h.to_dict()
        h.observe(3.0)
        assert h.to_dict()["p50"] == pytest.approx(3.0)


class TestIntervalSeries:
    def test_records_into_windows(self):
        s = IntervalSeries("s", window=100)
        s.record(0)
        s.record(99)
        s.record(100, 2.5)
        assert s.buckets == {0: 2.0, 1: 2.5}
        assert s.total == pytest.approx(4.5)

    def test_series_is_dense_from_zero(self):
        s = IntervalSeries("s", window=10)
        s.record(25, 3.0)
        assert s.series() == [0.0, 0.0, 3.0]
        assert IntervalSeries("empty", window=10).series() == []

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            IntervalSeries("s", window=0)

    def test_merge_adds_bucketwise(self):
        a, b = IntervalSeries("a", window=10), IntervalSeries("b", window=10)
        a.record(5, 1.0)
        b.record(5, 2.0)
        b.record(15, 4.0)
        a.merge_from(b)
        assert a.buckets == {0: 3.0, 1: 4.0}
        assert a.total == pytest.approx(7.0)

    def test_merge_different_windows_raises(self):
        a, b = IntervalSeries("a", window=10), IntervalSeries("b", window=20)
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestTransitionMatrix:
    def test_records_enum_values_as_strings(self):
        m = TransitionMatrix("m")
        m.record(RegionState.INVALID, "local.read", RegionState.CLEAN_INVALID)
        m.record(RegionState.INVALID, "local.read", RegionState.CLEAN_INVALID)
        m.record("CI", "evict", "I")
        assert m.counts[("I", "local.read", "CI")] == 2
        assert m.counts[("CI", "evict", "I")] == 1
        assert m.total == 3
        assert m.coverage() == 2

    def test_merge_adds_cells(self):
        a, b = TransitionMatrix("a"), TransitionMatrix("b")
        a.record("I", "x", "CI")
        b.record("I", "x", "CI")
        b.record("CI", "y", "I")
        a.merge_from(b)
        assert a.counts == {("I", "x", "CI"): 2, ("CI", "y", "I"): 1}


class TestRegistryFactories:
    def test_create_or_return_by_name(self):
        reg = TelemetryRegistry()
        c1 = reg.counter("a.b", help="first")
        c2 = reg.counter("a.b", help="ignored on refetch")
        assert c1 is c2
        assert len(reg) == 1
        assert "a.b" in reg
        assert reg.get("a.b") is c1

    def test_kind_mismatch_raises(self):
        reg = TelemetryRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_interval_series_defaults_to_registry_interval(self):
        reg = TelemetryRegistry(interval=5000)
        s = reg.interval_series("s")
        assert s.window == 5000

    def test_bad_interval_raises(self):
        with pytest.raises(ValueError):
            TelemetryRegistry(interval=0)

    def test_default_interval_matches_figure_10_window(self):
        assert TelemetryRegistry().interval == DEFAULT_INTERVAL == 100_000


class TestProbesAndSampling:
    def test_probe_records_delta_since_previous_sample(self):
        reg = TelemetryRegistry(interval=100)
        source = {"v": 0}
        series = reg.add_probe("p", lambda: source["v"])
        source["v"] = 3
        reg.maybe_sample(100)  # window 0 closes
        source["v"] = 10
        reg.maybe_sample(200)  # window 1 closes
        assert series.buckets == {0: 3.0, 1: 7.0}
        assert series.total == pytest.approx(10.0)

    def test_totals_reconcile_exactly_with_source(self):
        reg = TelemetryRegistry(interval=10)
        source = {"v": 0}
        series = reg.add_probe("p", lambda: source["v"])
        for step in range(1, 50):
            source["v"] += step % 3
            reg.maybe_sample(step * 7)
        reg.finalize(49 * 7)
        assert series.total == pytest.approx(source["v"])

    def test_maybe_sample_catches_up_over_skipped_boundaries(self):
        reg = TelemetryRegistry(interval=10)
        source = {"v": 0}
        series = reg.add_probe("p", lambda: source["v"])
        source["v"] = 5
        reg.maybe_sample(35)  # boundaries 10, 20, 30 are all due
        assert reg.next_sample_time == 40
        # The whole delta lands in the first closed window.
        assert series.buckets == {0: 5.0}

    def test_source_reset_treated_as_restart(self):
        reg = TelemetryRegistry(interval=10)
        source = {"v": 8}
        series = reg.add_probe("p", lambda: source["v"])
        reg.maybe_sample(10)
        source["v"] = 2  # reset behind our back
        reg.maybe_sample(20)
        assert series.buckets[1] == pytest.approx(2.0)

    def test_finalize_flushes_trailing_partial_window(self):
        reg = TelemetryRegistry(interval=100)
        source = {"v": 0}
        series = reg.add_probe("p", lambda: source["v"])
        source["v"] = 4
        reg.finalize(50)  # run ended mid-window
        assert series.total == pytest.approx(4.0)
        assert reg.finalized_at == 50

    def test_finalizers_run_with_end_time(self):
        reg = TelemetryRegistry()
        seen = []
        reg.add_finalizer(seen.append)
        reg.finalize(777)
        assert seen == [777]

    def test_restart_sampling_aligns_past_now(self):
        reg = TelemetryRegistry(interval=100)
        reg.restart_sampling(250)
        assert reg.next_sample_time == 300
        reg.restart_sampling(300)
        assert reg.next_sample_time == 400

    def test_reset_zeroes_metrics_and_rebaselines_probes(self):
        reg = TelemetryRegistry(interval=10)
        source = {"v": 0}
        series = reg.add_probe("p", lambda: source["v"])
        counter = reg.counter("c")
        counter.inc(5)
        source["v"] = 9
        reg.reset()
        reg.maybe_sample(10)
        assert counter.value == 0
        # Pre-reset growth must not leak into the post-reset series.
        assert series.total == 0.0


class TestEventSinks:
    def test_sinks_deduplicate(self):
        reg = TelemetryRegistry()
        sink = object()
        reg.add_event_sink(sink)
        reg.add_event_sink(sink)
        reg.add_event_sink(None)
        assert reg.event_sinks == [sink]

    def test_disabled_registry_accepts_no_sinks(self):
        reg = TelemetryRegistry(enabled=False)
        reg.add_event_sink(object())
        assert reg.event_sinks == []


class TestDisabledMode:
    def test_factories_hand_out_shared_null_singletons(self):
        reg = TelemetryRegistry(enabled=False)
        assert reg.counter("c") is NULL_COUNTER
        assert reg.gauge("g") is NULL_GAUGE
        assert reg.histogram("h") is NULL_HISTOGRAM
        assert reg.interval_series("s") is NULL_SERIES
        assert reg.transition_matrix("t") is NULL_TRANSITIONS
        assert len(reg) == 0

    def test_null_metrics_record_nothing(self):
        reg = TelemetryRegistry(enabled=False)
        reg.counter("c").inc(100)
        reg.gauge("g").set(9.0)
        reg.histogram("h").observe(3.0)
        reg.transition_matrix("t").record("I", "x", "CI")
        series = reg.add_probe("p", lambda: 42)
        reg.maybe_sample(1_000_000)
        reg.finalize(2_000_000)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_TRANSITIONS.total == 0
        assert series.total == 0.0
        assert reg.finalized_at is None

    def test_disabled_snapshot_is_empty(self):
        reg = TelemetryRegistry(enabled=False)
        reg.counter("c").inc()
        snap = reg.to_dict()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestRegistryMerge:
    def test_merge_combines_every_kind(self):
        a = TelemetryRegistry(interval=10)
        b = TelemetryRegistry(interval=10)
        for reg, scale in ((a, 1), (b, 2)):
            reg.counter("c").inc(scale)
            reg.gauge("g").set(scale * 1.0)
            reg.histogram("h", bounds=[10]).observe(scale)
            reg.interval_series("s").record(5, scale)
            reg.transition_matrix("t").record("I", "x", "CI")
        a.merge_from(b)
        assert a.get("c").value == 3
        assert a.get("g").value == 2.0
        assert a.get("h").count == 2
        assert a.get("s").total == pytest.approx(3.0)
        assert a.get("t").counts[("I", "x", "CI")] == 2

    def test_merge_copies_metrics_absent_here(self):
        a = TelemetryRegistry()
        b = TelemetryRegistry()
        b.counter("only.in.b").inc(4)
        a.merge_from(b)
        assert a.get("only.in.b").value == 4
        # And the copy is independent of b's metric.
        b.get("only.in.b").inc()
        assert a.get("only.in.b").value == 4
