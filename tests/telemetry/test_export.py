"""Exporter round-trips: JSON, CSV, Prometheus text exposition."""

import pytest

from repro.telemetry.export import (
    load_csv,
    load_json,
    load_prometheus,
    save_csv,
    save_json,
    save_prometheus,
    to_csv,
    to_json,
    to_prometheus,
)
from repro.telemetry.registry import TelemetryRegistry


@pytest.fixture
def registry():
    reg = TelemetryRegistry(interval=100)
    reg.counter("machine.requests", help="external requests").inc(42)
    reg.gauge("bus.utilization").set(0.25)
    hist = reg.histogram("machine.latency", bounds=[10, 100])
    for value in (5, 50, 500):
        hist.observe(value)
    series = reg.interval_series("bus.broadcasts")
    series.record(50, 7.0)
    series.record(150, 3.0)
    matrix = reg.transition_matrix("rca.transitions")
    matrix.record("I", "local.read", "CI")
    matrix.record("CI", "evict", "I")
    return reg


class TestJson:
    def test_round_trip(self, registry):
        snapshot = load_json(to_json(registry))
        assert snapshot == registry.to_dict()

    def test_save_and_load_path(self, registry, tmp_path):
        path = tmp_path / "t.json"
        save_json(registry, path)
        assert load_json(str(path)) == registry.to_dict()

    def test_counters_and_series_content(self, registry):
        snapshot = load_json(to_json(registry))
        assert snapshot["counters"]["machine.requests"]["value"] == 42
        assert snapshot["series"]["bus.broadcasts"]["total"] == 10.0
        assert snapshot["series"]["bus.broadcasts"]["buckets"] == {
            "0": 7.0, "1": 3.0,
        }


class TestCsv:
    def test_round_trip_scalars(self, registry, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(registry, path)
        parsed = load_csv(str(path))
        assert parsed["counter"]["machine.requests"]["value"] == 42.0
        assert parsed["gauge"]["bus.utilization"]["value"] == 0.25
        hist = parsed["histogram"]["machine.latency"]
        assert hist["count"] == 3.0
        assert hist["sum"] == 555.0
        assert hist["bucket_le_10"] == 1.0
        assert hist["bucket_le_+Inf"] == 1.0
        series = parsed["series"]["bus.broadcasts"]
        assert series["total"] == 10.0
        assert series["window_0"] == 7.0
        trans = parsed["transitions"]["rca.transitions"]
        assert trans["coverage"] == 2.0
        assert trans["I->local.read->CI"] == 1.0

    def test_bad_header_raises(self):
        with pytest.raises(ValueError):
            load_csv("a,b,c\n1,2,3\n")


class TestPrometheus:
    def test_names_are_legal_and_prefixed(self, registry):
        text = to_prometheus(registry)
        assert "repro_machine_requests 42" in text
        assert "repro_bus_utilization 0.25" in text
        # No raw dotted names escape into the exposition.
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split("{")[0].split(" ")[0]

    def test_histogram_exposition(self, registry):
        parsed = load_prometheus(to_prometheus(registry))
        assert parsed["types"]["repro_machine_latency"] == "histogram"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in parsed["samples"]
        }
        assert samples[("repro_machine_latency_bucket", (("le", "10"),))] == 1
        assert samples[("repro_machine_latency_bucket", (("le", "+Inf"),))] == 3
        assert samples[("repro_machine_latency_sum", ())] == 555
        assert samples[("repro_machine_latency_count", ())] == 3

    def test_series_and_transition_labels(self, registry, tmp_path):
        path = tmp_path / "t.prom"
        save_prometheus(registry, path)
        parsed = load_prometheus(str(path))
        samples = parsed["samples"]
        windows = {
            labels["window"]: value
            for name, labels, value in samples
            if name == "repro_bus_broadcasts"
        }
        assert windows == {"0": 7.0, "1": 3.0}
        cells = {
            (labels["from"], labels["event"], labels["to"]): value
            for name, labels, value in samples
            if name == "repro_rca_transitions"
        }
        assert cells[("I", "local.read", "CI")] == 1.0
        assert cells[("CI", "evict", "I")] == 1.0

    def test_empty_registry_exports_empty_document(self):
        empty = TelemetryRegistry()
        assert to_prometheus(empty) == ""
        assert load_csv(to_csv(empty)) == {}
        assert load_json(to_json(empty))["counters"] == {}

    def test_every_metric_gets_help_and_type(self, registry):
        parsed = load_prometheus(to_prometheus(registry))
        assert set(parsed["helps"]) == set(parsed["types"])
        assert parsed["helps"]["repro_machine_requests"] == \
            "external requests"
        # Metrics registered without help text fall back to their name.
        assert parsed["helps"]["repro_bus_utilization"] == "bus.utilization"
        for line in to_prometheus(registry).splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                assert len(line.split(" ", 3)) == 4 or \
                    line.startswith("# TYPE")

    def test_hostile_label_values_round_trip(self):
        reg = TelemetryRegistry()
        matrix = reg.transition_matrix("rca.hostile")
        hostile = [
            'quote"inside',
            "back\\slash",
            "new\nline",
            "literal\\nbackslash-n",
            'all\\"three\n',
        ]
        for i, state in enumerate(hostile):
            matrix.record(state, f"event{i}", state)
        text = to_prometheus(reg)
        assert "\n\n" not in text  # no raw newline broke a sample line
        parsed = load_prometheus(text)
        seen = {
            labels["from"]
            for name, labels, _ in parsed["samples"]
            if name == "repro_rca_hostile"
        }
        assert seen == set(hostile)

    def test_hostile_help_text_round_trips(self):
        reg = TelemetryRegistry()
        help_text = 'multi\nline "help" with back\\slash and literal \\n'
        reg.counter("machine.hostile", help=help_text).inc()
        text = to_prometheus(reg)
        # The exposition stays line-oriented: exactly one HELP, one
        # TYPE, one sample.
        assert len(text.splitlines()) == 3
        parsed = load_prometheus(text)
        assert parsed["helps"]["repro_machine_hostile"] == help_text
