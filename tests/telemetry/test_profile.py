"""Wall-clock profiler: phase timing, throughput, runlog emission."""

import pytest

from repro.harness.runlog import RunLog, read_runlog
from repro.telemetry.profile import Profiler


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestPhases:
    def test_phase_accumulates_wall_time(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.phase("simulate"):
            clock.advance(2.0)
        with profiler.phase("simulate"):
            clock.advance(3.0)
        (timing,) = profiler.phases()
        assert timing.name == "simulate"
        assert timing.seconds == pytest.approx(5.0)
        assert timing.entries == 2

    def test_nested_phases_attribute_to_both(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.phase("outer"):
            clock.advance(1.0)
            with profiler.phase("inner"):
                clock.advance(2.0)
        by_name = {t.name: t for t in profiler.phases()}
        assert by_name["outer"].seconds == pytest.approx(3.0)
        assert by_name["inner"].seconds == pytest.approx(2.0)

    def test_elapsed_is_since_construction(self, clock):
        profiler = Profiler(clock=clock)
        clock.advance(7.5)
        assert profiler.elapsed() == pytest.approx(7.5)


class TestEvents:
    def test_count_events_defaults_to_current_phase(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.phase("simulate"):
            clock.advance(2.0)
            profiler.count_events(1000)
        (timing,) = profiler.phases()
        assert timing.events == 1000
        assert timing.events_per_second() == pytest.approx(500.0)

    def test_count_events_outside_any_phase_goes_to_total(self, clock):
        profiler = Profiler(clock=clock)
        profiler.count_events(5)
        assert {t.name: t.events for t in profiler.phases()} == {"total": 5}

    def test_explicit_phase_creates_it(self, clock):
        profiler = Profiler(clock=clock)
        profiler.count_events(3, phase="export")
        assert profiler.phases()[0].name == "export"

    def test_zero_seconds_rate_is_zero(self, clock):
        profiler = Profiler(clock=clock)
        profiler.count_events(10, phase="p")
        assert profiler.phases()[0].events_per_second() == 0.0


class TestOutput:
    def test_to_dict_shape(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.phase("simulate"):
            clock.advance(1.0)
            profiler.count_events(10)
        payload = profiler.to_dict()
        assert payload["elapsed_s"] == pytest.approx(1.0)
        phase = payload["phases"]["simulate"]
        assert phase["seconds"] == pytest.approx(1.0)
        assert phase["entries"] == 1
        assert phase["events"] == 10
        assert phase["events_per_sec"] == pytest.approx(10.0)

    def test_eventless_phase_omits_rate_fields(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.phase("idle"):
            clock.advance(1.0)
        phase = profiler.to_dict()["phases"]["idle"]
        assert "events" not in phase and "events_per_sec" not in phase

    def test_render_lists_every_phase(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.phase("a"):
            clock.advance(0.5)
        with profiler.phase("b"):
            clock.advance(0.5)
            profiler.count_events(50)
        text = profiler.render()
        assert "a" in text and "b" in text
        assert "(total elapsed)" in text

    def test_emit_appends_profile_record(self, clock, tmp_path):
        profiler = Profiler(clock=clock)
        with profiler.phase("simulate"):
            clock.advance(1.0)
        path = tmp_path / "runs.jsonl"
        with RunLog(path) as runlog:
            written = profiler.emit(runlog, command="telemetry")
        assert written["event"] == "profile"
        (record,) = read_runlog(path)
        assert record["event"] == "profile"
        assert record["command"] == "telemetry"
        assert record["phases"]["simulate"]["entries"] == 1

    def test_emit_without_runlog_is_noop(self, clock):
        assert Profiler(clock=clock).emit(None) is None
