"""Differential harness end-to-end: clean machines pass, seeded bugs fail.

The load-bearing test here is :class:`TestSeededBug`: it breaks one
entry of the paper's Table 1 (CLEAN_CLEAN stops broadcasting UPGRADEs),
proves the campaign catches it, shrinks the failure to a hand-readable
reproducer, and proves the reproducer flips back to green once the bug
is fixed — the complete find → shrink → regress workflow from
``docs/conformance.md``.
"""

import json

import pytest

from repro.coherence.requests import RequestType
from repro.conformance.campaign import campaign_config_names, run_iteration
from repro.conformance.differential import run_differential
from repro.conformance.fuzz import fuzz_trace
from repro.conformance.shrink import load_corpus_file, shrink_trace, write_reproducer
from repro.harness.perfbench import bench_config
from repro.rca.states import RegionState


def _run(workload, config_name, telemetry=False, seed=0):
    return run_differential(
        workload, bench_config(config_name), config_name,
        seed=seed, telemetry=telemetry, bundle_dir=None,
    )


class TestCleanMachine:
    @pytest.mark.parametrize("config_name", campaign_config_names())
    def test_all_configs_conform(self, config_name):
        nprocs = int(config_name.split("p-")[0])
        workload = fuzz_trace(1, nprocs, ops_per_processor=24, seed=0)
        outcome = _run(workload, config_name)
        assert outcome.ok, outcome.mismatches[:5]
        assert outcome.accesses == 24 * nprocs
        assert outcome.events > 0

    @pytest.mark.parametrize("telemetry", [False, True])
    def test_telemetry_does_not_change_the_verdict(self, telemetry):
        workload = fuzz_trace(2, 4, ops_per_processor=24, seed=0)
        outcome = _run(workload, "4p-cgct", telemetry=telemetry)
        assert outcome.ok, outcome.mismatches[:5]

    def test_campaign_matrix_fuzzes_32p(self):
        assert "32p-baseline" in campaign_config_names()
        assert "32p-cgct" in campaign_config_names()

    @pytest.mark.parametrize("config_name", ["4p-cgct", "32p-cgct"])
    def test_both_snoop_paths_conform_identically(self, config_name):
        # The golden model knows nothing about snoop implementations:
        # walk and bitmask must both conform, over the same accesses
        # and the same coherence event stream.
        nprocs = int(config_name.split("p-")[0])
        workload = fuzz_trace(4, nprocs, ops_per_processor=24, seed=0)
        outcomes = {
            snoop: run_differential(
                workload, bench_config(config_name), config_name,
                seed=0, snoop=snoop,
            )
            for snoop in ("walk", "bitmask")
        }
        for snoop, outcome in outcomes.items():
            assert outcome.ok, (snoop, outcome.mismatches[:5])
        assert outcomes["walk"].accesses == outcomes["bitmask"].accesses
        assert outcomes["walk"].events == outcomes["bitmask"].events

    def test_run_iteration_covers_every_requested_config(self):
        outcomes = run_iteration(
            trace_id=3, seed=0, ops=16,
            config_names=("4p-baseline", "4p-cgct", "8p-cgct"),
            telemetry=False,
        )
        assert [o.config_name for o in outcomes] == [
            "4p-baseline", "4p-cgct", "8p-cgct"
        ]
        assert all(o.ok for o in outcomes), [
            m for o in outcomes for m in o.mismatches[:2]
        ]


def _break_clean_clean_upgrade():
    """Seed the Table 1 bug: CC regions stop broadcasting UPGRADEs.

    Returns the saved tuple so callers can restore it in a finally
    block. With the bug in place a processor that has a shared (clean)
    copy upgrades it to M without invalidating the other sharers —
    a textbook lost invalidation.
    """
    state = RegionState.CLEAN_CLEAN
    saved = state.broadcast_needed
    mutated = list(saved)
    mutated[RequestType.UPGRADE.index] = False
    state.broadcast_needed = tuple(mutated)
    return saved


def _find_failing_trace(config_name="4p-cgct", max_id=8):
    for trace_id in range(max_id):
        workload = fuzz_trace(trace_id, 4, ops_per_processor=48, seed=0)
        outcome = _run(workload, config_name)
        if not outcome.ok:
            return workload, outcome
    return None, None


class TestSeededBug:
    def test_bug_is_caught_and_shrinks_small(self, tmp_path):
        saved = _break_clean_clean_upgrade()
        try:
            workload, outcome = _find_failing_trace()
            assert workload is not None, (
                "seeded CLEAN_CLEAN/UPGRADE bug survived 8 fuzz traces"
            )

            def is_failing(candidate):
                return not _run(candidate, outcome.config_name).ok

            minimized, evals = shrink_trace(workload, is_failing)
            accesses = sum(len(t) for t in minimized.per_processor)
            assert accesses <= 12, (
                f"reproducer still has {accesses} accesses after "
                f"{evals} evaluations"
            )

            min_outcome = _run(minimized, outcome.config_name)
            assert not min_outcome.ok
            bundle_path, corpus_path = write_reproducer(
                minimized, min_outcome, tmp_path, shrink_evals=evals,
            )
            bundle = json.loads(bundle_path.read_text(encoding="utf-8"))
            assert bundle["schema"] == "cgct-diagnostics/v1"
            assert bundle["kind"] == "conformance-reproducer"
            assert bundle["mismatches"]
            assert bundle["accesses"] == accesses

            # The committed-corpus file round-trips and still fails
            # while the bug is live...
            replayed, meta = load_corpus_file(corpus_path)
            assert meta["configs"] == [outcome.config_name]
            assert not _run(replayed, outcome.config_name).ok
        finally:
            RegionState.CLEAN_CLEAN.broadcast_needed = saved
        # ... and passes the moment the protocol is fixed: exactly the
        # regression test test_corpus.py runs forever.
        assert _run(replayed, outcome.config_name).ok

    def test_shrink_rejects_passing_traces(self):
        from repro.common.errors import SimulationError

        workload = fuzz_trace(1, 4, ops_per_processor=16, seed=0)
        with pytest.raises(SimulationError, match="does not fail"):
            shrink_trace(workload, lambda w: not _run(w, "4p-cgct").ok)


class TestFlightRecorder:
    def test_passing_outcomes_carry_no_flight_history(self):
        workload = fuzz_trace(1, 4, ops_per_processor=24, seed=0)
        assert _run(workload, "4p-cgct").flight is None

    def test_failing_outcome_and_reproducer_carry_flight_history(
        self, tmp_path
    ):
        saved = _break_clean_clean_upgrade()
        try:
            workload, outcome = _find_failing_trace()
            assert workload is not None
            # The sanitizer's flight recorder was live during the run;
            # the failing outcome carries its tail...
            assert outcome.flight
            assert len(outcome.flight) <= 16
            for record in outcome.flight:
                assert record["op"]
                assert record["spans"]
            # ... and the written reproducer embeds it, so a bundle
            # alone shows what the machine did before diverging.
            bundle_path, _ = write_reproducer(
                workload, outcome, tmp_path, shrink_evals=0,
            )
            bundle = json.loads(bundle_path.read_text(encoding="utf-8"))
            assert bundle["flight_recorder"] == outcome.flight
        finally:
            RegionState.CLEAN_CLEAN.broadcast_needed = saved
