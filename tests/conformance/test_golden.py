"""Property tests for the golden reference model.

The golden model is the conformance suite's ground truth, so its own
correctness cannot lean on the simulator. Everything here is checkable
on paper: single-writer semantics, read-your-writes, internal
invariants along arbitrary random traces, and final-state determinism
under interleavings that preserve per-processor program order.

Randomness comes from seeded :mod:`random` streams only — every failure
reproduces from the printed seed.
"""

import random

import pytest

from repro.conformance.golden import GoldenModel, replay
from repro.coherence.requests import RequestType
from repro.workloads.trace import TraceOp
from tests.conftest import multitrace

_MEMORY_OPS = (
    TraceOp.LOAD, TraceOp.STORE, TraceOp.IFETCH,
    TraceOp.DCBZ, TraceOp.DCBF, TraceOp.DCBI,
)


class TestSingleWriter:
    def test_store_leaves_exactly_one_holder(self):
        model = GoldenModel(4)
        for proc in range(4):
            model.access(proc, TraceOp.LOAD, 0x10)
        model.access(2, TraceOp.STORE, 0x10)
        assert model.holders[0x10] == 1 << 2
        assert model.dirty_owner[0x10] == 2

    def test_readers_join_without_stealing_dirtiness(self):
        model = GoldenModel(4)
        model.access(1, TraceOp.STORE, 0x10)
        model.access(0, TraceOp.LOAD, 0x10)
        model.access(3, TraceOp.LOAD, 0x10)
        # MOESI M->O: the dirty data stays with the last writer.
        assert model.dirty_owner[0x10] == 1
        assert model.holders[0x10] == (1 << 0) | (1 << 1) | (1 << 3)

    def test_purge_clears_everything(self):
        model = GoldenModel(4)
        model.access(1, TraceOp.STORE, 0x10)
        model.access(0, TraceOp.LOAD, 0x10)
        model.access(2, TraceOp.DCBF, 0x10)
        assert 0x10 not in model.holders
        assert 0x10 not in model.dirty_owner

    def test_random_traces_never_have_two_writers(self):
        rng = random.Random(101)
        model = GoldenModel(8)
        for _ in range(4000):
            model.access(
                rng.randrange(8), rng.choice(_MEMORY_OPS), rng.randrange(32)
            )
            # dirty_owner is a single int per line by construction; the
            # meaningful property is that it is always a holder.
            assert model.check_self() == []


class TestReadYourWrites:
    def test_own_access_after_write_needs_no_broadcast(self):
        model = GoldenModel(4)
        model.access(0, TraceOp.LOAD, 0x20)  # someone else shares first
        model.access(1, TraceOp.STORE, 0x20)
        for op in (TraceOp.LOAD, TraceOp.STORE, TraceOp.IFETCH):
            assert not model.must_broadcast(1, op, 0x20)

    def test_remote_copy_forces_broadcast(self):
        model = GoldenModel(4)
        model.access(1, TraceOp.STORE, 0x20)
        assert model.must_broadcast(0, TraceOp.LOAD, 0x20)
        assert model.must_broadcast(0, TraceOp.STORE, 0x20)
        assert model.must_broadcast(0, TraceOp.IFETCH, 0x20)  # dirty remote

    def test_ifetch_tolerates_remote_clean_copies(self):
        model = GoldenModel(4)
        model.access(1, TraceOp.LOAD, 0x20)
        assert model.must_broadcast(0, TraceOp.LOAD, 0x20)
        assert not model.must_broadcast(0, TraceOp.IFETCH, 0x20)

    def test_random_write_read_pairs(self):
        rng = random.Random(202)
        model = GoldenModel(8)
        for _ in range(2000):
            proc = rng.randrange(8)
            line = rng.randrange(16)
            model.access(proc, rng.choice(_MEMORY_OPS), line)
            last = model.access(proc, TraceOp.STORE, line)
            assert last.proc == proc
            # Immediately after my own store, nobody else may hold it.
            assert model.remote_may_hold(proc, line) == 0
            assert not model.must_broadcast(proc, TraceOp.STORE, line)


class TestInvariantsUnderFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_check_self_clean_along_random_trace(self, seed):
        rng = random.Random(seed)
        model = GoldenModel(4)
        for step in range(3000):
            model.access(
                rng.randrange(4), rng.choice(_MEMORY_OPS), rng.randrange(64)
            )
            if step % 97 == 0:
                assert model.check_self() == [], f"seed={seed} step={step}"
        assert model.check_self() == []

    def test_prefetch_requests_keep_invariants(self):
        rng = random.Random(7)
        model = GoldenModel(4)
        for _ in range(2000):
            proc, line = rng.randrange(4), rng.randrange(32)
            if rng.random() < 0.5:
                model.access(proc, rng.choice(_MEMORY_OPS), line)
            else:
                request = rng.choice(
                    (RequestType.PREFETCH, RequestType.PREFETCH_EX)
                )
                model.apply_request(proc, request, line)
            assert model.check_self() == []

    def test_prefetch_ex_clears_remote_dirty_owner(self):
        model = GoldenModel(4)
        model.access(2, TraceOp.STORE, 0x30)
        model.apply_request(0, RequestType.PREFETCH_EX, 0x30)
        # The old owner supplied the data and was invalidated; the new
        # copy is clean-exclusive, so nobody may be dirty.
        assert model.holders[0x30] == 1 << 0
        assert 0x30 not in model.dirty_owner


def _random_program_order(rng, lengths):
    """A global interleaving preserving each processor's program order."""
    remaining = list(lengths)
    order = []
    while any(remaining):
        procs = [p for p, n in enumerate(remaining) if n]
        proc = rng.choice(procs)
        remaining[proc] -= 1
        order.append(proc)
    return order


class TestFinalStateDeterminism:
    """Write-disjoint workloads converge regardless of interleaving.

    When no two processors write the same line (reads may overlap
    freely), the final golden state is a function of the per-processor
    programs alone: every permutation that preserves program order must
    land on the same final state.
    """

    def _write_disjoint_workload(self, rng, nprocs=4, ops=60):
        per_proc = []
        for proc in range(nprocs):
            records = []
            for _ in range(ops):
                if rng.random() < 0.4:
                    # Private writable line: proc-tagged address.
                    line = (proc + 1) * 0x1000 + rng.randrange(8)
                    op = rng.choice((TraceOp.STORE, TraceOp.DCBZ))
                else:
                    # Shared read-only pool.
                    line = rng.randrange(8)
                    op = rng.choice((TraceOp.LOAD, TraceOp.IFETCH))
                records.append((op, line << 6, 0))
            per_proc.append(records)
        return multitrace(per_proc, name="write-disjoint")

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_interleavings_converge(self, seed):
        rng = random.Random(seed)
        workload = self._write_disjoint_workload(rng)
        lengths = [len(t) for t in workload.per_processor]
        reference, _ = replay(workload, line_shift=6)
        for _ in range(5):
            order = _random_program_order(rng, lengths)
            model, verdicts = replay(workload, line_shift=6, order=order)
            assert model.final_state() == reference.final_state()
            assert len(verdicts) == sum(lengths)

    def test_conflicting_writes_may_diverge_but_stay_sound(self):
        # Not a determinism claim — with racing writes the final owner
        # depends on the order, but the invariants still hold.
        rng = random.Random(99)
        per_proc = [
            [(TraceOp.STORE, 0x40, 0)] * 10 for _ in range(4)
        ]
        workload = multitrace(per_proc, name="racing")
        for _ in range(5):
            order = _random_program_order(rng, [10] * 4)
            model, _ = replay(workload, line_shift=6, order=order)
            assert model.check_self() == []
            assert model.holders[1] == 1 << model.dirty_owner[1]
