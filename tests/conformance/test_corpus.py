"""Replay every committed corpus trace through the differential harness.

The corpus is the conformance campaign's long-term memory: each file is
either a hand-written scenario targeting one protocol mechanism or a
shrunk reproducer of a real past failure (see ``docs/conformance.md``
for how the shrinker emits ready-to-commit files). Every trace must
stay green on every config it names, forever.
"""

from pathlib import Path

import pytest

from repro.conformance.differential import run_differential
from repro.conformance.shrink import load_corpus_file
from repro.harness.perfbench import bench_config

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 10


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=lambda p: p.stem,
)
def test_corpus_trace_conforms(path):
    workload, meta = load_corpus_file(path)
    configs = meta["configs"] or [
        f"{workload.num_processors}p-baseline",
        f"{workload.num_processors}p-cgct",
    ]
    for config_name in configs:
        outcome = run_differential(
            workload, bench_config(config_name), config_name,
            seed=meta.get("seed", 0), bundle_dir=None,
        )
        assert outcome.ok, (
            f"{path.name} on {config_name}: {outcome.mismatches[:5]}"
        )


def test_corpus_files_are_well_formed():
    for path in CORPUS_FILES:
        workload, meta = load_corpus_file(path)
        assert meta["schema"] == "cgct-conformance-corpus/v1"
        assert meta["description"]
        assert workload.num_processors == meta["num_processors"]
        assert sum(len(t) for t in workload.per_processor) == len(
            meta["records"]
        )
