"""The fuzzer's contract: deterministic, independent, well-formed."""

import numpy as np
import pytest

from repro.conformance.fuzz import fuzz_trace
from repro.memory.geometry import Geometry
from repro.workloads.trace import TraceOp


def _flat_addresses(workload):
    return np.concatenate([t.addresses for t in workload.per_processor])


class TestDeterminism:
    def test_same_arguments_same_trace(self):
        a = fuzz_trace(5, 4, ops_per_processor=40, seed=1)
        b = fuzz_trace(5, 4, ops_per_processor=40, seed=1)
        for ta, tb in zip(a.per_processor, b.per_processor):
            assert np.array_equal(ta.ops, tb.ops)
            assert np.array_equal(ta.addresses, tb.addresses)
            assert np.array_equal(ta.gaps, tb.gaps)

    def test_trace_ids_draw_independent_streams(self):
        a = fuzz_trace(0, 4, ops_per_processor=40, seed=1)
        b = fuzz_trace(1, 4, ops_per_processor=40, seed=1)
        assert not np.array_equal(_flat_addresses(a), _flat_addresses(b))

    def test_machine_sizes_draw_independent_streams(self):
        a = fuzz_trace(3, 4, ops_per_processor=40, seed=1)
        b = fuzz_trace(3, 8, ops_per_processor=40, seed=1)
        assert not np.array_equal(
            a.per_processor[0].addresses, b.per_processor[0].addresses
        )

    def test_seeds_draw_independent_streams(self):
        a = fuzz_trace(3, 4, ops_per_processor=40, seed=0)
        b = fuzz_trace(3, 4, ops_per_processor=40, seed=1)
        assert not np.array_equal(_flat_addresses(a), _flat_addresses(b))


class TestShape:
    @pytest.mark.parametrize("nprocs", [2, 4, 8])
    def test_exact_op_counts(self, nprocs):
        workload = fuzz_trace(2, nprocs, ops_per_processor=32, seed=0)
        assert workload.num_processors == nprocs
        assert all(len(t) == 32 for t in workload.per_processor)

    def test_names(self):
        workload = fuzz_trace(7, 4, ops_per_processor=16, seed=0)
        assert workload.name == "fuzz-7"
        assert workload.per_processor[2].name == "fuzz7.p2"

    @pytest.mark.parametrize("trace_id", range(8))
    def test_validates_against_geometry(self, trace_id):
        workload = fuzz_trace(trace_id, 4, ops_per_processor=48, seed=0)
        workload.validate(Geometry())

    def test_covers_the_interesting_op_classes(self):
        # Across a handful of traces the adversarial schedules must
        # exercise stores, loads and the DCB family — otherwise the
        # campaign quietly stops testing whole protocol paths.
        present = set()
        for trace_id in range(12):
            workload = fuzz_trace(trace_id, 4, ops_per_processor=48, seed=0)
            for trace in workload.per_processor:
                present.update(trace.ops.tolist())
        assert int(TraceOp.LOAD) in present
        assert int(TraceOp.STORE) in present
        assert int(TraceOp.IFETCH) in present
        assert present & {
            int(TraceOp.DCBZ), int(TraceOp.DCBF), int(TraceOp.DCBI)
        }

    def test_schedules_collide_across_processors(self):
        # The whole point of the fuzzer: processors must actually meet
        # in the address space, or no coherence traffic gets tested.
        workload = fuzz_trace(1, 4, ops_per_processor=48, seed=0)
        per_proc_lines = [
            {a >> 6 for a in t.addresses.tolist()}
            for t in workload.per_processor
        ]
        collisions = sum(
            len(a & b)
            for i, a in enumerate(per_proc_lines)
            for b in per_proc_lines[i + 1:]
        )
        assert collisions > 0
