"""Generic set-associative array with preference-aware LRU."""

import pytest

from repro.cache.setassoc import SetAssociativeArray
from repro.common.errors import ConfigurationError


@pytest.fixture
def array():
    return SetAssociativeArray(num_sets=4, ways=2, name="test")


class TestBasics:
    def test_lookup_miss_returns_none(self, array):
        assert array.lookup(0, 1) is None

    def test_insert_then_lookup(self, array):
        array.insert(0, 1, "a")
        assert array.lookup(0, 1) == "a"
        assert len(array) == 1

    def test_duplicate_insert_rejected(self, array):
        array.insert(0, 1, "a")
        with pytest.raises(ValueError):
            array.insert(0, 1, "b")

    def test_insert_into_full_set_rejected(self, array):
        array.insert(0, 1, "a")
        array.insert(0, 2, "b")
        with pytest.raises(ValueError):
            array.insert(0, 3, "c")

    def test_remove(self, array):
        array.insert(0, 1, "a")
        assert array.remove(0, 1) == "a"
        assert array.lookup(0, 1) is None

    def test_remove_missing_raises(self, array):
        with pytest.raises(KeyError):
            array.remove(0, 1)

    def test_sets_are_independent(self, array):
        array.insert(0, 1, "a")
        array.insert(1, 1, "b")
        assert array.lookup(0, 1) == "a"
        assert array.lookup(1, 1) == "b"


class TestLRU:
    def test_victim_is_least_recently_used(self, array):
        array.insert(0, 1, "a")
        array.insert(0, 2, "b")
        assert array.victim(0) == (1, "a")

    def test_lookup_touch_promotes(self, array):
        array.insert(0, 1, "a")
        array.insert(0, 2, "b")
        array.lookup(0, 1)  # touch "a"
        assert array.victim(0) == (2, "b")

    def test_untouched_lookup_preserves_order(self, array):
        array.insert(0, 1, "a")
        array.insert(0, 2, "b")
        array.lookup(0, 1, touch=False)
        assert array.victim(0) == (1, "a")

    def test_no_victim_needed_when_free_way(self, array):
        array.insert(0, 1, "a")
        assert array.victim(0) is None
        assert not array.needs_victim(0)

    def test_preference_overrides_lru(self):
        array = SetAssociativeArray(1, 4)
        for tag in range(4):
            array.insert(0, tag, {"empty": tag == 2})
        tag, entry = array.victim(0, prefer=lambda e: e["empty"])
        assert tag == 2

    def test_preference_falls_back_to_lru(self):
        array = SetAssociativeArray(1, 2)
        array.insert(0, 1, {"empty": False})
        array.insert(0, 2, {"empty": False})
        assert array.victim(0, prefer=lambda e: e["empty"])[0] == 1

    def test_preference_picks_lru_most_among_matches(self):
        array = SetAssociativeArray(1, 4)
        for tag in range(4):
            array.insert(0, tag, {"empty": tag in (1, 3)})
        assert array.victim(0, prefer=lambda e: e["empty"])[0] == 1


class TestIntrospection:
    def test_iteration_yields_all(self, array):
        array.insert(0, 1, "a")
        array.insert(2, 5, "b")
        contents = {(s, t, e) for s, t, e in array}
        assert contents == {(0, 1, "a"), (2, 5, "b")}

    def test_set_contents_lru_order(self, array):
        array.insert(0, 1, "a")
        array.insert(0, 2, "b")
        array.lookup(0, 1)
        assert array.set_contents(0) == [(2, "b"), (1, "a")]

    def test_occupancy_and_clear(self, array):
        array.insert(0, 1, "a")
        assert array.occupancy(0) == 1
        array.clear()
        assert len(array) == 0


class TestValidation:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeArray(num_sets=3, ways=2)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeArray(num_sets=4, ways=0)
