"""Property-based tests: the set-associative array against a model.

A reference model (dict of recency-ordered lists) replays random
operation sequences; the array must agree on membership, occupancy and
victim choice at every step.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache.setassoc import SetAssociativeArray

NUM_SETS = 4
WAYS = 2

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "remove", "evict_lru"]),
        st.integers(0, NUM_SETS - 1),
        st.integers(0, 7),  # tag
    ),
    max_size=80,
)


class _Model:
    """Recency-ordered reference implementation."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]

    def insert(self, s, tag):
        if tag in self.sets[s] or len(self.sets[s]) >= WAYS:
            return False
        self.sets[s][tag] = f"v{s}:{tag}"
        return True

    def lookup(self, s, tag):
        if tag not in self.sets[s]:
            return None
        self.sets[s].move_to_end(tag)
        return self.sets[s][tag]

    def remove(self, s, tag):
        return self.sets[s].pop(tag, None)

    def lru(self, s):
        if len(self.sets[s]) < WAYS:
            return None
        return next(iter(self.sets[s]))


@settings(max_examples=200, deadline=None)
@given(ops)
def test_array_agrees_with_model(sequence):
    array = SetAssociativeArray(NUM_SETS, WAYS)
    model = _Model()
    for op, s, tag in sequence:
        if op == "insert":
            if model.insert(s, tag):
                array.insert(s, tag, f"v{s}:{tag}")
        elif op == "lookup":
            assert array.lookup(s, tag) == model.lookup(s, tag)
        elif op == "remove":
            expected = model.remove(s, tag)
            if expected is None:
                assert array.lookup(s, tag, touch=False) is None
            else:
                assert array.remove(s, tag) == expected
        elif op == "evict_lru":
            expected = model.lru(s)
            victim = array.victim(s)
            if expected is None:
                assert victim is None
            else:
                assert victim[0] == expected
    # Final state identical.
    for s in range(NUM_SETS):
        assert dict(array.set_contents(s)) == dict(model.sets[s])
        assert array.occupancy(s) == len(model.sets[s])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 31), min_size=1, max_size=60))
def test_fill_stream_never_exceeds_capacity(tags):
    """Insert-with-eviction keeps every set at or under its way count."""
    array = SetAssociativeArray(NUM_SETS, WAYS)
    for tag in tags:
        s = tag % NUM_SETS
        key = tag // NUM_SETS
        if array.lookup(s, key) is not None:
            continue
        victim = array.victim(s)
        if victim is not None:
            array.remove(s, victim[0])
        array.insert(s, key, tag)
        assert array.occupancy(s) <= WAYS
