"""L2 cache behaviour: MOESI storage, write-backs, region eviction."""

import pytest

from repro.cache.l2 import L2Cache
from repro.coherence.line_states import LineState
from repro.memory.geometry import Geometry


@pytest.fixture
def geom():
    return Geometry()


@pytest.fixture
def l2(geom):
    # 8 KB, 2-way ⇒ 64 sets: small enough to force evictions easily.
    return L2Cache(geom, size_bytes=8192, ways=2, name="l2test")


class TestBasics:
    def test_cold_miss(self, l2):
        assert l2.lookup(0x1000) is None
        assert l2.misses == 1

    def test_fill_then_hit(self, l2):
        l2.fill(0x1000, LineState.EXCLUSIVE)
        entry = l2.lookup(0x1000)
        assert entry is not None
        assert entry.state is LineState.EXCLUSIVE
        assert l2.hits == 1

    def test_fill_invalid_rejected(self, l2):
        with pytest.raises(ValueError):
            l2.fill(0x1000, LineState.INVALID)

    def test_refill_changes_state_in_place(self, l2):
        l2.fill(0x1000, LineState.SHARED)
        assert l2.fill(0x1000, LineState.MODIFIED) is None
        assert l2.peek(l2.geometry.line_of(0x1000)).state is LineState.MODIFIED

    def test_set_state(self, l2, geom):
        l2.fill(0x1000, LineState.SHARED)
        l2.set_state(geom.line_of(0x1000), LineState.MODIFIED)
        assert l2.peek(geom.line_of(0x1000)).state is LineState.MODIFIED

    def test_set_state_missing_raises(self, l2):
        with pytest.raises(KeyError):
            l2.set_state(42, LineState.MODIFIED)

    def test_set_state_to_invalid_rejected(self, l2, geom):
        l2.fill(0x1000, LineState.SHARED)
        with pytest.raises(ValueError):
            l2.set_state(geom.line_of(0x1000), LineState.INVALID)

    def test_invalidate(self, l2, geom):
        l2.fill(0x1000, LineState.MODIFIED)
        assert l2.invalidate(geom.line_of(0x1000)) is LineState.MODIFIED
        assert l2.invalidate(geom.line_of(0x1000)) is None


class TestEvictions:
    def _conflicting_addresses(self, l2, count):
        stride = l2.num_sets * l2.geometry.line_bytes
        return [i * stride for i in range(count)]

    def test_clean_victim_needs_no_writeback(self, l2):
        a, b, c = self._conflicting_addresses(l2, 3)
        l2.fill(a, LineState.SHARED)
        l2.fill(b, LineState.SHARED)
        victim = l2.fill(c, LineState.SHARED)
        assert victim is not None
        assert victim.line == l2.geometry.line_of(a)
        assert not victim.needs_writeback
        assert l2.writebacks == 0

    def test_dirty_victim_needs_writeback(self, l2):
        a, b, c = self._conflicting_addresses(l2, 3)
        l2.fill(a, LineState.MODIFIED)
        l2.fill(b, LineState.SHARED)
        victim = l2.fill(c, LineState.SHARED)
        assert victim.needs_writeback
        assert l2.writebacks == 1

    def test_owned_victim_needs_writeback(self, l2):
        a, b, c = self._conflicting_addresses(l2, 3)
        l2.fill(a, LineState.OWNED)
        l2.fill(b, LineState.SHARED)
        assert l2.fill(c, LineState.SHARED).needs_writeback


class TestCallbacks:
    def test_allocation_and_removal_callbacks(self, geom):
        events = []
        l2 = L2Cache(
            geom, size_bytes=8192, ways=2,
            on_line_allocated=lambda line: events.append(("alloc", line)),
            on_line_removed=lambda line: events.append(("remove", line)),
        )
        l2.fill(0x1000, LineState.SHARED)
        l2.invalidate(geom.line_of(0x1000))
        assert events == [
            ("alloc", geom.line_of(0x1000)),
            ("remove", geom.line_of(0x1000)),
        ]

    def test_victim_removal_fires_before_new_allocation(self, geom):
        events = []
        l2 = L2Cache(
            geom, size_bytes=8192, ways=2,
            on_line_allocated=lambda line: events.append(("alloc", line)),
            on_line_removed=lambda line: events.append(("remove", line)),
        )
        stride = l2.num_sets * geom.line_bytes
        l2.fill(0, LineState.SHARED)
        l2.fill(stride, LineState.SHARED)
        l2.fill(2 * stride, LineState.SHARED)
        kinds = [kind for kind, _line in events]
        assert kinds == ["alloc", "alloc", "remove", "alloc"]


class TestSnoops:
    def test_snoop_probe_counts(self, l2, geom):
        l2.fill(0x1000, LineState.SHARED)
        assert l2.snoop_probe(geom.line_of(0x1000)) is not None
        assert l2.snoop_probe(geom.line_of(0x2000)) is None
        assert l2.snoop_probes == 2
        assert l2.snoop_hits == 1

    def test_snoop_probe_does_not_count_demand_stats(self, l2, geom):
        l2.fill(0x1000, LineState.SHARED)
        hits, misses = l2.hits, l2.misses
        l2.snoop_probe(geom.line_of(0x1000))
        assert (l2.hits, l2.misses) == (hits, misses)


class TestRegionSupport:
    def test_resident_lines_of_region(self, l2, geom):
        base = 0x4000  # region-aligned
        l2.fill(base, LineState.SHARED)
        l2.fill(base + 64, LineState.MODIFIED)
        l2.fill(base + 4096, LineState.SHARED)  # different region
        region = geom.region_of(base)
        lines = {e.line for e in l2.resident_lines_of_region(region)}
        assert lines == {geom.line_of(base), geom.line_of(base + 64)}

    def test_evict_region_removes_all_and_counts(self, l2, geom):
        base = 0x4000
        l2.fill(base, LineState.MODIFIED)
        l2.fill(base + 64, LineState.SHARED)
        evicted = l2.evict_region(geom.region_of(base))
        assert len(evicted) == 2
        assert l2.region_forced_evictions == 2
        assert sum(e.needs_writeback for e in evicted) == 1
        assert l2.resident_lines_of_region(geom.region_of(base)) == []

    def test_evict_empty_region_is_noop(self, l2, geom):
        assert l2.evict_region(123) == []
        assert l2.region_forced_evictions == 0
