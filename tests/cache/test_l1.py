"""L1 cache behaviour (MSI, write-back, back-invalidation)."""

import pytest

from repro.cache.l1 import L1Cache
from repro.coherence.line_states import L1State
from repro.memory.geometry import Geometry


@pytest.fixture
def l1():
    # 4 KB, 4-way, 64 B lines ⇒ 16 sets.
    return L1Cache(Geometry(), size_bytes=4096, ways=4, name="l1test")


def test_geometry_of_sets(l1):
    assert l1.num_sets == 16
    assert l1.ways == 4


class TestLookups:
    def test_cold_miss(self, l1):
        assert not l1.lookup(0x1000)
        assert l1.misses == 1

    def test_hit_after_fill(self, l1):
        l1.fill(0x1000, writable=False)
        assert l1.lookup(0x1000)
        assert l1.hits == 1

    def test_hit_anywhere_in_line(self, l1):
        l1.fill(0x1000, writable=False)
        assert l1.lookup(0x103F)

    def test_write_to_shared_copy_misses(self, l1):
        l1.fill(0x1000, writable=False)
        assert not l1.lookup(0x1000, write=True)

    def test_write_to_modified_copy_hits(self, l1):
        l1.fill(0x1000, writable=True)
        assert l1.lookup(0x1000, write=True)

    def test_state_of(self, l1):
        assert l1.state_of(0x1000) is L1State.INVALID
        l1.fill(0x1000, writable=False)
        assert l1.state_of(0x1000) is L1State.SHARED
        l1.fill(0x1000, writable=True)
        assert l1.state_of(0x1000) is L1State.MODIFIED


class TestFills:
    def test_refill_upgrades_in_place(self, l1):
        l1.fill(0x1000, writable=False)
        assert l1.fill(0x1000, writable=True) is None
        assert l1.state_of(0x1000) is L1State.MODIFIED

    def test_eviction_returns_victim_line(self, l1):
        geom = l1.geometry
        # Five lines mapping to set 0 (stride = sets * line).
        stride = l1.num_sets * geom.line_bytes
        for i in range(4):
            assert l1.fill(i * stride, writable=False) is None
        victim = l1.fill(4 * stride, writable=False)
        assert victim == geom.line_of(0)  # LRU
        assert l1.evictions == 1

    def test_upgrade(self, l1):
        l1.fill(0x1000, writable=False)
        l1.upgrade(0x1000)
        assert l1.state_of(0x1000) is L1State.MODIFIED

    def test_upgrade_of_absent_line_is_noop(self, l1):
        l1.upgrade(0x1000)
        assert l1.state_of(0x1000) is L1State.INVALID


class TestInclusionSide:
    def test_back_invalidate_present(self, l1):
        l1.fill(0x1000, writable=True)
        assert l1.back_invalidate(l1.geometry.line_of(0x1000))
        assert l1.state_of(0x1000) is L1State.INVALID
        assert l1.back_invalidations == 1

    def test_back_invalidate_absent(self, l1):
        assert not l1.back_invalidate(99)
        assert l1.back_invalidations == 0

    def test_downgrade(self, l1):
        l1.fill(0x1000, writable=True)
        l1.downgrade(l1.geometry.line_of(0x1000))
        assert l1.state_of(0x1000) is L1State.SHARED

    def test_resident_lines(self, l1):
        l1.fill(0x1000, writable=False)
        l1.fill(0x2000, writable=True)
        geom = l1.geometry
        assert set(l1.resident_lines()) == {
            geom.line_of(0x1000), geom.line_of(0x2000)
        }


def test_reset_stats(l1):
    l1.lookup(0x0)
    l1.fill(0x0, writable=False)
    l1.reset_stats()
    assert l1.hits == l1.misses == l1.evictions == 0
