"""Sectored cache model (Section 2 contrast)."""

import pytest

from repro.cache.sectored import SectoredCache
from repro.common.errors import ConfigurationError
from repro.memory.geometry import Geometry


@pytest.fixture
def geom():
    return Geometry()


def small(geom, lines_per_sector=4, size=8192, ways=2):
    return SectoredCache(geom, size_bytes=size, ways=ways,
                         lines_per_sector=lines_per_sector)


class TestBasics:
    def test_cold_miss_then_hit(self, geom):
        cache = small(geom)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.sector_misses == 1
        assert cache.line_misses == 0

    def test_line_miss_within_present_sector(self, geom):
        cache = small(geom)
        cache.access(0x1000)
        assert not cache.access(0x1040)  # same 256B sector, next line
        assert cache.line_misses == 1
        assert cache.sector_misses == 1

    def test_hit_requires_valid_line_not_just_tag(self, geom):
        cache = small(geom)
        cache.access(0x1000)
        # Tag matches but line 3 has never been touched.
        assert not cache.access(0x10C0)

    def test_one_line_per_sector_is_conventional(self, geom):
        cache = small(geom, lines_per_sector=1)
        cache.access(0x1000)
        assert cache.access(0x1000)
        assert not cache.access(0x1040)  # next line: own sector, miss

    def test_tag_savings(self, geom):
        conventional = small(geom, lines_per_sector=1)
        sectored = small(geom, lines_per_sector=8)
        assert sectored.tags == conventional.tags // 8


class TestEvictionFragmentation:
    def test_sector_eviction_discards_all_lines(self, geom):
        cache = small(geom, lines_per_sector=4, size=2048, ways=1)
        # 2 sets of 1 way; sectors mapping to set 0 conflict.
        stride = cache.num_sets * 256  # sector size 256B
        cache.access(0x0)
        cache.access(0x40)
        cache.access(stride)      # evicts the first sector entirely
        assert not cache.access(0x0)
        assert not cache.access(0x40)

    def test_fragmentation_costs_capacity(self, geom):
        """Strided single-line-per-sector access: the sectored cache holds
        a quarter of the lines a conventional one does.

        Stride of 5 lines: coprime with the conventional cache's 32 sets
        (so its 32 lines spread one per set and all fit), while every
        sector holds exactly one valid line (so the sectored cache's 16
        sector slots thrash)."""
        conventional = small(geom, lines_per_sector=1, size=4096, ways=2)
        sectored = small(geom, lines_per_sector=4, size=4096, ways=2)
        addresses = [i * 5 * 64 for i in range(32)]
        for sweep in range(3):
            for a in addresses:
                conventional.access(a)
                sectored.access(a)
        assert conventional.misses == 32          # cold only
        assert sectored.misses > conventional.misses

    def test_utilization_reflects_touch_density(self, geom):
        cache = small(geom, lines_per_sector=4)
        cache.access(0x0)  # 1 of 4 lines valid
        assert cache.utilization() == pytest.approx(0.25)
        for offset in (0x40, 0x80, 0xC0):
            cache.access(offset)
        assert cache.utilization() == pytest.approx(1.0)

    def test_empty_cache_utilization(self, geom):
        assert small(geom).utilization() == 1.0


class TestRun:
    def test_run_returns_miss_ratio(self, geom):
        cache = small(geom)
        ratio = cache.run([0x1000, 0x1000, 0x2000, 0x2000])
        assert ratio == pytest.approx(0.5)

    def test_dense_access_favours_sectoring_neutrality(self, geom):
        """Fully dense sectors: sectored ≈ conventional miss counts."""
        conventional = small(geom, lines_per_sector=1, size=4096, ways=2)
        sectored = small(geom, lines_per_sector=4, size=4096, ways=2)
        addresses = [i * 64 for i in range(32)]  # every line, densely
        for sweep in range(3):
            for a in addresses:
                conventional.access(a)
                sectored.access(a)
        assert sectored.misses == conventional.misses


class TestValidation:
    def test_bad_sector_size(self, geom):
        with pytest.raises(ConfigurationError):
            SectoredCache(geom, lines_per_sector=3)

    def test_too_small_capacity(self, geom):
        with pytest.raises(ConfigurationError):
            SectoredCache(geom, size_bytes=256, ways=2, lines_per_sector=8)
