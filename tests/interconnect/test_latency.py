"""Figure 6 latency algebra, checked against the paper's totals."""

import pytest

from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import Distance


@pytest.fixture
def model():
    return LatencyModel()


class TestFigure6Totals:
    """The worked totals printed in Figure 6 (in system cycles)."""

    def test_snoop_own_memory_is_25(self, model):
        assert model.snooped_memory_latency(Distance.OWN_CHIP) == 250

    def test_snoop_same_switch_is_25(self, model):
        assert model.snooped_memory_latency(Distance.SAME_SWITCH) == 250

    def test_snoop_same_board_is_30(self, model):
        assert model.snooped_memory_latency(Distance.SAME_BOARD) == 300

    def test_snoop_remote_is_35(self, model):
        assert model.snooped_memory_latency(Distance.REMOTE) == 350

    def test_direct_own_memory_is_about_18(self, model):
        assert model.direct_memory_latency(Distance.OWN_CHIP) == 181

    def test_direct_same_switch_is_20(self, model):
        assert model.direct_memory_latency(Distance.SAME_SWITCH) == 200

    def test_direct_same_board_is_27(self, model):
        assert model.direct_memory_latency(Distance.SAME_BOARD) == 270

    def test_direct_remote_is_34(self, model):
        assert model.direct_memory_latency(Distance.REMOTE) == 340


class TestProperties:
    def test_direct_always_saves_at_paper_distances(self, model):
        for distance in Distance:
            assert model.direct_saves_cycles(distance) > 0

    def test_snooped_latency_monotonic_in_distance(self, model):
        values = [model.snooped_memory_latency(d) for d in Distance]
        assert values == sorted(values)

    def test_direct_latency_monotonic_in_distance(self, model):
        values = [model.direct_memory_latency(d) for d in Distance]
        assert values == sorted(values)

    def test_upgrade_is_snoop_only(self, model):
        assert model.upgrade_broadcast_latency() == 160

    def test_cache_to_cache_faster_than_same_distance_memory_snoop(self, model):
        for distance in Distance:
            assert (
                model.cache_to_cache_latency(distance)
                < model.snooped_memory_latency(distance)
            )


class TestScenarioTable:
    def test_eight_scenarios(self, model):
        scenarios = model.figure6_scenarios()
        assert len(scenarios) == 8
        assert sum(s.mode == "snoop" for s in scenarios) == 4
        assert sum(s.mode == "direct" for s in scenarios) == 4

    def test_scenario_totals_match_model(self, model):
        for scenario in model.figure6_scenarios():
            if scenario.mode == "snoop":
                expected = model.snooped_memory_latency(scenario.distance)
            else:
                expected = model.direct_memory_latency(scenario.distance)
            assert scenario.total_cycles == expected

    def test_system_cycle_conversion(self, model):
        scenario = model.figure6_scenarios()[0]
        assert scenario.total_system_cycles == scenario.total_cycles / 10
