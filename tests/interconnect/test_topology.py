"""Topology placement and distance classes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.interconnect.topology import Distance, Topology


@pytest.fixture
def paper():
    return Topology()  # 2 cores/chip, 2 chips/switch, 1 switch, 1 board


@pytest.fixture
def big():
    return Topology(cores_per_chip=2, chips_per_switch=2,
                    switches_per_board=2, boards=2)


class TestSizes:
    def test_paper_system_is_four_processors(self, paper):
        assert paper.num_processors == 4
        assert paper.num_chips == 2
        assert paper.num_memory_controllers == 2
        assert paper.num_switches == 1

    def test_big_system(self, big):
        assert big.num_processors == 16
        assert big.num_chips == 8
        assert big.num_switches == 4


class TestPlacement:
    def test_chip_of(self, paper):
        assert [paper.chip_of(p) for p in range(4)] == [0, 0, 1, 1]

    def test_processors_on_chip(self, paper):
        assert list(paper.processors_on_chip(1)) == [2, 3]

    def test_out_of_range_rejected(self, paper):
        with pytest.raises(ValueError):
            paper.chip_of(4)
        with pytest.raises(ValueError):
            paper.processors_on_chip(2)


class TestDistances:
    def test_own_chip(self, paper):
        assert paper.distance(0, 0) is Distance.OWN_CHIP
        assert paper.distance(1, 0) is Distance.OWN_CHIP

    def test_same_switch(self, paper):
        assert paper.distance(0, 1) is Distance.SAME_SWITCH
        assert paper.distance(3, 0) is Distance.SAME_SWITCH

    def test_same_board_and_remote_in_big_system(self, big):
        # proc 0 is on chip 0 (switch 0, board 0).
        assert big.distance(0, 1) is Distance.SAME_SWITCH
        assert big.distance(0, 2) is Distance.SAME_BOARD   # switch 1, board 0
        assert big.distance(0, 4) is Distance.REMOTE       # board 1

    def test_processor_distance(self, paper):
        assert paper.processor_distance(0, 1) is Distance.OWN_CHIP
        assert paper.processor_distance(0, 2) is Distance.SAME_SWITCH

    def test_distance_is_symmetric(self, big):
        for p in range(big.num_processors):
            for q in range(big.num_processors):
                assert (
                    big.processor_distance(p, q)
                    == big.processor_distance(q, p)
                )

    def test_distance_ordering(self):
        assert Distance.OWN_CHIP < Distance.SAME_SWITCH
        assert Distance.SAME_SWITCH < Distance.SAME_BOARD
        assert Distance.SAME_BOARD < Distance.REMOTE


def test_invalid_topology_rejected():
    with pytest.raises(ConfigurationError):
        Topology(cores_per_chip=0)
