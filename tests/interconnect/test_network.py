"""The unordered data network (per-processor bandwidth, Table 3)."""

import pytest

from repro.interconnect.network import DataNetwork


@pytest.fixture
def network():
    return DataNetwork(num_processors=4, num_controllers=2)


def test_line_occupancy_matches_table3(network):
    # 64 B at 16 B per system cycle = 4 system cycles = 40 CPU cycles.
    assert network.occupancy_cycles == 40


def test_idle_link_starts_immediately(network):
    assert network.acquire_processor_link(0, 1000) == 1000


def test_busy_link_queues(network):
    network.acquire_processor_link(0, 1000)
    assert network.acquire_processor_link(0, 1000) == 1040
    assert network.total_queued_cycles() == 40


def test_links_are_independent(network):
    network.acquire_processor_link(0, 1000)
    assert network.acquire_processor_link(1, 1000) == 1000
    assert network.acquire_controller_link(0, 1000) == 1000


def test_deliver_adds_full_line_time(network):
    assert network.deliver_to_processor(2, 500) == 540
    assert network.deliver_to_controller(1, 500) == 540


def test_utilization(network):
    for t in (0, 100, 200):
        network.acquire_processor_link(0, t)
    assert network.processor_utilization(0, 1200) == pytest.approx(0.1)


def test_transfers_counted(network):
    network.deliver_to_processor(0, 0)
    network.acquire_controller_link(0, 0)
    assert network.transfers == 2


def test_reset(network):
    network.acquire_processor_link(0, 0)
    network.reset()
    assert network.transfers == 0
    assert network.acquire_processor_link(0, 0) == 0


def test_bandwidth_validation():
    with pytest.raises(ValueError):
        DataNetwork(4, 2, bytes_per_system_cycle=0)


def test_odd_line_size_rounds_up():
    network = DataNetwork(4, 2, line_bytes=100, bytes_per_system_cycle=16)
    assert network.occupancy_cycles == 70  # ceil(100/16)=7 system cycles


class TestMachineIntegration:
    def test_concurrent_fills_to_one_processor_queue(self):
        from repro.system.machine import Machine
        from tests.conftest import make_config

        machine = Machine(make_config(cgct=True, rca_sets=1024))
        a = 0x10000
        machine.load(0, a, now=0)
        machine.load(0, a + 8192, now=1000)  # second region, same home side
        # Two direct fills issued at the same cycle: the second queues at
        # proc 0's ingress link (and possibly the controller), so its
        # latency is strictly larger.
        first = machine.load(0, a + 0x40, now=50_000)
        second = machine.load(0, a + 8192 + 0x40, now=50_000)
        assert second > first

    def test_network_transfer_count_tracks_fills(self):
        from repro.system.machine import Machine
        from tests.conftest import make_config

        machine = Machine(make_config(cgct=False))
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x2000, now=1000)
        assert machine.network.transfers == 2
