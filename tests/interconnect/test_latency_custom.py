"""Custom latency models flow through the whole machine."""

import dataclasses

import pytest

from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import Distance
from repro.system.machine import Machine

from tests.conftest import make_config


def flat_latency_model():
    """A degenerate model: every distance costs the same."""
    transfer = {d: 10 for d in Distance}
    request = {d: 10 for d in Distance}
    return LatencyModel(
        snoop_cycles=100,
        dram_cycles=50,
        dram_overlapped_cycles=20,
        transfer_cycles=transfer,
        direct_request_cycles=request,
        cache_access_cycles=5,
        l1_hit_cycles=1,
        l2_hit_cycles=4,
    )


def test_custom_model_changes_end_to_end_latency():
    config = make_config(cgct=True, rca_sets=1024,
                         latency=flat_latency_model())
    machine = Machine(config)
    # Broadcast miss: 4 (L2) + 100 (snoop) + 20 (DRAM overlap) + 10 = 134.
    assert machine.load(0, 0x1000, now=0) == 134
    # Direct: 4 + 10 (request) + 50 (DRAM) + 10 (transfer) = 74.
    assert machine.load(0, 0x1040, now=10_000) == 74


def test_custom_model_scenario_table():
    model = flat_latency_model()
    for scenario in model.figure6_scenarios():
        if scenario.mode == "snoop":
            assert scenario.total_cycles == 130
        else:
            assert scenario.total_cycles == 70


def test_upgrade_uses_snoop_cycles_only():
    config = make_config(cgct=False, latency=flat_latency_model())
    machine = Machine(config)
    machine.load(0, 0x1000, now=0)
    machine.load(1, 0x1000, now=1000)
    stall = machine.store(0, 0x1000, now=2000)
    # Upgrade: 4 + 100; stores charged 40 %.
    assert stall == int(104 * 0.4)


def test_invalid_overlap_rejected():
    with pytest.raises(ValueError):
        from repro.memory.dram import MemoryController

        MemoryController(0, dram_cycles=10, dram_overlapped_cycles=20)
