"""Broadcast address bus: arbitration and traffic accounting."""

import pytest

from repro.interconnect.bus import BroadcastBus


@pytest.fixture
def bus():
    return BroadcastBus(occupancy_cycles=10, window=100)


def test_idle_bus_grants_immediately(bus):
    assert bus.broadcast(50) == 50


def test_contended_bus_serialises(bus):
    assert bus.broadcast(0) == 0
    assert bus.broadcast(0) == 10
    assert bus.broadcast(5) == 20
    assert bus.queued_cycles == 10 + 15


def test_queue_delay_preview(bus):
    bus.broadcast(0)
    assert bus.queue_delay(3) == 7
    assert bus.broadcasts == 1  # preview does not count


def test_traffic_recorded_at_grant_time(bus):
    bus.broadcast(95)   # granted at 95 → window 0
    bus.broadcast(96)   # granted at 105 → window 1
    assert bus.traffic.series() == {0: 1, 1: 1}


def test_utilization(bus):
    for _ in range(5):
        bus.broadcast(0)
    assert bus.utilization(100) == pytest.approx(0.5)


def test_reset(bus):
    bus.broadcast(0)
    bus.reset()
    assert bus.broadcasts == 0
    assert bus.traffic.total == 0
    assert bus.broadcast(0) == 0
