"""System configuration invariants and the paper's named configs."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.system.config import CoreParameters, SystemConfig, TimingParameters


class TestPaperConfigs:
    def test_baseline_has_no_rca(self):
        config = SystemConfig.paper_baseline()
        assert not config.cgct_enabled
        assert config.num_processors == 4
        assert config.l2_bytes == 1 << 20

    def test_cgct_default_matches_paper(self):
        config = SystemConfig.paper_cgct()
        assert config.cgct_enabled
        assert config.geometry.region_bytes == 512
        assert config.rca_sets == 8192
        assert config.rca_ways == 2
        assert config.rca_entries == 16384

    def test_region_size_sweep(self):
        for region in (256, 512, 1024):
            assert SystemConfig.paper_cgct(region).geometry.region_bytes == region

    def test_half_size_rca(self):
        config = SystemConfig.paper_cgct(512, rca_sets=4096)
        assert config.rca_entries == 8192

    def test_with_region_bytes(self):
        config = SystemConfig.paper_cgct(256).with_region_bytes(1024)
        assert config.geometry.region_bytes == 1024
        assert config.cgct_enabled


class TestTable3Defaults:
    def test_core_parameters(self):
        core = CoreParameters()
        assert core.clock_hz == 1_500_000_000
        assert core.pipeline_stages == 15
        assert core.rob_entries == 64
        assert core.issue_window == 32

    def test_cache_hierarchy(self):
        config = SystemConfig()
        assert config.l1i_bytes == 32 * 1024
        assert config.l1d_bytes == 64 * 1024
        assert config.l1i_ways == config.l1d_ways == 4
        assert config.l2_ways == 2

    def test_prefetch_parameters(self):
        config = SystemConfig()
        assert config.prefetch_streams == 8
        assert config.prefetch_runahead == 5

    def test_latency_constants(self):
        config = SystemConfig()
        assert config.latency.snoop_cycles == 160
        assert config.latency.l1_hit_cycles == 1
        assert config.latency.l2_hit_cycles == 12


class TestValidation:
    def test_bad_store_stall_fraction(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(store_stall_fraction=1.5)

    def test_bad_bus_occupancy(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(bus_occupancy_system_cycles=0)

    def test_bad_perturbation(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(perturbation_cycles=-1)

    def test_bad_rca_shape(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(rca_sets=0)

    def test_configs_are_immutable(self):
        config = SystemConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.cgct_enabled = True
