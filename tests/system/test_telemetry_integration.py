"""Telemetry must observe without perturbing: bit-identical runs.

The whole subsystem's contract is that attaching a registry records the
simulation and changes nothing about it — same cycles, same stats, same
everything, for baseline and CGCT machines, with and without warm-up.
These tests also pin down the reconciliation property (interval series
totals equal end-of-run aggregates) and the event-sink wiring.
"""

import pytest

from repro.system.config import SystemConfig
from repro.system.eventlog import EventLog
from repro.system.simulator import Simulator, run_workload
from repro.telemetry.registry import TelemetryRegistry
from repro.workloads.benchmarks import build_benchmark


def small_workload(config, ops=3000, name="ocean"):
    return build_benchmark(
        name, num_processors=config.num_processors,
        ops_per_processor=ops, seed=0,
    )


@pytest.mark.parametrize("factory", ["paper_baseline", "paper_cgct"])
@pytest.mark.parametrize("warmup", [0.0, 0.4])
def test_runs_are_bit_identical_with_and_without_telemetry(factory, warmup):
    config = getattr(SystemConfig, factory)()
    workload = small_workload(config)
    plain = run_workload(config, workload, seed=1, warmup_fraction=warmup)
    registry = TelemetryRegistry(interval=50_000)
    instrumented = run_workload(
        config, workload, seed=1, warmup_fraction=warmup, telemetry=registry,
    )
    # RunResult is a frozen dataclass: equality covers cycles, stats,
    # traffic, latency means — everything the experiments consume.
    assert instrumented == plain
    assert len(registry) > 0


def test_disabled_registry_is_also_identical_and_records_nothing():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config)
    plain = run_workload(config, workload, seed=0, warmup_fraction=0.25)
    disabled = TelemetryRegistry(enabled=False)
    instrumented = run_workload(
        config, workload, seed=0, warmup_fraction=0.25, telemetry=disabled,
    )
    assert instrumented == plain
    assert len(disabled) == 0


def test_interval_series_totals_reconcile_with_final_stats():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config)
    registry = TelemetryRegistry(interval=20_000)
    result = run_workload(
        config, workload, seed=0, warmup_fraction=0.4, telemetry=registry,
    )
    # Probe series record deltas, so after the warm-up reset their totals
    # must equal the measured-portion aggregates exactly.
    assert registry.get("stats.external_requests").total == \
        result.stats.total_external
    assert registry.get("stats.broadcasts").total == \
        result.stats.total_broadcasts
    assert registry.get("stats.avoided").total == result.stats.total_avoided
    assert registry.get("bus.broadcasts").total == result.broadcasts
    assert registry.get("machine.l1_hits").total == result.l1_hits
    assert registry.get("machine.l2_hits").total == result.l2_hits


def test_per_path_counters_partition_external_requests():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config)
    registry = TelemetryRegistry()
    result = run_workload(
        config, workload, seed=0, warmup_fraction=0.4, telemetry=registry,
    )
    by_path = {
        name.rsplit(".", 1)[1]: metric.value
        for name, metric in (
            (m.name, m) for m in registry.metrics() if m.kind == "counter"
        )
        if name.startswith("machine.paths.")
    }
    # Eviction castouts count in the stats but are not processor-issued
    # events; their own counters complete the partition.
    castouts = (registry.get("machine.writebacks.direct").value
                + registry.get("machine.writebacks.broadcast").value)
    assert sum(by_path.values()) + castouts == result.stats.total_external
    assert by_path["broadcast"] + \
        registry.get("machine.writebacks.broadcast").value == \
        result.stats.total_broadcasts


def test_latency_histograms_cover_every_external_request():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config)
    registry = TelemetryRegistry()
    result = run_workload(
        config, workload, seed=0, warmup_fraction=0.4, telemetry=registry,
    )
    observed = sum(
        m.count for m in registry.metrics()
        if m.kind == "histogram" and m.name.startswith("machine.latency.")
        and m.name != "machine.latency.demand"
    )
    castouts = (registry.get("machine.writebacks.direct").value
                + registry.get("machine.writebacks.broadcast").value)
    assert observed + castouts == result.stats.total_external


def test_finalizer_gauges_are_set():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config)
    registry = TelemetryRegistry()
    result = run_workload(
        config, workload, seed=0, warmup_fraction=0.0, telemetry=registry,
    )
    assert registry.finalized_at == result.cycles
    assert registry.get("machine.demand_latency_mean").value == \
        pytest.approx(result.demand_latency_mean)
    assert registry.get("rca.mean_line_count").value == \
        pytest.approx(result.rca_mean_line_count)


def test_event_log_registered_as_sink_sees_each_event_once():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config, ops=1500)
    registry = TelemetryRegistry()
    log = EventLog(capacity=1 << 20).register(registry)
    simulator = Simulator(config, seed=0, telemetry=registry)
    simulator.machine.attach_event_log(log)  # attached both ways
    result = simulator.run(workload, warmup_fraction=0.0)
    castouts = (registry.get("machine.writebacks.direct").value
                + registry.get("machine.writebacks.broadcast").value)
    assert log.recorded == result.stats.total_external - castouts


def test_sink_only_registration_receives_the_event_stream():
    config = SystemConfig.paper_cgct()
    workload = small_workload(config, ops=1500)
    registry = TelemetryRegistry()
    log = EventLog(capacity=1 << 20).register(registry)
    result = run_workload(
        config, workload, seed=0, warmup_fraction=0.0, telemetry=registry,
    )
    castouts = (registry.get("machine.writebacks.direct").value
                + registry.get("machine.writebacks.broadcast").value)
    assert log.recorded == result.stats.total_external - castouts
    event = log.tail(1)[0]
    assert isinstance(event.path, str)  # sinks get the plain path value
