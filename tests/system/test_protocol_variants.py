"""Machine-level behaviour of the protocol variants (§3.1/§3.4) and of
larger topologies."""

import pytest

from repro.coherence.requests import RequestType
from repro.interconnect.topology import Topology
from repro.rca.states import RegionState
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


class TestOneBitMachine:
    def test_externally_clean_states_unreachable(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024,
                                      two_bit_response=False))
        machine.ifetch(0, 0x1000, now=0)
        machine.ifetch(1, 0x1000, now=1000)
        machine.ifetch(0, 0x1080, now=2000)
        for node in machine.nodes:
            for entry in node.rca.entries():
                assert not entry.state.is_externally_clean

    def test_ifetch_direct_path_lost(self):
        two_bit = Machine(make_config(cgct=True, rca_sets=1024))
        one_bit = Machine(make_config(cgct=True, rca_sets=1024,
                                      two_bit_response=False))
        for machine in (two_bit, one_bit):
            machine.ifetch(0, 0x1000, now=0)     # region CI on proc 0
            machine.ifetch(1, 0x1000, now=1000)  # other proc shares code
            machine.ifetch(0, 0x1080, now=2000)  # CC: direct iff two-bit
        assert two_bit.request_paths[RequestType.IFETCH, RequestPath.DIRECT] == 1
        assert one_bit.request_paths.get(
            (RequestType.IFETCH, RequestPath.DIRECT), 0) == 0

    def test_exclusive_path_survives(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024,
                                      two_bit_response=False))
        machine.load(0, 0x2000, now=0)
        machine.load(0, 0x2040, now=1000)
        assert machine.request_paths[RequestType.READ, RequestPath.DIRECT] == 1


class TestHiddenLineResponse:
    def test_external_read_downgrades_conservatively(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024,
                                      line_response_visible=False))
        machine.load(0, 0x3000, now=0)        # proc 0: region DI
        machine.load(1, 0x3040, now=1000)     # proc 1 reads another line
        region = machine.geometry.region_of(0x3000)
        entry = machine.nodes[0].region_entry(region)
        # Proc 0 does not cache 0x3040 and cannot see the combined line
        # response: it must assume proc 1 got an exclusive copy.
        assert entry.state is RegionState.DIRTY_DIRTY

    def test_observer_caching_the_line_still_knows(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024,
                                      line_response_visible=False))
        machine.load(0, 0x3000, now=0)
        machine.load(1, 0x3000, now=1000)     # proc 0 caches this line
        region = machine.geometry.region_of(0x3000)
        entry = machine.nodes[0].region_entry(region)
        # Proc 0 supplied/shared the line, so the reader cannot be
        # exclusive: externally clean, not dirty.
        assert entry.state is RegionState.DIRTY_CLEAN

    def test_visible_response_is_more_precise(self):
        visible = Machine(make_config(cgct=True, rca_sets=1024))
        hidden = Machine(make_config(cgct=True, rca_sets=1024,
                                     line_response_visible=False))
        for machine in (visible, hidden):
            machine.load(0, 0x3000, now=0)
            machine.load(2, 0x3000, now=500)   # two sharers of the line
            machine.load(1, 0x3000, now=1000)  # third reader: fills S
        region = visible.geometry.region_of(0x3000)
        assert visible.nodes[0].region_entry(region).state \
            is RegionState.DIRTY_CLEAN
        assert hidden.nodes[0].region_entry(region).state \
            is RegionState.DIRTY_CLEAN  # proc 0 caches the line: knows


class TestLargerTopologies:
    @pytest.fixture
    def sixteen(self):
        return make_config(
            cgct=True, rca_sets=1024,
            topology=Topology(cores_per_chip=2, chips_per_switch=2,
                              switches_per_board=2, boards=2),
        )

    def test_machine_builds_and_routes(self, sixteen):
        machine = Machine(sixteen)
        assert len(machine.nodes) == 16
        assert len(machine.controllers) == 8
        machine.load(0, 0x5000, now=0)
        machine.load(15, 0x5000, now=1000)   # cross-board c2c
        machine.check_coherence_invariants()

    def test_remote_board_latencies_apply(self, sixteen):
        machine = Machine(sixteen)
        # An address homed on a remote board's controller.
        remote_chip = 7  # chips 0..7; proc 0 is on chip 0 (board 0)
        address = next(
            machine.address_map.addresses_homed_at(remote_chip, count=1))
        assert machine.topology.distance(0, remote_chip).name == "REMOTE"
        latency = machine.load(0, address, now=0)
        # Snooped remote memory: 12 + 160 + 70 + 120 = 362.
        assert latency == 362
        # Second line of the region goes direct: 12 + 60 + 160 + 120 = 352.
        assert machine.load(0, address + 0x40, now=10_000) == 352

    def test_sixteen_way_broadcast_snoops_everyone(self, sixteen):
        machine = Machine(sixteen)
        machine.load(0, 0x5000, now=0)
        probes = sum(n.l2.snoop_probes for n in machine.nodes)
        assert probes == 15
