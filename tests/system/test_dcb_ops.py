"""Data Cache Block operations through the machine."""

import pytest

from repro.coherence.line_states import LineState
from repro.coherence.requests import RequestType
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


@pytest.fixture
def machine():
    return Machine(make_config(cgct=True, rca_sets=256))


@pytest.fixture
def baseline():
    return Machine(make_config(cgct=False))


def line_state(machine, proc, address):
    entry = machine.nodes[proc].l2.peek(machine.geometry.line_of(address))
    return entry.state if entry else None


class TestDCBZ:
    def test_allocates_modified_line(self, baseline):
        baseline.dcbz(0, 0x1000, now=0)
        assert line_state(baseline, 0, 0x1000) is LineState.MODIFIED

    def test_invalidates_remote_copies(self, baseline):
        baseline.load(1, 0x1000, now=0)
        baseline.dcbz(0, 0x1000, now=1000)
        assert line_state(baseline, 1, 0x1000) is None
        assert line_state(baseline, 0, 0x1000) is LineState.MODIFIED

    def test_silent_on_locally_exclusive_line(self, baseline):
        baseline.load(0, 0x1000, now=0)   # fills E
        baseline.dcbz(0, 0x1000, now=1000)
        assert baseline.stats.total_external == 1  # only the original read
        assert line_state(baseline, 0, 0x1000) is LineState.MODIFIED

    def test_no_request_in_exclusive_region(self, machine):
        machine.load(0, 0x1000, now=0)        # region DI
        machine.dcbz(0, 0x1080, now=1000)     # other line, same region
        assert machine.request_paths[RequestType.DCBZ, RequestPath.NO_REQUEST] == 1
        assert line_state(machine, 0, 0x1080) is LineState.MODIFIED

    def test_page_zero_sequence_needs_one_broadcast_per_region(self, machine):
        # DCBZ of a whole fresh 4 KB page: one region-acquiring broadcast
        # per 512 B region, the other 7 lines of each region free.
        for offset in range(0, 4096, 64):
            machine.dcbz(0, 0x8000 + offset, now=offset)
        broadcast = machine.request_paths[RequestType.DCBZ, RequestPath.BROADCAST]
        free = machine.request_paths[RequestType.DCBZ, RequestPath.NO_REQUEST]
        assert broadcast == 8
        assert free == 56


class TestDCBF:
    def test_flushes_local_dirty_line(self, baseline):
        baseline.store(0, 0x1000, now=0)
        baseline.dcbf(0, 0x1000, now=1000)
        assert line_state(baseline, 0, 0x1000) is None
        # The flush pushed the dirty data to memory.
        home = baseline.address_map.home_of(0x1000)
        assert baseline.controllers[home].writes == 1

    def test_flushes_remote_dirty_copy(self, baseline):
        baseline.store(1, 0x1000, now=0)
        baseline.dcbf(0, 0x1000, now=1000)
        assert line_state(baseline, 1, 0x1000) is None
        home = baseline.address_map.home_of(0x1000)
        assert baseline.controllers[home].writes == 1

    def test_no_external_request_in_exclusive_region(self, machine):
        machine.store(0, 0x1000, now=0)       # region DI
        machine.dcbf(0, 0x1000, now=1000)
        assert machine.request_paths[RequestType.DCBF, RequestPath.NO_REQUEST] == 1
        assert line_state(machine, 0, 0x1000) is None


class TestDCBI:
    def test_discards_local_dirty_data(self, baseline):
        baseline.store(0, 0x1000, now=0)
        baseline.dcbi(0, 0x1000, now=1000)
        assert line_state(baseline, 0, 0x1000) is None
        home = baseline.address_map.home_of(0x1000)
        assert baseline.controllers[home].writes == 0  # data dropped

    def test_invalidates_remote_copies(self, baseline):
        baseline.load(1, 0x1000, now=0)
        baseline.dcbi(0, 0x1000, now=1000)
        assert line_state(baseline, 1, 0x1000) is None


class TestRegionCountsStayConsistent:
    def test_dcb_ops_keep_inclusion(self, machine):
        machine.store(0, 0x1000, now=0)
        machine.dcbz(0, 0x1040, now=100)
        machine.dcbf(0, 0x1000, now=200)
        machine.dcbi(0, 0x1040, now=300)
        machine.check_coherence_invariants()
        region = machine.geometry.region_of(0x1000)
        entry = machine.nodes[0].region_entry(region)
        assert entry is not None
        assert entry.line_count == 0
