"""Multiprocessor run loop, warm-up, and RunResult metrics."""

import pytest

from repro.common.errors import SimulationError
from repro.system.simulator import Simulator, run_workload
from repro.workloads.trace import TraceOp

from tests.conftest import loads, make_config, multitrace, stores


def four_proc_workload(lines_per_proc=20, shared=False):
    """Simple per-processor load streams; optionally all to one region set."""
    per_proc = []
    for proc in range(4):
        base = 0x100000 if shared else 0x100000 * (proc + 1)
        addresses = [base + i * 64 for i in range(lines_per_proc)]
        per_proc.append(loads(addresses, gap=5))
    return multitrace(per_proc)


class TestRunLoop:
    def test_runs_to_completion(self):
        result = run_workload(make_config(cgct=False), four_proc_workload())
        assert result.cycles > 0
        assert len(result.per_processor_cycles) == 4

    def test_processor_count_mismatch_rejected(self):
        workload = multitrace([loads([0x100])])  # one trace, four CPUs
        with pytest.raises(SimulationError):
            run_workload(make_config(cgct=False), workload)

    def test_validation_catches_bad_addresses(self):
        workload = multitrace([loads([1 << 50])] + [loads([0])] * 3)
        with pytest.raises(SimulationError):
            run_workload(make_config(cgct=False), workload)

    def test_events_interleave_by_timestamp(self):
        # All four processors read the same line; the earliest gap wins
        # the cold miss, the rest find it shared (deterministically).
        per_proc = [
            [(TraceOp.LOAD, 0x5000, gap)] for gap in (40, 10, 30, 20)
        ]
        sim = Simulator(make_config(cgct=False))
        sim.run(multitrace(per_proc))
        # Proc 1 (gap 10) filled first and alone was unnecessary.
        assert sim.machine.stats.total_unnecessary == 1
        assert sim.machine.stats.total_broadcasts == 4


class TestDegenerateWorkloads:
    """Empty traces must produce a zero result, not a crash.

    Regression tests for the run loop's empty-sequence guards: ``cycles``
    over no per-processor clocks, ``_collect``'s end time, and the warmup
    target of a zero-length trace all reduce over empty sequences.
    """

    def test_empty_traces_complete_with_zero_cycles(self):
        workload = multitrace([[], [], [], []])
        result = run_workload(make_config(cgct=True), workload)
        assert result.cycles == 0
        assert result.stats.total_external == 0
        assert result.per_processor_cycles == [0, 0, 0, 0]

    def test_empty_traces_with_warmup_and_telemetry(self):
        from repro.telemetry.registry import TelemetryRegistry

        workload = multitrace([[], [], [], []])
        result = run_workload(
            make_config(cgct=False), workload, warmup_fraction=0.5,
            telemetry=TelemetryRegistry(),
        )
        assert result.cycles == 0

    def test_cycles_of_zero_processor_result_is_zero(self):
        from dataclasses import replace

        workload = four_proc_workload(lines_per_proc=2)
        result = run_workload(make_config(cgct=False), workload)
        empty = replace(
            result, per_processor_cycles=[], per_processor_stalls=[],
            per_processor_gaps=[],
        )
        assert empty.cycles == 0


class TestDeterminism:
    def test_same_seed_bitwise_identical(self):
        workload = four_proc_workload()
        config = make_config(cgct=True, perturbation=20)
        a = run_workload(config, workload, seed=5)
        b = run_workload(config, workload, seed=5)
        assert a.per_processor_cycles == b.per_processor_cycles
        assert a.broadcasts == b.broadcasts

    def test_different_seeds_perturb_timing(self):
        workload = four_proc_workload()
        config = make_config(cgct=True, perturbation=20)
        a = run_workload(config, workload, seed=1)
        b = run_workload(config, workload, seed=2)
        assert a.per_processor_cycles != b.per_processor_cycles


class TestWarmup:
    def test_warmup_excludes_cold_misses_from_stats(self):
        workload = multitrace([
            loads([0x1000 + i * 64 for i in range(10)] * 2, gap=2)
            for _ in range(4)
        ])
        cold = run_workload(make_config(cgct=False), workload)
        warmed = run_workload(
            make_config(cgct=False), workload, warmup_fraction=0.5
        )
        # Second half replays the same lines: everything hits.
        assert warmed.stats.total_external == 0
        assert cold.stats.total_external > 0
        assert warmed.cycles < cold.cycles

    def test_bad_warmup_fraction_rejected(self):
        with pytest.raises(SimulationError):
            run_workload(
                make_config(cgct=False), four_proc_workload(),
                warmup_fraction=1.0,
            )


class TestRunResultMetrics:
    def test_fraction_bounds(self):
        result = run_workload(make_config(cgct=True), four_proc_workload())
        assert 0.0 <= result.fraction_avoided() <= 1.0
        assert 0.0 <= result.fraction_unnecessary() <= 1.0

    def test_category_fraction_validates_kind(self):
        from repro.system.machine import OracleCategory

        result = run_workload(make_config(cgct=False), four_proc_workload())
        with pytest.raises(ValueError):
            result.category_fraction(OracleCategory.DATA, of="bogus")

    def test_speedup_and_reduction_consistent(self):
        workload = four_proc_workload()
        base = run_workload(make_config(cgct=False), workload)
        cgct = run_workload(make_config(cgct=True), workload)
        speedup = cgct.speedup_over(base)
        reduction = cgct.runtime_reduction_over(base)
        assert speedup == pytest.approx(1.0 / (1.0 - reduction))

    def test_rca_stats_present_only_with_cgct(self):
        workload = four_proc_workload()
        base = run_workload(make_config(cgct=False), workload)
        cgct = run_workload(make_config(cgct=True), workload)
        assert base.rca_mean_line_count is None
        assert cgct.rca_mean_line_count is not None

    def test_private_streams_mostly_avoided_by_cgct(self):
        workload = four_proc_workload(lines_per_proc=64)
        result = run_workload(make_config(cgct=True), workload)
        # 64 lines = 8 regions per proc: 8 broadcasts, 56 directs each.
        assert result.fraction_avoided() == pytest.approx(56 / 64)
