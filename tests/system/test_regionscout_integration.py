"""RegionScout in the full machine, and its comparison against CGCT."""

import pytest

from repro.coherence.requests import RequestType
from repro.common.errors import ConfigurationError
from repro.system.machine import Machine, RequestPath
from repro.system.simulator import run_workload

from tests.conftest import loads, make_config, multitrace


def scout_config(**overrides):
    return make_config(cgct=False, regionscout_enabled=True, **overrides)


@pytest.fixture
def machine():
    return Machine(scout_config())


class TestRouting:
    def test_first_touch_broadcasts_and_records(self, machine):
        machine.load(0, 0x1000, now=0)
        region = machine.geometry.region_of(0x1000)
        assert machine.nodes[0].regionscout.nsrt.contains(region)

    def test_nsrt_hit_goes_direct(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.load(0, 0x1040, now=1000)
        assert machine.request_paths[RequestType.READ, RequestPath.DIRECT] == 1

    def test_upgrade_in_nsrt_region_is_free(self, machine):
        machine.ifetch(0, 0x1000, now=0)     # fills SHARED, records region
        machine.store(0, 0x1000, now=1000)
        assert machine.request_paths[
            RequestType.UPGRADE, RequestPath.NO_REQUEST] == 1

    def test_external_broadcast_invalidates_nsrt(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)    # proc 1's broadcast
        region = machine.geometry.region_of(0x1000)
        assert not machine.nodes[0].regionscout.nsrt.contains(region)
        # Proc 0's next touch of the region must broadcast again.
        machine.load(0, 0x1040, now=2000)
        assert machine.request_paths[RequestType.READ, RequestPath.BROADCAST] == 3

    def test_sharer_blocks_recording(self, machine):
        machine.load(0, 0x1000, now=0)       # proc 0 caches the line
        machine.load(1, 0x1040, now=1000)    # proc 1: region has remote copy
        region = machine.geometry.region_of(0x1000)
        assert not machine.nodes[1].regionscout.nsrt.contains(region)

    def test_crh_filters_tag_probes(self, machine):
        machine.load(0, 0x1000, now=0)
        # Proc 1's broadcast snooped procs 0, 2, 3; 2 and 3 cache nothing
        # and their (empty) CRHs prove it.
        machine.load(1, 0x200000, now=1000)
        filtered = sum(
            n.regionscout.tag_probes_filtered for n in machine.nodes
        )
        assert filtered >= 2

    def test_writebacks_still_broadcast(self, machine):
        stride = machine.nodes[0].l2.num_sets * 64
        machine.store(0, 0x0, now=0)
        machine.load(0, stride, now=1000)
        machine.load(0, 2 * stride, now=2000)
        from repro.system.machine import OracleCategory

        assert machine.stats.broadcasts[OracleCategory.WRITEBACK] == 1
        assert machine.stats.directs[OracleCategory.WRITEBACK] == 0


class TestCoherence:
    def test_invariants_under_contention(self, machine):
        for step in range(40):
            proc = step % 4
            address = 0x1000 + (step % 8) * 64
            if step % 3:
                machine.load(proc, address, now=step * 100)
            else:
                machine.store(proc, address, now=step * 100)
        machine.check_coherence_invariants()

    def test_no_stale_nsrt_exclusivity(self, machine):
        # The classic hole: P records, Q touches, P must re-broadcast.
        machine.load(0, 0x1000, now=0)       # P records region
        machine.store(1, 0x1040, now=1000)   # Q dirties another line
        machine.load(0, 0x1040, now=2000)    # P must find Q's data
        line = machine.geometry.line_of(0x1040)
        entry = machine.nodes[0].l2.peek(line)
        assert entry is not None
        # P's copy must be SHARED (Q supplied), never EXCLUSIVE.
        from repro.coherence.line_states import LineState

        assert entry.state in (LineState.SHARED,)


class TestComparisonWithCGCT:
    def test_regionscout_less_effective_than_cgct(self):
        workload = multitrace([
            loads([0x100000 * (p + 1) + i * 64 for i in range(256)], gap=4)
            for p in range(4)
        ])
        scout = run_workload(scout_config(), workload)
        cgct = run_workload(make_config(cgct=True, rca_sets=1024), workload)
        # Both avoid broadcasts on private streams; the tiny NSRT loses
        # regions it could have kept, so CGCT avoids at least as much.
        assert 0.0 < scout.fraction_avoided() <= cgct.fraction_avoided() + 1e-9

    def test_mutually_exclusive_with_cgct(self):
        with pytest.raises(ConfigurationError):
            make_config(cgct=True, regionscout_enabled=True)
