"""Exact latency arithmetic through the machine (Figure 6 + hierarchy).

All tests run with zero perturbation and idle resources, so every cycle
is accounted for: L1 hit = 1, L2 hit = 12, and the external latencies
compose exactly as Figure 6 does. Address 0x1000 is homed at controller
0 (page-interleaved map), which is proc 0's own chip and proc 2's
same-switch neighbour.
"""

import pytest

from repro.interconnect.topology import Distance
from repro.system.machine import Machine

from tests.conftest import make_config

ADDRESS = 0x1000  # home controller 0 (page 1 → 1 % 2 ... verify in fixture)


@pytest.fixture
def machine():
    return Machine(make_config(cgct=True, rca_sets=256))


@pytest.fixture
def baseline():
    return Machine(make_config(cgct=False))


def own_chip_address(machine, proc):
    """An address homed at *proc*'s own chip's memory controller."""
    chip = machine.topology.chip_of(proc)
    return next(machine.address_map.addresses_homed_at(chip, count=1))


def remote_chip_address(machine, proc):
    chip = 1 - machine.topology.chip_of(proc)
    return next(machine.address_map.addresses_homed_at(chip, count=1))


class TestHierarchyHits:
    def test_l1_hit_is_one_cycle(self, baseline):
        baseline.load(0, ADDRESS, now=0)
        assert baseline.load(0, ADDRESS, now=1000) == 1

    def test_l2_hit_is_twelve_cycles(self, baseline):
        baseline.load(0, ADDRESS, now=0)
        # A second line in the same L1 set region... simply evict L1 by
        # filling conflicting lines; easier: ifetch uses L1I, so a load
        # brought to L2 via ifetch misses L1D but hits L2.
        baseline.ifetch(0, ADDRESS + 0x40, now=1000)
        assert baseline.load(0, ADDRESS + 0x40, now=2000) == 12


class TestBaselineBroadcastLatency:
    def test_snoop_own_memory(self, baseline):
        address = own_chip_address(baseline, 0)
        # 12 (L2) + snoop 160 + overlapped DRAM 70 + transfer 20 = 262.
        assert baseline.load(0, address, now=0) == 262

    def test_snoop_same_switch_memory(self, baseline):
        address = remote_chip_address(baseline, 0)
        # Same-switch transfer is also 2 system cycles (Figure 6): 262.
        assert baseline.load(0, address, now=0) == 262

    def test_cache_to_cache_same_chip(self, baseline):
        address = own_chip_address(baseline, 0)
        baseline.store(0, address, now=0)           # proc 0 holds M
        # proc 1 (same chip): 12 + 160 + cache 20 + transfer 20 = 212.
        assert baseline.load(1, address, now=10_000) == 212

    def test_cache_to_cache_same_switch(self, baseline):
        address = own_chip_address(baseline, 0)
        baseline.store(0, address, now=0)
        # proc 2 (other chip): 12 + 160 + 20 + 20 = 212 (same transfer
        # class in Figure 6's table).
        assert baseline.load(2, address, now=10_000) == 212

    def test_upgrade_broadcast_costs_snoop_only(self, baseline):
        address = own_chip_address(baseline, 0)
        baseline.load(0, address, now=0)
        baseline.load(1, address, now=5_000)   # line now shared
        # Upgrade: 12 + snoop 160 = 172; stores stall 40 %: 68.
        assert baseline.store(0, address, now=10_000) == int(172 * 0.4)

    def test_bus_queuing_adds_latency(self, baseline):
        a = own_chip_address(baseline, 0)
        b = a + 0x100000  # different L2 set/region, same home parity kept
        baseline.load(0, a, now=0)
        # Second broadcast issued at the same cycle queues 10 CPU cycles
        # behind the first (one broadcast per system cycle).
        first = baseline.load(1, b, now=0)
        assert first in (262 + 10, 262 + 10 + 5)  # +MC queue if same MC


class TestDirectLatency:
    def test_direct_own_memory(self, machine):
        address = own_chip_address(machine, 0)
        machine.load(0, address, now=0)  # broadcast, region becomes DI
        # Next line in region: direct = 12 + 1 + 160 + 20 = 193.
        assert machine.load(0, address + 0x40, now=10_000) == 193

    def test_direct_same_switch_memory(self, machine):
        address = remote_chip_address(machine, 0)
        machine.load(0, address, now=0)
        # direct: 12 + 20 + 160 + 20 = 212.
        assert machine.load(0, address + 0x40, now=10_000) == 212

    def test_direct_saves_versus_snoop_own_chip(self, machine):
        address = own_chip_address(machine, 0)
        snooped = machine.load(0, address, now=0)
        direct = machine.load(0, address + 0x40, now=10_000)
        assert snooped - direct == 262 - 193

    def test_no_request_upgrade_is_l2_latency_only(self, machine):
        address = own_chip_address(machine, 0)
        machine.ifetch(0, address, now=0)      # S copy, region CI
        # Upgrade with no external request: 12 cycles, store-stall 40 %.
        assert machine.store(0, address, now=10_000) == int(12 * 0.4)


class TestStoreStallFraction:
    def test_store_miss_charged_fractionally(self, baseline):
        address = own_chip_address(baseline, 0)
        stall = baseline.store(0, address, now=0)
        assert stall == int(262 * 0.4)

    def test_load_miss_charged_fully(self, baseline):
        address = own_chip_address(baseline, 0)
        assert baseline.load(0, address, now=0) == 262


class TestMemoryControllerQueuing:
    def test_same_controller_back_to_back_queues(self, machine):
        address = own_chip_address(machine, 0)
        machine.load(0, address, now=0)
        # Two direct reads to the same controller at the same cycle: the
        # second queues 5 cycles (MC occupancy).
        first = machine.load(0, address + 0x40, now=10_000)
        second = machine.load(0, address + 0x80, now=10_000 + 193)
        assert first == 193
        assert second == 193  # fully serialised by the processor: no queue

    def test_concurrent_processors_queue_at_controller(self, machine):
        a0 = own_chip_address(machine, 0)
        a1 = a0 + 8192  # different region, same home controller
        machine.load(0, a0, now=0)
        machine.load(1, a1, now=1000)   # warm proc 1's own region
        # Both processors fire direct reads to controller 0 at cycle 10000.
        lat0 = machine.load(0, a0 + 0x40, now=10_000)
        lat1 = machine.load(1, a1 + 0x40, now=10_000)
        assert lat0 == 193
        assert lat1 == 193 + 5  # queued behind proc 0's DRAM access
