"""Processor node: fills, inclusion plumbing, snoop responses."""

import pytest

from repro.coherence.line_states import L1State, LineState
from repro.coherence.requests import RequestType
from repro.rca.states import RegionState
from repro.system.node import ProcessorNode

from tests.conftest import make_config


@pytest.fixture
def node():
    return ProcessorNode(0, make_config(cgct=True, rca_sets=256))


@pytest.fixture
def plain_node():
    return ProcessorNode(0, make_config(cgct=False))


def geom(node):
    return node.config.geometry


class TestConstruction:
    def test_cgct_node_has_rca(self, node):
        assert node.rca is not None

    def test_baseline_node_has_none(self, plain_node):
        assert plain_node.rca is None

    def test_prefetcher_optional(self):
        with_pf = ProcessorNode(0, make_config(prefetch=True))
        assert with_pf.prefetcher is not None


class TestFillsAndInclusion:
    def test_fill_updates_region_line_count(self, node):
        region = geom(node).region_of(0x1000)
        node.rca.insert(region, RegionState.DIRTY_INVALID, home_mc=0)
        node.fill_line(0x1000, LineState.MODIFIED, fill_l1d=True,
                       l1_writable=True)
        assert node.rca.probe(region).line_count == 1
        assert node.l1d.state_of(0x1000) is L1State.MODIFIED
        node.check_inclusion()

    def test_l2_victim_back_invalidates_l1(self, plain_node):
        node = plain_node
        stride = node.l2.num_sets * geom(node).line_bytes
        node.fill_line(0, LineState.SHARED, fill_l1d=True)
        node.fill_line(stride, LineState.SHARED, fill_l1d=True)
        node.fill_line(2 * stride, LineState.SHARED, fill_l1d=True)
        assert node.l1d.state_of(0) is L1State.INVALID
        node.check_inclusion()

    def test_dirty_victim_produces_writeback(self, plain_node):
        node = plain_node
        stride = node.l2.num_sets * geom(node).line_bytes
        node.fill_line(0, LineState.MODIFIED)
        node.fill_line(stride, LineState.SHARED)
        writebacks = node.fill_line(2 * stride, LineState.SHARED)
        assert len(writebacks) == 1
        assert writebacks[0].line == 0
        assert writebacks[0].home_mc is None  # baseline cannot route

    def test_cgct_writeback_carries_home_mc(self, node):
        g = geom(node)
        stride = node.l2.num_sets * g.line_bytes
        for i, address in enumerate((0, stride, 2 * stride)):
            node.rca.insert(g.region_of(address), RegionState.DIRTY_INVALID,
                            home_mc=7)
        node.fill_line(0, LineState.MODIFIED)
        node.fill_line(stride, LineState.SHARED)
        writebacks = node.fill_line(2 * stride, LineState.SHARED)
        assert writebacks[0].home_mc == 7


class TestRegionAllocation:
    def test_allocation_with_free_way(self, node):
        entry, writebacks = node.allocate_region(
            5, RegionState.CLEAN_INVALID, home_mc=1)
        assert entry.region == 5
        assert writebacks == []

    def test_allocation_evicts_victim_and_flushes_lines(self, node):
        g = geom(node)
        sets = node.rca.num_sets
        # Three regions in the same RCA set.
        regions = [7, 7 + sets, 7 + 2 * sets]
        for region in regions[:2]:
            node.rca.insert(region, RegionState.DIRTY_INVALID, home_mc=3)
        dirty_address = list(g.region_addresses(regions[0]))[0]
        node.fill_line(dirty_address, LineState.MODIFIED)
        # Region[1] is empty ⇒ preferred victim; region[0] keeps its line.
        entry2, writebacks = node.allocate_region(
            regions[2], RegionState.CLEAN_INVALID, home_mc=3)
        assert writebacks == []
        assert node.rca.probe(regions[0]) is not None
        assert node.rca.probe(regions[1]) is None
        # Give the new region a line too, so the next allocation cannot
        # find an empty victim and must flush LRU region[0].
        node.fill_line(list(g.region_addresses(regions[2]))[0], LineState.SHARED)
        _entry, writebacks = node.allocate_region(
            regions[0] + 3 * sets, RegionState.CLEAN_INVALID, home_mc=3)
        assert [w.line for w in writebacks] == [g.line_of(dirty_address)]
        assert writebacks[0].home_mc == 3
        assert node.l2.peek(g.line_of(dirty_address)) is None
        node.check_inclusion()


class TestLineSnoops:
    def test_snoop_miss(self, node):
        response, wrote_back = node.snoop_line(42, RequestType.READ)
        assert not response.cached
        assert not wrote_back

    def test_read_snoop_of_modified_supplies_and_demotes(self, node):
        g = geom(node)
        node.rca.insert(g.region_of(0), RegionState.DIRTY_INVALID, home_mc=0)
        node.fill_line(0, LineState.MODIFIED, fill_l1d=True, l1_writable=True)
        response, wrote_back = node.snoop_line(0, RequestType.READ)
        assert response.cached and response.dirty and response.supplied
        assert not wrote_back
        assert node.l2.peek(0).state is LineState.OWNED
        assert node.l1d.state_of(0) is L1State.SHARED

    def test_rfo_snoop_invalidates_through_l1(self, node):
        g = geom(node)
        node.rca.insert(g.region_of(0), RegionState.DIRTY_INVALID, home_mc=0)
        node.fill_line(0, LineState.MODIFIED, fill_l1d=True, l1_writable=True)
        response, _ = node.snoop_line(0, RequestType.RFO)
        assert response.supplied
        assert node.l2.peek(0) is None
        assert node.l1d.state_of(0) is L1State.INVALID
        assert node.rca.probe(g.region_of(0)).line_count == 0

    def test_dcbf_snoop_writes_back(self, node):
        g = geom(node)
        node.rca.insert(g.region_of(0), RegionState.DIRTY_INVALID, home_mc=0)
        node.fill_line(0, LineState.MODIFIED)
        _response, wrote_back = node.snoop_line(0, RequestType.DCBF)
        assert wrote_back
        assert node.l2.peek(0) is None


class TestRegionSnoops:
    def test_no_rca_reports_nothing(self, plain_node):
        response = plain_node.snoop_region(5, RequestType.READ, False)
        assert not response.cached

    def test_untracked_region_reports_nothing(self, node):
        response = node.snoop_region(5, RequestType.READ, False)
        assert not response.cached

    def test_tracked_dirty_region_reports_dirty_and_downgrades(self, node):
        g = geom(node)
        node.rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        address = list(g.region_addresses(5))[0]
        node.fill_line(address, LineState.MODIFIED)
        response = node.snoop_region(5, RequestType.READ, False)
        assert response.dirty
        assert node.rca.probe(5).state is RegionState.DIRTY_CLEAN

    def test_empty_region_self_invalidates(self, node):
        node.rca.insert(5, RegionState.DIRTY_DIRTY, home_mc=0)
        response = node.snoop_region(5, RequestType.RFO, None)
        assert not response.cached
        assert node.rca.probe(5) is None
        assert node.rca.self_invalidations == 1
