"""ExternalRequestStats and RunResult arithmetic identities."""

import pytest

from repro.system.machine import ExternalRequestStats, OracleCategory
from repro.system.simulator import run_workload

from tests.conftest import loads, make_config, multitrace


class TestExternalRequestStats:
    def test_totals_sum_categories(self):
        stats = ExternalRequestStats()
        stats.broadcasts[OracleCategory.DATA] = 3
        stats.broadcasts[OracleCategory.IFETCH] = 2
        stats.directs[OracleCategory.WRITEBACK] = 4
        stats.no_requests[OracleCategory.DCB] = 1
        assert stats.total_broadcasts == 5
        assert stats.total_directs == 4
        assert stats.total_no_requests == 1
        assert stats.total_external == 10
        assert stats.total_avoided == 5

    def test_avoided_per_category(self):
        stats = ExternalRequestStats()
        stats.directs[OracleCategory.DATA] = 2
        stats.no_requests[OracleCategory.DATA] = 3
        assert stats.avoided(OracleCategory.DATA) == 5
        assert stats.avoided(OracleCategory.IFETCH) == 0

    def test_unnecessary_never_exceeds_broadcasts_in_runs(self):
        workload = multitrace([
            loads([0x100000 * (p + 1) + i * 64 for i in range(20)], gap=3)
            for p in range(4)
        ])
        result = run_workload(make_config(cgct=False), workload)
        stats = result.stats
        for category in OracleCategory:
            assert (stats.unnecessary_broadcasts[category]
                    <= stats.broadcasts[category])


class TestRunResultIdentities:
    @pytest.fixture(scope="class")
    def result(self):
        workload = multitrace([
            loads([0x100000 * (p + 1) + i * 64 for i in range(30)], gap=3)
            for p in range(4)
        ])
        return run_workload(make_config(cgct=True), workload)

    def test_category_fractions_sum_to_totals(self, result):
        avoided = sum(
            result.category_fraction(c, of="avoided") for c in OracleCategory
        )
        assert avoided == pytest.approx(result.fraction_avoided())

    def test_cycles_is_max_of_processors(self, result):
        assert result.cycles == max(result.per_processor_cycles)

    def test_gap_plus_stall_equals_clock(self, result):
        for cycles, stalls, gaps in zip(
            result.per_processor_cycles,
            result.per_processor_stalls,
            result.per_processor_gaps,
        ):
            assert cycles == stalls + gaps

    def test_self_speedup_is_one(self, result):
        assert result.speedup_over(result) == pytest.approx(1.0)
        assert result.runtime_reduction_over(result) == pytest.approx(0.0)

    def test_traffic_average_consistent_with_counts(self, result):
        # total broadcasts / cycles * window == reported average (within
        # the discretisation of the last partial window).
        expected = result.broadcasts / result.cycles * 100_000
        assert result.traffic_average_per_window == pytest.approx(
            expected, rel=0.35)
