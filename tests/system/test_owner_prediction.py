"""Owner prediction: targeted cache-to-cache probes (Section 6)."""

import pytest

from repro.coherence.requests import RequestType
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


@pytest.fixture
def machine():
    return Machine(make_config(cgct=True, rca_sets=1024,
                               owner_prediction=True))


def make_dirty_region(machine, owner=1, reader=0, base=0x30000):
    """Owner dirties a line; reader learns the region is externally dirty
    and picks up the owner hint from the cache-to-cache transfer."""
    machine.store(owner, base, now=0)
    machine.load(reader, base, now=10_000)  # broadcast c2c; hint = owner
    return base


class TestTargetedHits:
    def test_second_read_probes_owner_directly(self, machine):
        base = make_dirty_region(machine)
        machine.store(1, base + 0x40, now=20_000)  # owner dirties 2nd line
        machine.load(0, base + 0x40, now=30_000)
        assert machine.targeted_hits == 1
        assert machine.request_paths[RequestType.READ, RequestPath.TARGETED] == 1

    def test_targeted_latency_beats_broadcast_c2c(self, machine):
        base = make_dirty_region(machine)
        machine.store(1, base + 0x40, now=20_000)
        # Broadcast c2c same chip: 12 + 160 + 20 + 20 = 212.
        # Targeted same chip: 12 + 1 + 20 + 20 = 53.
        latency = machine.load(0, base + 0x40, now=30_000)
        assert latency < 212

    def test_hint_learned_from_broadcast_supplier(self, machine):
        base = make_dirty_region(machine, owner=2, reader=0)
        region = machine.geometry.region_of(base)
        entry = machine.nodes[0].region_entry(region)
        assert entry.owner_hint == 2

    def test_hint_learned_from_observed_rfo(self, machine):
        machine.load(0, 0x40000, now=0)        # proc 0 tracks the region
        machine.load(0, 0x40040, now=1000)
        machine.store(3, 0x40040, now=2000)    # proc 3 takes a line
        region = machine.geometry.region_of(0x40000)
        entry = machine.nodes[0].region_entry(region)
        assert entry.owner_hint == 3

    def test_coherence_after_targeted_transfer(self, machine):
        base = make_dirty_region(machine)
        machine.store(1, base + 0x40, now=20_000)
        machine.load(0, base + 0x40, now=30_000)
        machine.check_coherence_invariants()
        from repro.coherence.line_states import LineState

        line = machine.geometry.line_of(base + 0x40)
        assert machine.nodes[0].l2.peek(line).state is LineState.SHARED
        assert machine.nodes[1].l2.peek(line).state is LineState.OWNED


class TestTargetedMisses:
    @staticmethod
    def _evict_owner_line(machine, base, owner=1):
        """Silently push the owner's dirty line out of its L2 (the
        write-back goes direct, so the reader's stale hint survives)."""
        stride = machine.nodes[owner].l2.num_sets * 64
        machine.store(owner, base + stride, now=20_000)
        machine.store(owner, base + 2 * stride, now=21_000)

    def test_wrong_hint_falls_back_to_broadcast(self, machine):
        base = make_dirty_region(machine)
        self._evict_owner_line(machine, base)
        # Proc 0's region still says externally dirty with hint=1, but
        # proc 1 no longer caches anything there: probe misses.
        machine.load(0, base + 0x40, now=30_000)
        assert machine.targeted_misses == 1
        assert machine.request_paths[RequestType.READ, RequestPath.BROADCAST] >= 1
        machine.check_coherence_invariants()

    def test_miss_clears_the_hint(self, machine):
        base = make_dirty_region(machine)
        self._evict_owner_line(machine, base)
        machine.load(0, base + 0x40, now=30_000)
        region = machine.geometry.region_of(base)
        entry = machine.nodes[0].region_entry(region)
        # Hint was cleared by the miss; the fallback broadcast found no
        # owner, so it stayed clear.
        assert entry is None or entry.owner_hint is None

    def test_miss_penalty_added_to_latency(self):
        with_pred = Machine(make_config(cgct=True, rca_sets=1024,
                                        owner_prediction=True))
        without = Machine(make_config(cgct=True, rca_sets=1024))
        latencies = {}
        for label, machine in (("with", with_pred), ("without", without)):
            base = make_dirty_region(machine)
            self._evict_owner_line(machine, base)
            latencies[label] = machine.load(0, base + 0x40, now=30_000)
        assert latencies["with"] > latencies["without"]  # wasted round trip


class TestEligibility:
    def test_stores_never_target(self, machine):
        base = make_dirty_region(machine)
        machine.store(1, base + 0x40, now=20_000)
        machine.store(0, base + 0x40, now=30_000)  # RFO must broadcast
        assert machine.request_paths.get(
            (RequestType.RFO, RequestPath.TARGETED), 0) == 0

    def test_disabled_by_default(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024))
        base = make_dirty_region(machine)
        machine.store(1, base + 0x40, now=20_000)
        machine.load(0, base + 0x40, now=30_000)
        assert machine.targeted_hits == 0

    def test_never_targets_self(self, machine):
        # A region whose hint points at ourselves must broadcast normally.
        base = make_dirty_region(machine, owner=0, reader=1)
        machine.load(1, base + 0x40, now=30_000)
        machine.check_coherence_invariants()
