"""Trace-driven processor timing."""

import pytest

from repro.common.errors import SimulationError
from repro.system.machine import Machine
from repro.system.processor import TraceProcessor
from repro.workloads.trace import TraceOp

from tests.conftest import make_config, trace_of


@pytest.fixture
def machine():
    return Machine(make_config(cgct=False))


def test_gaps_advance_the_clock(machine):
    trace = trace_of([(TraceOp.LOAD, 0x1000, 100), (TraceOp.LOAD, 0x1000, 50)])
    proc = TraceProcessor(0, trace, machine)
    proc.step()
    first_clock = proc.clock
    assert first_clock == 100 + 262  # gap + cold miss
    proc.step()
    assert proc.clock == first_clock + 50 + 1  # gap + L1 hit


def test_next_time_previews_issue_cycle(machine):
    trace = trace_of([(TraceOp.LOAD, 0x1000, 42)])
    proc = TraceProcessor(0, trace, machine)
    assert proc.next_time == 42
    proc.step()
    assert proc.done


def test_next_time_after_exhaustion_raises(machine):
    proc = TraceProcessor(0, trace_of([]), machine)
    assert proc.done
    with pytest.raises(SimulationError):
        proc.next_time


def test_stall_and_gap_accounting(machine):
    trace = trace_of([
        (TraceOp.LOAD, 0x1000, 10),
        (TraceOp.LOAD, 0x1000, 20),
    ])
    proc = TraceProcessor(0, trace, machine)
    proc.run_to_completion()
    assert proc.gap_cycles == 30
    assert proc.stall_cycles == 262 + 1
    assert proc.clock == proc.gap_cycles + proc.stall_cycles


def test_all_op_kinds_dispatch(machine):
    trace = trace_of([
        (TraceOp.LOAD, 0x1000, 0),
        (TraceOp.STORE, 0x2000, 0),
        (TraceOp.IFETCH, 0x3000, 0),
        (TraceOp.DCBZ, 0x4000, 0),
        (TraceOp.DCBF, 0x2000, 0),
        (TraceOp.DCBI, 0x1000, 0),
    ])
    proc = TraceProcessor(0, trace, machine)
    proc.run_to_completion()
    assert proc.index == 6
