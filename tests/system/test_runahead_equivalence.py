"""Run-ahead streak execution ≡ one-step-per-pop, bit for bit.

The scheduler optimisation lets the popped processor keep stepping while
its next ready key ``(time, proc_id)`` stays strictly below the heap
top, skipping the push/pop round-trip for private-access streaks. The
original pop-one-step loop is kept as ``runahead="off"`` precisely so
these tests can assert the two are indistinguishable — same cycles,
same stats, same latencies, same telemetry, same traced transactions —
across every observation mode the simulator supports.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.topology import Topology
from repro.obs.simtrace import SimTracer
from repro.system.simulator import Simulator
from repro.telemetry.registry import TelemetryRegistry
from repro.validate.sanitizer import CoherenceSanitizer
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.trace import TraceOp

from tests.conftest import loads, make_config, multitrace


def run_with(runahead, config, workload, seed=0, telemetry=False,
             tracer=None, sanitizer=None, step_observer=None,
             scheduler="heap", snoop="bitmask"):
    registry = TelemetryRegistry(interval=5_000) if telemetry else None
    simulator = Simulator(
        config, seed=seed, telemetry=registry, scheduler=scheduler,
        sanitizer=sanitizer, step_observer=step_observer, snoop=snoop,
        tracer=tracer, runahead=runahead,
    )
    result = simulator.run(workload)
    return simulator, result, registry


def fingerprint(simulator, result, registry=None):
    """Everything observable about one run, as a comparable dict."""
    print_ = {
        "per_processor_cycles": result.per_processor_cycles,
        "per_processor_stalls": result.per_processor_stalls,
        "per_processor_gaps": result.per_processor_gaps,
        "stats": result.stats,
        "broadcasts": result.broadcasts,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "l2_misses": result.l2_misses,
        "demand_latency_mean": result.demand_latency_mean,
        "bus_queue_cycles": result.bus_queue_cycles,
        "rca_allocations": result.rca_allocations,
        "rca_self_invalidations": result.rca_self_invalidations,
        "request_paths": dict(simulator.machine.request_paths),
        "path_latency": {
            key: (s.count, s.mean, s.minimum, s.maximum)
            for key, s in simulator.machine.path_latency.items()
        },
    }
    if registry is not None:
        print_["telemetry"] = registry.to_dict()
    return print_


def assert_equivalent(config, workload, seed=0, telemetry=False,
                      scheduler="heap", snoop="bitmask"):
    """Run with streaks on and off and compare everything observable."""
    on_sim, on_run, on_reg = run_with(
        "streak", config, workload, seed, telemetry,
        scheduler=scheduler, snoop=snoop)
    off_sim, off_run, off_reg = run_with(
        "off", config, workload, seed, telemetry,
        scheduler=scheduler, snoop=snoop)
    assert fingerprint(on_sim, on_run, on_reg) == \
        fingerprint(off_sim, off_run, off_reg)


def contended_workload(procs=4, lines=24):
    per_proc = []
    for proc in range(procs):
        addresses = [0x40000 + i * 64 for i in range(lines)]
        per_proc.append(loads(addresses, gap=3 + proc))
    return multitrace(per_proc)


def private_workload(procs=4, lines=48):
    """Disjoint working sets: long locally-resolvable streaks, the very
    case the run-ahead path is built for."""
    per_proc = []
    for proc in range(procs):
        base = 0x100000 * (proc + 1)
        addresses = [base + (i % 8) * 64 for i in range(lines)]
        per_proc.append(loads(addresses, gap=1))
    return multitrace(per_proc)


class TestRunaheadEquivalence:
    def test_contended_trace(self):
        assert_equivalent(make_config(cgct=True), contended_workload())

    def test_private_streaks(self):
        assert_equivalent(make_config(cgct=True), private_workload())

    def test_baseline_machine(self):
        assert_equivalent(make_config(cgct=False), contended_workload())
        assert_equivalent(make_config(cgct=False), private_workload())

    def test_with_telemetry(self):
        # Streaks must stop at sampling boundaries; the registries have
        # to see the identical interleaving of samples and steps.
        assert_equivalent(
            make_config(cgct=True), private_workload(), telemetry=True
        )
        assert_equivalent(
            make_config(cgct=True), contended_workload(), telemetry=True
        )

    def test_with_timing_perturbation(self):
        # Perturbation draws from the per-run RNG; identical draws prove
        # the step *order* (which drives RNG consumption) is unchanged.
        config = make_config(cgct=True, perturbation=20)
        for seed in (0, 1, 2):
            assert_equivalent(config, private_workload(), seed=seed)

    def test_simultaneous_ready_times(self):
        # Equal-time ties must still yield to the lower proc id: a streak
        # may only continue while its key is *strictly* below the top.
        per_proc = [[(TraceOp.LOAD, 0x8000, 10)] * 6 for _ in range(4)]
        assert_equivalent(make_config(cgct=True), multitrace(per_proc))

    def test_linear_scheduler_unaffected(self):
        # runahead="streak" with scheduler="linear" must be a no-op pair:
        # the linear reference loop never streaks.
        assert_equivalent(
            make_config(cgct=True), private_workload(), scheduler="linear"
        )

    def test_snoop_walk_machine(self):
        assert_equivalent(
            make_config(cgct=True), private_workload(), snoop="walk"
        )

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from([TraceOp.LOAD, TraceOp.STORE,
                                     TraceOp.IFETCH, TraceOp.DCBZ]),
                    st.integers(min_value=0, max_value=0x7FFF).map(
                        lambda a: a * 64
                    ),
                    st.integers(min_value=0, max_value=12),
                ),
                min_size=1,
                max_size=30,
            ),
            min_size=4,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=7),
        cgct=st.booleans(),
    )
    def test_randomized_traces(self, data, seed, cgct):
        config = make_config(cgct=cgct, perturbation=8)
        assert_equivalent(config, multitrace(data), seed=seed)


class TestRunaheadObservers:
    """Modes that hook individual steps must see the reference order."""

    def test_tracer_mode(self):
        # An attached tracer forces per-step machine dispatch; results
        # and the captured transactions must both match the off path.
        config = make_config(cgct=True)
        workload = private_workload()
        on_tracer, off_tracer = SimTracer(), SimTracer()
        on_sim, on_run, _ = run_with("streak", config, workload,
                                     tracer=on_tracer)
        off_sim, off_run, _ = run_with("off", config, workload,
                                       tracer=off_tracer)
        assert fingerprint(on_sim, on_run) == fingerprint(off_sim, off_run)
        assert on_tracer.accesses == off_tracer.accesses
        assert on_tracer.recorded == off_tracer.recorded
        on_records = [on_tracer.transaction_record(t)
                      for t in on_tracer.transactions]
        off_records = [off_tracer.transaction_record(t)
                       for t in off_tracer.transactions]
        assert on_records == off_records

    def test_sanitizer_mode(self):
        # The sanitizer's checked loop is shared by both settings; the
        # audit cadence must not disturb results either way.
        config = make_config(cgct=True)
        workload = contended_workload()
        on_sim, on_run, _ = run_with(
            "streak", config, workload,
            sanitizer=CoherenceSanitizer(mode="deep", bundle_dir=None))
        off_sim, off_run, _ = run_with(
            "off", config, workload,
            sanitizer=CoherenceSanitizer(mode="deep", bundle_dir=None))
        assert fingerprint(on_sim, on_run) == fingerprint(off_sim, off_run)

    def test_step_observer_sees_reference_pid_order(self):
        # The observer loop disables streaks entirely: the pid sequence
        # it reports must equal the runahead="off" sequence exactly.
        config = make_config(cgct=True)
        workload = private_workload()
        on_pids, off_pids = [], []
        on_sim, on_run, _ = run_with("streak", config, workload,
                                     step_observer=on_pids.append)
        off_sim, off_run, _ = run_with("off", config, workload,
                                       step_observer=off_pids.append)
        assert on_pids == off_pids
        assert fingerprint(on_sim, on_run) == fingerprint(off_sim, off_run)


class TestSixteenProcessorRunahead:
    """Scaling-machine equivalence; CI selects this class by name."""

    TOPOLOGY = Topology(
        cores_per_chip=2, chips_per_switch=2, switches_per_board=2, boards=2
    )

    def workload(self):
        return build_benchmark(
            "barnes", num_processors=16, ops_per_processor=300, seed=0
        )

    def test_streak_equals_off_at_16p_cgct(self):
        config = make_config(cgct=True, topology=self.TOPOLOGY)
        assert_equivalent(config, self.workload(), seed=3)

    def test_streak_equals_off_at_16p_baseline(self):
        config = make_config(cgct=False, topology=self.TOPOLOGY)
        assert_equivalent(config, self.workload(), seed=3)

    def test_streak_equals_off_at_16p_with_telemetry(self):
        config = make_config(cgct=True, topology=self.TOPOLOGY)
        assert_equivalent(config, self.workload(), seed=3, telemetry=True)
