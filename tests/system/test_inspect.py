"""Machine summaries."""

import json

import pytest

from repro.system.inspect import machine_summary, render_summary
from repro.system.machine import Machine

from tests.conftest import make_config


@pytest.fixture
def machine():
    machine = Machine(make_config(cgct=True, rca_sets=1024))
    machine.load(0, 0x1000, now=0)
    machine.load(0, 0x1040, now=1000)
    machine.store(1, 0x1000, now=2000)
    return machine


def test_summary_counts_match_machine(machine):
    summary = machine_summary(machine)
    assert summary["requests"]["broadcasts"] == machine.stats.total_broadcasts
    assert summary["requests"]["directs"] == machine.stats.total_directs
    assert summary["interconnect"]["c2c_transfers"] == machine.c2c_transfers
    assert summary["config"]["cgct"] is True


def test_region_state_census(machine):
    summary = machine_summary(machine)
    census = summary["rca"]["states"]
    assert sum(census.values()) == summary["rca"]["resident_regions"]
    assert all(len(state) <= 2 for state in census)


def test_baseline_summary_has_no_rca_section():
    machine = Machine(make_config(cgct=False))
    machine.load(0, 0x1000, now=0)
    summary = machine_summary(machine)
    assert "rca" not in summary


def test_horizon_enables_utilization(machine):
    summary = machine_summary(machine, horizon=100_000)
    assert 0.0 <= summary["interconnect"]["bus_utilization"] <= 1.0


def test_summary_is_json_serialisable(machine):
    text = json.dumps(machine_summary(machine, horizon=1000))
    assert "broadcasts" in text


def test_render_summary(machine):
    text = render_summary(machine_summary(machine))
    assert "bus_broadcasts" in text
    assert "section" in text


def test_zero_horizon_omits_utilization(machine):
    summary = machine_summary(machine, horizon=0)
    assert "bus_utilization" not in summary["interconnect"]


def test_regionscout_summary_reports_flag_without_rca_section():
    machine = Machine(make_config(cgct=False, regionscout_enabled=True))
    machine.load(0, 0x1000, now=0)
    machine.load(1, 0x8000, now=1000)
    summary = machine_summary(machine)
    assert summary["config"]["regionscout"] is True
    assert summary["config"]["cgct"] is False
    # RegionScout keeps NSRT/CRH structures, not an RCA census.
    assert "rca" not in summary


def test_fresh_machine_summary_is_all_zero():
    summary = machine_summary(Machine(make_config(cgct=True)))
    assert summary["requests"]["broadcasts"] == 0
    assert summary["hierarchy"]["l1_hits"] == 0
    assert summary["memory"]["dram_reads"] == 0
    assert summary["rca"]["resident_regions"] == 0
    assert summary["rca"]["states"] == {}


def test_render_summary_includes_rca_rows(machine):
    text = render_summary(machine_summary(machine))
    assert "self_invalidations" in text
    assert "resident_regions" in text
