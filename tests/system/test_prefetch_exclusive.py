"""R10000-style exclusive prefetching through the machine."""

import pytest

from repro.coherence.line_states import LineState
from repro.coherence.requests import RequestType
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


@pytest.fixture
def machine():
    return Machine(make_config(cgct=True, prefetch=True, rca_sets=1024))


def store_stream(machine, proc, base, count, start=0):
    for i in range(count):
        machine.store(proc, base + i * 64, now=start + i * 600)


def test_exclusive_prefetch_fills_exclusive_state(machine):
    store_stream(machine, 0, 0x20000, 3)
    # The stream prefetcher ran ahead; prefetched lines sit in E, ready
    # for the stores that follow.
    prefetched = [
        machine.nodes[0].l2.peek(machine.geometry.line_of(0x20000 + i * 64))
        for i in range(3, 6)
    ]
    states = {entry.state for entry in prefetched if entry is not None}
    assert LineState.EXCLUSIVE in states


def test_store_into_prefetched_line_is_silent(machine):
    store_stream(machine, 0, 0x20000, 6)
    demand_before = sum(
        n for (req, _p), n in machine.request_paths.items()
        if req in (RequestType.RFO, RequestType.UPGRADE)
    )
    # The next store lands on an exclusively-prefetched line: L2 hit,
    # silent E→M — no demand RFO/upgrade (the stream prefetcher may
    # still advance, which is its job).
    machine.store(0, 0x20000 + 6 * 64, now=100_000)
    demand_after = sum(
        n for (req, _p), n in machine.request_paths.items()
        if req in (RequestType.RFO, RequestType.UPGRADE)
    )
    assert demand_after == demand_before
    line = machine.geometry.line_of(0x20000 + 6 * 64)
    assert machine.nodes[0].l2.peek(line).state is LineState.MODIFIED


def test_exclusive_prefetch_steals_remote_copies_coherently(machine):
    # Proc 1 shares a line that proc 0's store stream will prefetch over.
    machine.load(1, 0x30100, now=0)
    store_stream(machine, 0, 0x30000, 6, start=1000)
    machine.check_coherence_invariants()
    line = machine.geometry.line_of(0x30100)
    holders = [
        node.proc_id for node in machine.nodes
        if node.l2.peek(line) is not None
    ]
    assert holders in ([0], [1], [])  # never both


def test_prefetch_ex_counts_in_data_category(machine):
    from repro.system.machine import OracleCategory

    store_stream(machine, 0, 0x20000, 6)
    issued = sum(
        n for (req, _p), n in machine.request_paths.items()
        if req is RequestType.PREFETCH_EX
    )
    assert issued > 0
    # Prefetches land in the DATA oracle category (Figure 2 lumps them
    # with ordinary reads and writes).
    data_total = (
        machine.stats.broadcasts[OracleCategory.DATA]
        + machine.stats.directs[OracleCategory.DATA]
        + machine.stats.no_requests[OracleCategory.DATA]
    )
    assert data_total >= issued
