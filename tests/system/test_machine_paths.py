"""Request routing: which path each request takes, per region state.

These tests drive the machine through its public load/store/ifetch/DCB
operations and assert on the (request, path) counters — the broadcast /
direct / no-request decisions that define Coarse-Grain Coherence
Tracking.
"""

import pytest

from repro.coherence.requests import RequestType
from repro.rca.states import RegionState
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config

LINE = 64
REGION = 512


@pytest.fixture
def machine():
    return Machine(make_config(cgct=True, rca_sets=256))


@pytest.fixture
def baseline():
    return Machine(make_config(cgct=False))


def paths(machine):
    return dict(machine.request_paths)


class TestBaselineBroadcastsEverything:
    def test_cold_load_broadcasts(self, baseline):
        baseline.load(0, 0x1000, now=0)
        assert paths(baseline) == {(RequestType.READ, RequestPath.BROADCAST): 1}

    def test_repeat_loads_to_region_still_broadcast(self, baseline):
        for offset in range(0, REGION, LINE):
            baseline.load(0, 0x1000 + offset, now=offset)
        assert paths(baseline)[RequestType.READ, RequestPath.BROADCAST] == 8

    def test_no_direct_requests_ever(self, baseline):
        for address in (0x0, 0x1000, 0x2040):
            baseline.load(0, address, now=0)
            baseline.store(0, address + 0x40, now=0)
        assert all(path is RequestPath.BROADCAST
                   for _req, path in paths(baseline))


class TestExclusiveRegionGoesDirect:
    def test_first_touch_broadcasts_then_region_hits_go_direct(self, machine):
        machine.load(0, 0x1000, now=0)        # allocates region (broadcast)
        machine.load(0, 0x1040, now=1000)      # same region, new line
        machine.load(0, 0x1080, now=2000)
        counted = paths(machine)
        assert counted[RequestType.READ, RequestPath.BROADCAST] == 1
        assert counted[RequestType.READ, RequestPath.DIRECT] == 2

    def test_exclusive_read_sets_region_dirty_invalid(self, machine):
        machine.load(0, 0x1000, now=0)
        entry = machine.nodes[0].region_entry(
            machine.geometry.region_of(0x1000))
        # Nobody else caches: READ filled EXCLUSIVE ⇒ DI (Figure 3).
        assert entry.state is RegionState.DIRTY_INVALID

    def test_store_to_exclusive_region_goes_direct(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.store(0, 0x1040, now=1000)     # RFO, same region
        assert paths(machine)[RequestType.RFO, RequestPath.DIRECT] == 1

    def test_upgrade_in_exclusive_region_needs_no_request(self, machine):
        machine.ifetch(0, 0x1000, now=0)       # fills SHARED, region CI
        machine.store(0, 0x1000, now=1000)     # upgrade S→M: silent
        counted = paths(machine)
        assert counted[RequestType.UPGRADE, RequestPath.NO_REQUEST] == 1
        entry = machine.nodes[0].region_entry(
            machine.geometry.region_of(0x1000))
        assert entry.state is RegionState.DIRTY_INVALID  # silent CI→DI


class TestSharedRegions:
    def test_remote_reader_downgrades_region(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)      # proc 1 reads the same line
        entry = machine.nodes[0].region_entry(
            machine.geometry.region_of(0x1000))
        # Proc 1's read was shared (proc 0 caches it): externally clean.
        assert entry.state is RegionState.DIRTY_CLEAN

    def test_demand_load_to_externally_clean_region_broadcasts(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)
        # Proc 0 touches another line of the now-CC region: must broadcast
        # (loads may return exclusive copies, Section 3.1).
        machine.load(0, 0x1080, now=2000)
        counted = paths(machine)
        assert counted[RequestType.READ, RequestPath.BROADCAST] == 3

    def test_ifetch_to_externally_clean_region_goes_direct(self, machine):
        machine.ifetch(0, 0x1000, now=0)       # region CI on proc 0
        machine.ifetch(1, 0x1000, now=1000)    # region CC on both
        machine.ifetch(0, 0x1080, now=2000)    # proc 0: CC ⇒ direct
        counted = paths(machine)
        assert counted[RequestType.IFETCH, RequestPath.DIRECT] == 1

    def test_externally_dirty_region_broadcasts_everything(self, machine):
        machine.store(0, 0x1000, now=0)        # proc 0 owns dirty line
        machine.load(1, 0x1040, now=1000)      # proc 1: region CD (dirty)
        machine.load(1, 0x1080, now=2000)      # still broadcasts
        counted = paths(machine)
        assert counted[RequestType.READ, RequestPath.BROADCAST] == 2
        entry = machine.nodes[1].region_entry(
            machine.geometry.region_of(0x1000))
        assert entry.state.is_externally_dirty


class TestSelfInvalidation:
    def test_migratory_handoff_rescued_immediately(self, machine):
        # Proc 0 dirties a line, then loses it to proc 1 (migratory).
        machine.store(0, 0x1000, now=0)
        machine.store(1, 0x1000, now=1000)     # RFO takes proc 0's only line
        node0 = machine.nodes[0]
        region = machine.geometry.region_of(0x1000)
        # The RFO's line snoop emptied proc 0's region, so its region
        # snoop (in the same broadcast) self-invalidated it and reported
        # no copies: proc 1 obtains the region exclusively right away.
        assert node0.region_entry(region) is None
        entry1 = machine.nodes[1].region_entry(region)
        assert entry1.state is RegionState.DIRTY_INVALID
        # Proc 1's next touches of the region go direct / request-free.
        machine.load(1, 0x1080, now=3000)
        assert paths(machine)[RequestType.READ, RequestPath.DIRECT] == 1

    def test_region_survives_while_other_lines_remain(self, machine):
        # Proc 0 caches two lines of the region; losing one keeps the
        # region tracked (line count 1) and externally dirty on proc 1.
        machine.store(0, 0x1000, now=0)
        machine.store(0, 0x1080, now=500)
        machine.store(1, 0x1000, now=1000)
        region = machine.geometry.region_of(0x1000)
        entry0 = machine.nodes[0].region_entry(region)
        assert entry0 is not None
        assert entry0.line_count == 1
        assert machine.nodes[1].region_entry(region).state.is_externally_dirty


class TestUpgradeSemantics:
    def test_upgrade_broadcast_invalidates_remote_sharers(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)      # both share the line
        machine.store(0, 0x1000, now=2000)     # upgrade must broadcast
        counted = paths(machine)
        assert counted[RequestType.UPGRADE, RequestPath.BROADCAST] == 1
        assert machine.nodes[1].l2.peek(machine.geometry.line_of(0x1000)) is None

    def test_upgrade_response_refreshes_region(self, machine):
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)
        machine.store(0, 0x1000, now=2000)
        entry = machine.nodes[0].region_entry(
            machine.geometry.region_of(0x1000))
        # Proc 1's only line of the region was invalidated by the upgrade
        # and its region self-invalidated: response shows no copies ⇒ DI.
        assert entry.state is RegionState.DIRTY_INVALID
