"""Stream prefetching integrated with the memory system."""

import pytest

from repro.coherence.requests import RequestType
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


@pytest.fixture
def machine():
    return Machine(make_config(cgct=True, prefetch=True, rca_sets=1024))


@pytest.fixture
def baseline():
    return Machine(make_config(cgct=False, prefetch=True))


def sequential_loads(machine, proc, base, count, start=0, step=500):
    for i in range(count):
        machine.load(proc, base + i * 64, now=start + i * step)


def test_sequential_misses_trigger_prefetches(baseline):
    sequential_loads(baseline, 0, 0x10000, 4)
    issued = sum(
        n for (req, _path), n in baseline.request_paths.items()
        if req in (RequestType.PREFETCH, RequestType.PREFETCH_EX)
    )
    assert issued > 0


def test_prefetched_lines_turn_demand_misses_into_hits(baseline):
    sequential_loads(baseline, 0, 0x10000, 10)
    # After the stream confirms, later loads hit on prefetched lines: far
    # fewer demand READ broadcasts than lines.
    demand_reads = baseline.request_paths[RequestType.READ, RequestPath.BROADCAST]
    assert demand_reads < 6


def test_store_streams_prefetch_exclusive(baseline):
    for i in range(6):
        baseline.store(0, 0x20000 + i * 64, now=i * 500)
    exclusive = sum(
        n for (req, _path), n in baseline.request_paths.items()
        if req is RequestType.PREFETCH_EX
    )
    assert exclusive > 0


def test_prefetches_into_exclusive_regions_go_direct(machine):
    sequential_loads(machine, 0, 0x30000, 12)
    direct_pf = machine.request_paths[RequestType.PREFETCH, RequestPath.DIRECT]
    assert direct_pf > 0


def test_prefetches_never_stall_the_processor(machine):
    # The stall for each load must not include prefetch latencies: a load
    # that hits L1 after a prior identical load costs 1 cycle even while
    # streams are active.
    sequential_loads(machine, 0, 0x40000, 8)
    assert machine.load(0, 0x40000, now=100_000) == 1


def test_prefetch_requests_respect_coherence(machine):
    # Proc 1 owns a dirty line inside proc 0's stream; the exclusive
    # prefetch must either take it coherently or skip it — never create
    # two writable copies.
    machine.store(1, 0x50080, now=0)
    for i in range(8):
        machine.store(0, 0x50000 + i * 64, now=1000 + i * 500)
    machine.check_coherence_invariants()


def test_prefetcher_disabled_issues_nothing():
    machine = Machine(make_config(cgct=False, prefetch=False))
    sequential_loads(machine, 0, 0x10000, 10)
    issued = sum(
        n for (req, _path), n in machine.request_paths.items()
        if req in (RequestType.PREFETCH, RequestType.PREFETCH_EX)
    )
    assert issued == 0
