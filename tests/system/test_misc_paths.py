"""Odds and ends: error hierarchy, less-travelled node/machine paths."""

import pytest

from repro.coherence.line_states import L1State, LineState
from repro.coherence.requests import RequestType
from repro.common.errors import (
    CGCTError,
    ConfigurationError,
    ProtocolError,
    SimulationError,
)
from repro.system.machine import Machine
from repro.system.node import ProcessorNode

from tests.conftest import make_config


class TestErrorHierarchy:
    def test_all_derive_from_cgct_error(self):
        for exc in (ConfigurationError, ProtocolError, SimulationError):
            assert issubclass(exc, CGCTError)

    def test_catchable_as_library_errors(self):
        with pytest.raises(CGCTError):
            raise ProtocolError("x")


class TestNodeOddPaths:
    def test_route_writeback_without_rca_is_unrouted(self):
        node = ProcessorNode(0, make_config(cgct=False))
        wb = node.route_writeback_for_line(42)
        assert wb.home_mc is None

    def test_route_writeback_untracked_region_is_unrouted(self):
        node = ProcessorNode(0, make_config(cgct=True, rca_sets=64))
        wb = node.route_writeback_for_line(42)
        assert wb.home_mc is None

    def test_probe_region_response_is_pure(self):
        from repro.rca.states import RegionState

        node = ProcessorNode(0, make_config(cgct=True, rca_sets=64))
        node.rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        address = 5 * 512
        node.fill_line(address, LineState.MODIFIED)
        before = node.rca.probe(5).state
        response = node.probe_region_response(5)
        assert response.dirty
        assert node.rca.probe(5).state is before  # no downgrade

    def test_probe_region_response_empty_region(self):
        from repro.rca.states import RegionState

        node = ProcessorNode(0, make_config(cgct=True, rca_sets=64))
        node.rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        response = node.probe_region_response(5)
        assert not response.cached
        assert node.rca.probe(5) is not None  # not self-invalidated


class TestMachineOddPaths:
    def test_dcbf_invalidates_instruction_copies_too(self):
        machine = Machine(make_config(cgct=False))
        machine.ifetch(0, 0x1000, now=0)
        line = machine.geometry.line_of(0x1000)
        assert machine.nodes[0].l1i.state_of(0x1000) is L1State.SHARED
        machine.dcbf(0, 0x1000, now=1000)
        assert machine.nodes[0].l1i.state_of(0x1000) is L1State.INVALID
        assert machine.nodes[0].l2.peek(line) is None

    def test_dcbz_full_line_after_partial_sharing(self):
        machine = Machine(make_config(cgct=False))
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)   # both share
        machine.dcbz(0, 0x1000, now=2000)   # proc 0 zeroes: invalidate proc 1
        assert machine.nodes[1].l2.peek(machine.geometry.line_of(0x1000)) is None
        entry = machine.nodes[0].l2.peek(machine.geometry.line_of(0x1000))
        assert entry.state is LineState.MODIFIED

    def test_ifetch_after_l1i_eviction_hits_l2(self):
        machine = Machine(make_config(cgct=False, l1_bytes=1024))
        # 1 KB 4-way L1I = 4 sets: five conflicting code lines evict.
        stride = 4 * 64
        for i in range(5):
            machine.ifetch(0, 0x8000 + i * stride, now=i * 1000)
        latency = machine.ifetch(0, 0x8000, now=10_000)
        assert latency == 12  # L2 hit, L1I refill

    def test_upgrade_after_remote_ifetch_share(self):
        machine = Machine(make_config(cgct=False))
        machine.load(0, 0x2000, now=0)       # E at proc 0
        machine.ifetch(1, 0x2000, now=1000)  # code/data aliasing: now shared
        machine.store(0, 0x2000, now=2000)
        # Proc 0's copy was demoted to S: store needs an upgrade broadcast.
        from repro.system.machine import RequestPath

        assert machine.request_paths[
            RequestType.UPGRADE, RequestPath.BROADCAST] == 1
        machine.check_coherence_invariants()

    def test_simulator_skips_validation_when_asked(self):
        from repro.system.simulator import Simulator
        from tests.conftest import loads, multitrace

        workload = multitrace([loads([0x100])] * 4)
        result = Simulator(make_config(cgct=False)).run(workload,
                                                        validate=False)
        assert result.cycles > 0


class TestMinimalTopology:
    def test_two_processor_machine(self):
        from repro.interconnect.topology import Topology

        machine = Machine(make_config(
            cgct=True, rca_sets=64,
            topology=Topology(cores_per_chip=2, chips_per_switch=1,
                              switches_per_board=1, boards=1),
        ))
        assert len(machine.nodes) == 2
        machine.load(0, 0x1000, now=0)
        machine.store(1, 0x1000, now=1000)
        machine.load(0, 0x1000, now=2000)
        machine.check_coherence_invariants()

    def test_single_processor_machine_never_shares(self):
        from repro.interconnect.topology import Topology

        machine = Machine(make_config(
            cgct=True, rca_sets=64,
            topology=Topology(cores_per_chip=1, chips_per_switch=1,
                              switches_per_board=1, boards=1),
        ))
        machine.load(0, 0x1000, now=0)
        machine.load(0, 0x1040, now=1000)
        # With no other processors, the oracle marks everything
        # unnecessary and CGCT converts everything after the first touch.
        assert machine.stats.total_unnecessary == machine.stats.total_broadcasts
        assert machine.stats.total_directs == 1
