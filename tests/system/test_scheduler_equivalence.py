"""Heap scheduler ≡ linear scheduler, bit for bit.

The hot-path overhaul replaced the run loop's O(P) ``min()`` scan with a
heap keyed ``(next_time, proc_id)``. The original scan is kept as
``scheduler="linear"`` precisely so these tests can assert the two
orderings are indistinguishable — same cycles, same stats, same latency
distributions — on hand-built traces, on randomized traces, and at 16
processors where tie-breaks actually matter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.topology import Topology
from repro.system.simulator import Simulator
from repro.telemetry.registry import TelemetryRegistry
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.trace import TraceOp

from tests.conftest import loads, make_config, multitrace


def run_with(scheduler, config, workload, seed=0, telemetry=False):
    registry = TelemetryRegistry(interval=5_000) if telemetry else None
    simulator = Simulator(
        config, seed=seed, telemetry=registry, scheduler=scheduler
    )
    result = simulator.run(workload)
    return simulator, result


def assert_equivalent(config, workload, seed=0, telemetry=False):
    """Run both schedulers and compare everything observable."""
    heap_sim, heap = run_with("heap", config, workload, seed, telemetry)
    linear_sim, linear = run_with("linear", config, workload, seed, telemetry)
    assert heap.per_processor_cycles == linear.per_processor_cycles
    assert heap.per_processor_stalls == linear.per_processor_stalls
    assert heap.per_processor_gaps == linear.per_processor_gaps
    assert heap.stats == linear.stats
    assert heap.broadcasts == linear.broadcasts
    assert heap.l1_hits == linear.l1_hits
    assert heap.l2_hits == linear.l2_hits
    assert heap.l2_misses == linear.l2_misses
    assert heap.demand_latency_mean == linear.demand_latency_mean
    assert heap.bus_queue_cycles == linear.bus_queue_cycles
    assert heap.rca_allocations == linear.rca_allocations
    assert heap.rca_self_invalidations == linear.rca_self_invalidations
    assert heap_sim.machine.request_paths == linear_sim.machine.request_paths
    heap_lat = {
        key: (s.count, s.mean, s.minimum, s.maximum)
        for key, s in heap_sim.machine.path_latency.items()
    }
    linear_lat = {
        key: (s.count, s.mean, s.minimum, s.maximum)
        for key, s in linear_sim.machine.path_latency.items()
    }
    assert heap_lat == linear_lat


def contended_workload(procs=4, lines=24):
    """Every processor walks the same lines with staggered gaps, so grant
    order constantly interleaves and exercises the tie-break."""
    per_proc = []
    for proc in range(procs):
        addresses = [0x40000 + i * 64 for i in range(lines)]
        per_proc.append(loads(addresses, gap=3 + proc))
    return multitrace(per_proc)


class TestSchedulerEquivalence:
    def test_contended_trace(self):
        assert_equivalent(make_config(cgct=True), contended_workload())

    def test_baseline_machine(self):
        assert_equivalent(make_config(cgct=False), contended_workload())

    def test_with_telemetry(self):
        assert_equivalent(
            make_config(cgct=True), contended_workload(), telemetry=True
        )

    def test_with_timing_perturbation(self):
        # Perturbation draws from the per-run RNG; identical draws in both
        # schedulers prove the event *order* (which drives RNG consumption
        # order) is the same, not just the totals.
        config = make_config(cgct=True, perturbation=20)
        for seed in (0, 1, 2):
            assert_equivalent(config, contended_workload(), seed=seed)

    def test_simultaneous_ready_times_break_by_proc_id(self):
        # All processors become ready at exactly the same cycle: the only
        # thing ordering them is the proc-id tie-break.
        per_proc = [[(TraceOp.LOAD, 0x8000, 10)] * 6 for _ in range(4)]
        assert_equivalent(make_config(cgct=True), multitrace(per_proc))

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from([TraceOp.LOAD, TraceOp.STORE]),
                    st.integers(min_value=0, max_value=0x7FFF).map(
                        lambda a: a * 64
                    ),
                    st.integers(min_value=0, max_value=12),
                ),
                min_size=1,
                max_size=30,
            ),
            min_size=4,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=7),
        cgct=st.booleans(),
    )
    def test_randomized_traces(self, data, seed, cgct):
        config = make_config(cgct=cgct, perturbation=8)
        assert_equivalent(config, multitrace(data), seed=seed)


class TestSixteenProcessorDeterminism:
    """Serial determinism of the 16p scaling machine, both schedulers."""

    TOPOLOGY = Topology(
        cores_per_chip=2, chips_per_switch=2, switches_per_board=2, boards=2
    )

    def workload(self):
        return build_benchmark(
            "barnes", num_processors=16, ops_per_processor=300, seed=0
        )

    def test_heap_equals_linear_at_16p(self):
        config = make_config(cgct=True, topology=self.TOPOLOGY)
        assert_equivalent(config, self.workload(), seed=3)

    def test_repeat_runs_identical_at_16p(self):
        config = make_config(cgct=True, topology=self.TOPOLOGY)
        workload = self.workload()
        _, a = run_with("heap", config, workload, seed=3)
        _, b = run_with("heap", config, workload, seed=3)
        assert a.per_processor_cycles == b.per_processor_cycles
        assert a.stats == b.stats
        assert a.broadcasts == b.broadcasts
