"""Oracle broadcast classification (Figure 2 semantics)."""

import pytest

from repro.system.machine import Machine, OracleCategory

from tests.conftest import make_config


@pytest.fixture
def baseline():
    return Machine(make_config(cgct=False))


def unnecessary(machine, category):
    return machine.stats.unnecessary_broadcasts[category]


def total(machine, category):
    return machine.stats.broadcasts[category]


class TestDataRequests:
    def test_unshared_read_is_unnecessary(self, baseline):
        baseline.load(0, 0x1000, now=0)
        assert unnecessary(baseline, OracleCategory.DATA) == 1

    def test_read_of_remotely_cached_line_is_necessary(self, baseline):
        baseline.load(0, 0x1000, now=0)
        baseline.load(1, 0x1000, now=1000)
        assert total(baseline, OracleCategory.DATA) == 2
        assert unnecessary(baseline, OracleCategory.DATA) == 1

    def test_store_taking_remote_copy_is_necessary(self, baseline):
        baseline.load(0, 0x1000, now=0)
        baseline.store(1, 0x1000, now=1000)
        assert unnecessary(baseline, OracleCategory.DATA) == 1  # only the load

    def test_upgrade_with_remote_sharers_is_necessary(self, baseline):
        baseline.load(0, 0x1000, now=0)
        baseline.load(1, 0x1000, now=1000)
        baseline.store(0, 0x1000, now=2000)
        assert total(baseline, OracleCategory.DATA) == 3
        assert unnecessary(baseline, OracleCategory.DATA) == 1


class TestIfetch:
    def test_unshared_ifetch_is_unnecessary(self, baseline):
        baseline.ifetch(0, 0x1000, now=0)
        assert unnecessary(baseline, OracleCategory.IFETCH) == 1

    def test_clean_shared_ifetch_is_still_unnecessary(self, baseline):
        # Memory's copy is valid: the broadcast brought nothing.
        baseline.ifetch(0, 0x1000, now=0)
        baseline.ifetch(1, 0x1000, now=1000)
        assert unnecessary(baseline, OracleCategory.IFETCH) == 2

    def test_ifetch_of_remotely_dirty_line_is_necessary(self, baseline):
        baseline.store(0, 0x1000, now=0)
        baseline.ifetch(1, 0x1000, now=1000)
        assert total(baseline, OracleCategory.IFETCH) == 1
        assert unnecessary(baseline, OracleCategory.IFETCH) == 0


class TestWritebacks:
    def test_writeback_broadcasts_are_always_unnecessary(self, baseline):
        stride = baseline.nodes[0].l2.num_sets * 64
        baseline.store(0, 0x0, now=0)
        baseline.load(0, stride, now=1000)
        baseline.load(0, 2 * stride, now=2000)  # evicts the dirty line
        assert total(baseline, OracleCategory.WRITEBACK) == 1
        assert unnecessary(baseline, OracleCategory.WRITEBACK) == 1


class TestDCB:
    def test_dcbz_of_uncached_page_is_unnecessary(self, baseline):
        baseline.dcbz(0, 0x4000, now=0)
        assert unnecessary(baseline, OracleCategory.DCB) == 1

    def test_dcbz_hitting_remote_copy_is_necessary(self, baseline):
        baseline.load(1, 0x4000, now=0)
        baseline.dcbz(0, 0x4000, now=1000)
        assert total(baseline, OracleCategory.DCB) == 1
        assert unnecessary(baseline, OracleCategory.DCB) == 0


class TestAggregates:
    def test_total_unnecessary_sums_categories(self, baseline):
        baseline.load(0, 0x1000, now=0)
        baseline.ifetch(0, 0x2000, now=100)
        baseline.dcbz(0, 0x3000, now=200)
        stats = baseline.stats
        assert stats.total_unnecessary == 3
        assert stats.total_broadcasts == 3
        assert stats.total_external == 3

    def test_cgct_classifies_its_remaining_broadcasts(self):
        machine = Machine(make_config(cgct=True))
        machine.load(0, 0x1000, now=0)   # broadcast (region invalid)
        machine.load(0, 0x1040, now=1000)  # direct
        stats = machine.stats
        assert stats.total_broadcasts == 1
        assert stats.total_directs == 1
        assert stats.total_unnecessary == 1
