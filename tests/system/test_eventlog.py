"""The coherence event log."""

import pytest

from repro.coherence.requests import RequestType
from repro.system.eventlog import EventLog
from repro.system.machine import Machine

from tests.conftest import make_config


@pytest.fixture
def logged_machine():
    machine = Machine(make_config(cgct=True, rca_sets=1024))
    log = EventLog(capacity=64)
    machine.attach_event_log(log)
    return machine, log


class TestRecording:
    def test_external_requests_are_logged(self, logged_machine):
        machine, log = logged_machine
        machine.load(0, 0x1000, now=0)
        machine.load(0, 0x1040, now=1000)
        assert len(log) == 2
        first, second = log.tail(2)
        assert first.path == "broadcast"
        assert second.path == "direct"
        assert first.request is RequestType.READ

    def test_hits_are_not_logged(self, logged_machine):
        machine, log = logged_machine
        machine.load(0, 0x1000, now=0)
        machine.load(0, 0x1000, now=1000)  # L1 hit
        assert len(log) == 1

    def test_no_request_completions_logged(self, logged_machine):
        machine, log = logged_machine
        machine.ifetch(0, 0x1000, now=0)
        machine.store(0, 0x1000, now=1000)  # silent upgrade
        kinds = [e.path for e in log]
        assert "no_request" in kinds

    def test_detached_machine_logs_nothing(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024))
        machine.load(0, 0x1000, now=0)  # no log attached: no error either

    def test_capacity_is_bounded(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.record(i, 0, RequestType.READ, i * 64, "broadcast", 250)
        assert len(log) == 4
        assert log.recorded == 10
        assert [e.time for e in log] == [6, 7, 8, 9]


class TestQueries:
    def _fill(self, log):
        log.record(0, 0, RequestType.READ, 0x1000, "broadcast", 250)
        log.record(10, 1, RequestType.RFO, 0x1040, "direct", 200)
        log.record(20, 0, RequestType.IFETCH, 0x9000, "direct", 181)

    def test_for_processor(self):
        log = EventLog()
        self._fill(log)
        assert len(log.for_processor(0)) == 2
        assert len(log.for_processor(3)) == 0

    def test_by_path(self):
        log = EventLog()
        self._fill(log)
        assert len(log.by_path("direct")) == 2

    def test_for_region(self):
        log = EventLog()
        self._fill(log)
        region = 0x1000 >> 9
        assert len(log.for_region(region)) == 2

    def test_render(self):
        log = EventLog()
        self._fill(log)
        text = log.render()
        assert "broadcast" in text and "0x1000" in text

    def test_describe(self):
        log = EventLog()
        self._fill(log)
        assert "P0" in log.tail(1)[0].describe()


def test_capacity_validation():
    with pytest.raises(ValueError):
        EventLog(capacity=0)
