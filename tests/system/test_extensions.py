"""Section 6 extensions: prefetch filtering, DRAM-speculation filtering,
region-state prefetch — plus the self-invalidation and replacement
ablation switches."""

import pytest

from repro.coherence.requests import RequestType
from repro.rca.states import RegionState
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


class TestPrefetchRegionFilter:
    def _stream_into_dirty_region(self, machine):
        # Proc 1 owns dirty lines scattered through the region proc 0
        # will stream into, making proc 0's region externally dirty.
        machine.store(1, 0x10100, now=0)
        for i in range(4):
            machine.load(0, 0x10000 + i * 64, now=1000 + i * 500)

    def test_filter_drops_prefetches_into_dirty_regions(self):
        machine = Machine(make_config(
            cgct=True, prefetch=True, rca_sets=1024,
            prefetch_region_filter=True,
        ))
        self._stream_into_dirty_region(machine)
        assert machine.prefetches_filtered > 0

    def test_filter_off_by_default(self):
        machine = Machine(make_config(cgct=True, prefetch=True, rca_sets=1024))
        self._stream_into_dirty_region(machine)
        assert machine.prefetches_filtered == 0

    def test_filter_keeps_clean_region_prefetches(self):
        machine = Machine(make_config(
            cgct=True, prefetch=True, rca_sets=1024,
            prefetch_region_filter=True,
        ))
        for i in range(6):
            machine.load(0, 0x20000 + i * 64, now=i * 500)
        issued = sum(
            n for (req, _p), n in machine.request_paths.items()
            if req in (RequestType.PREFETCH, RequestType.PREFETCH_EX)
        )
        assert issued > 0
        assert machine.prefetches_filtered == 0

    def test_invariants_hold_with_filter(self):
        machine = Machine(make_config(
            cgct=True, prefetch=True, rca_sets=64,
            prefetch_region_filter=True,
        ))
        self._stream_into_dirty_region(machine)
        machine.check_coherence_invariants()


class TestDramSpeculationFilter:
    def _migratory_read(self, machine):
        machine.store(1, 0x30000, now=0)      # proc 1 owns dirty data
        machine.load(0, 0x30040, now=1000)    # proc 0 learns region is CD
        return machine.load(0, 0x30000, now=10_000)  # c2c from proc 1

    def test_speculation_avoided_on_externally_dirty_regions(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, dram_speculation_filter=True,
        ))
        self._migratory_read(machine)
        assert machine.dram_speculation_avoided >= 1

    def test_baseline_always_speculates(self):
        machine = Machine(make_config(cgct=False))
        self._migratory_read(machine)
        assert machine.dram_speculation_avoided == 0
        assert machine.dram_speculative_wasted >= 1  # cache supplied anyway

    def test_wrong_prediction_pays_serial_dram(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, dram_speculation_filter=True,
        ))
        machine.store(1, 0x40000, now=0)
        machine.load(0, 0x40040, now=1000)     # region CD on proc 0
        # Proc 1 silently drops nothing — but read a line proc 1 does NOT
        # cache: memory supplies, after the snoop, serially.
        latency = machine.load(0, 0x40080, now=10_000)
        assert machine.dram_speculation_late >= 1
        # 12 (L2) + snoop 160 + full DRAM 160 + transfer 20 = 352.
        assert latency == 352

    def test_correct_prediction_unchanged_latency(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, dram_speculation_filter=True,
        ))
        latency = self._migratory_read(machine)
        # c2c latency unaffected by the filter: 12 + 160 + 20 + 20 = 212.
        assert latency == 212


class TestRegionStatePrefetch:
    def test_adjacent_region_entry_allocated(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, region_state_prefetch=True,
        ))
        machine.load(0, 0x50000, now=0)
        region = machine.geometry.region_of(0x50000)
        prefetched = machine.nodes[0].region_entry(region + 1)
        assert prefetched is not None
        assert prefetched.state is RegionState.CLEAN_INVALID
        assert prefetched.line_count == 0
        assert machine.region_prefetches >= 1

    def test_prefetched_region_enables_direct_first_touch(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, region_state_prefetch=True,
        ))
        machine.load(0, 0x50000, now=0)
        machine.load(0, 0x50200, now=1000)  # first touch of next region
        assert machine.request_paths[RequestType.READ, RequestPath.DIRECT] == 1

    def test_probe_reflects_remote_copies(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, region_state_prefetch=True,
        ))
        machine.store(1, 0x60200, now=0)      # proc 1 dirties next region
        machine.load(0, 0x60000, now=1000)    # proc 0's broadcast prefetches
        region = machine.geometry.region_of(0x60200)
        entry = machine.nodes[0].region_entry(region)
        assert entry is not None
        assert entry.state is RegionState.CLEAN_DIRTY

    def test_prefetch_never_evicts_real_state(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=4, region_state_prefetch=True,
        ))
        # Fill RCA set 1 (regions 1, 5) with real regions, then broadcast
        # into region 0 — the prefetch of region 1's set must not evict.
        machine.load(0, 1 * 512, now=0)
        machine.load(0, 5 * 512, now=1000)
        resident_before = {e.region for e in machine.nodes[0].rca.entries()}
        machine.load(0, 0, now=2000)
        resident_after = {e.region for e in machine.nodes[0].rca.entries()}
        assert resident_before <= resident_after
        machine.check_coherence_invariants()

    def test_disabled_by_default(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024))
        machine.load(0, 0x50000, now=0)
        assert machine.region_prefetches == 0


class TestSelfInvalidationAblation:
    def test_without_self_invalidation_regions_stay_dirty(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, self_invalidation=False,
        ))
        machine.store(0, 0x70000, now=0)
        machine.store(1, 0x70000, now=1000)   # takes proc 0's only line
        region = machine.geometry.region_of(0x70000)
        # Proc 0's empty region entry survives and kept answering dirty.
        assert machine.nodes[0].region_entry(region) is not None
        assert machine.nodes[1].region_entry(region).state.is_externally_dirty
        # So proc 1's next touch must broadcast.
        machine.store(1, 0x70040, now=2000)
        assert machine.request_paths[RequestType.RFO, RequestPath.DIRECT] == 0

    def test_with_self_invalidation_region_is_rescued(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024))
        machine.store(0, 0x70000, now=0)
        machine.store(1, 0x70000, now=1000)
        machine.store(1, 0x70040, now=2000)
        assert machine.request_paths[RequestType.RFO, RequestPath.DIRECT] == 1


class TestReplacementAblation:
    def test_plain_lru_ignores_emptiness(self):
        from repro.rca.array import RegionCoherenceArray
        from repro.rca.states import RegionState as RS
        from repro.memory.geometry import Geometry

        geom = Geometry()
        rca = RegionCoherenceArray(geom, num_sets=4, ways=2,
                                   prefer_empty_victims=False)
        rca.insert(0, RS.CLEAN_INVALID, home_mc=0)
        rca.insert(4, RS.CLEAN_INVALID, home_mc=0)
        rca.line_allocated(next(iter(geom.lines_in_region(0))))
        # Plain LRU evicts region 0 even though region 4 is empty.
        assert rca.victim_for(8).region == 0


class TestRegionPrefetchCoherence:
    def test_two_prefetchers_cannot_both_go_exclusive(self):
        """Regression: the piggybacked region snoop must be mutating. With
        a pure probe, P0 and P1 both prefetch region R+1 as CI and later
        both take silently-modifiable copies — two owners."""
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, region_state_prefetch=True,
        ))
        # Both processors broadcast into region R, each prefetching R+1.
        machine.load(0, 0x50000, now=0)
        machine.load(1, 0x50040, now=1000)
        # Both store into region R+1; at most one may skip the broadcast.
        machine.store(0, 0x50200, now=2000)
        machine.store(1, 0x50240, now=3000)
        machine.check_coherence_invariants()
        region = machine.geometry.region_of(0x50200)
        exclusive_holders = [
            n.proc_id for n in machine.nodes
            if n.region_entry(region) is not None
            and n.region_entry(region).state.is_exclusive
            and n.region_entry(region).line_count > 0
        ]
        assert len(exclusive_holders) <= 1

    def test_prefetch_snoop_downgrades_peer_entries(self):
        machine = Machine(make_config(
            cgct=True, rca_sets=1024, region_state_prefetch=True,
        ))
        machine.load(1, 0x60200, now=0)       # P1 really owns region R+1
        machine.load(0, 0x60000, now=1000)    # P0's broadcast prefetches R+1
        region = machine.geometry.region_of(0x60200)
        entry1 = machine.nodes[1].region_entry(region)
        # P1's knowledge of others got more conservative (a reader may
        # appear), never less.
        assert entry1 is not None
        assert not entry1.state.is_exclusive
