"""Write-back routing: broadcast in the baseline, direct with CGCT."""

import pytest

from repro.system.machine import Machine, OracleCategory

from tests.conftest import make_config


def force_dirty_eviction(machine, proc=0):
    """Dirty a line, then evict it with two conflicting fills."""
    stride = machine.nodes[proc].l2.num_sets * 64
    machine.store(proc, 0x0, now=0)
    machine.load(proc, stride, now=1000)
    machine.load(proc, 2 * stride, now=2000)
    return 0x0


class TestBaseline:
    def test_writeback_is_broadcast(self):
        machine = Machine(make_config(cgct=False))
        force_dirty_eviction(machine)
        assert machine.stats.broadcasts[OracleCategory.WRITEBACK] == 1
        assert machine.stats.directs[OracleCategory.WRITEBACK] == 0

    def test_writeback_reaches_memory(self):
        machine = Machine(make_config(cgct=False))
        address = force_dirty_eviction(machine)
        home = machine.address_map.home_of(address)
        assert machine.controllers[home].writes == 1

    def test_writeback_consumes_a_bus_slot(self):
        machine = Machine(make_config(cgct=False))
        before = machine.bus.broadcasts
        force_dirty_eviction(machine)
        # The RFO, the two loads, and the write-back each took a slot.
        assert machine.bus.broadcasts == before + 4


class TestCGCT:
    def test_writeback_goes_direct_via_region_mc_id(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024))
        address = force_dirty_eviction(machine)
        assert machine.stats.directs[OracleCategory.WRITEBACK] == 1
        assert machine.stats.broadcasts[OracleCategory.WRITEBACK] == 0
        home = machine.address_map.home_of(address)
        assert machine.controllers[home].writes == 1

    def test_region_eviction_writebacks_also_direct(self):
        # Force an RCA set conflict: the victim region's dirty lines are
        # flushed using the victim's recorded memory-controller ID.
        machine = Machine(make_config(cgct=True, rca_sets=4))
        region_stride = 4 * 512  # same RCA set, different regions
        machine.store(0, 0x0, now=0)
        machine.store(0, region_stride, now=1000)
        machine.store(0, 2 * region_stride, now=2000)  # evicts region 0
        assert machine.stats.directs[OracleCategory.WRITEBACK] >= 1
        assert machine.stats.broadcasts[OracleCategory.WRITEBACK] == 0
        machine.check_coherence_invariants()

    def test_writeback_never_stalls_the_processor(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024))
        stride = machine.nodes[0].l2.num_sets * 64
        machine.store(0, 0x0, now=0)
        machine.load(0, stride, now=1000)
        stall = machine.load(0, 2 * stride, now=2000)
        # The eviction's write-back adds nothing to the miss latency.
        assert stall <= 262 + 20
