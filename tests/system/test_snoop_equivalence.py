"""Holder-bitmask snoop path ≡ peer-walk snoop path, bit for bit.

The CGCT fast path replaced the phase-1 per-peer snoop loop with an
iteration over the maintained holder bitmask — O(holders) per broadcast
instead of O(P) — with the skipped tag probes reconstructed from
per-processor broadcast totals. The original loop is kept as
``snoop="walk"`` precisely so these tests can assert the two paths are
indistinguishable: same cycles, same stats, same per-node snoop
counters, same telemetry aggregates — on hand-built traces, on
randomized traces, on every benchmark × perf-config × seed cell of the
matrix, and at 16 processors where holder sets are widest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.perfbench import PERF_CONFIGS, bench_config
from repro.interconnect.topology import Topology
from repro.system.simulator import Simulator
from repro.telemetry.registry import TelemetryRegistry
from repro.workloads.benchmarks import BENCHMARKS, build_benchmark
from repro.workloads.trace import TraceOp

from tests.conftest import loads, make_config, multitrace


def run_with(snoop, config, workload, seed=0, telemetry=False):
    registry = TelemetryRegistry(interval=5_000) if telemetry else None
    simulator = Simulator(config, seed=seed, telemetry=registry, snoop=snoop)
    result = simulator.run(workload)
    return simulator, result, registry


def fingerprint(simulator, result, registry):
    """Everything observable about one run, as a comparable value."""
    machine = simulator.machine
    fp = {
        "per_processor_cycles": result.per_processor_cycles,
        "per_processor_stalls": result.per_processor_stalls,
        "per_processor_gaps": result.per_processor_gaps,
        "stats": result.stats,
        "broadcasts": result.broadcasts,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "l2_misses": result.l2_misses,
        "demand_latency_mean": result.demand_latency_mean,
        "bus_queue_cycles": result.bus_queue_cycles,
        "rca_allocations": result.rca_allocations,
        "rca_self_invalidations": result.rca_self_invalidations,
        "request_paths": machine.request_paths,
        "path_latency": {
            key: (s.count, s.mean, s.minimum, s.maximum)
            for key, s in machine.path_latency.items()
        },
        # The sharpest probe of the deferred accounting: per-node snoop
        # counters must match the walk's live counts exactly.
        "snoop_probes": [n.l2.snoop_probes for n in machine.nodes],
        "snoop_hits": [n.l2.snoop_hits for n in machine.nodes],
    }
    if registry is not None:
        fp["telemetry"] = registry.to_dict()
    return fp


def assert_equivalent(config, workload, seed=0, telemetry=False):
    """Run both snoop paths and compare everything observable."""
    walk = fingerprint(*run_with("walk", config, workload, seed, telemetry))
    fast = fingerprint(*run_with("bitmask", config, workload, seed, telemetry))
    assert walk == fast


def contended_workload(procs=4, lines=24):
    """Every processor walks the same lines with staggered gaps, so the
    holder sets grow, shrink, and constantly change shape."""
    per_proc = []
    for proc in range(procs):
        addresses = [0x40000 + i * 64 for i in range(lines)]
        per_proc.append(loads(addresses, gap=3 + proc))
    return multitrace(per_proc)


class TestSnoopEquivalence:
    def test_contended_trace(self):
        assert_equivalent(make_config(cgct=True), contended_workload())

    def test_baseline_machine(self):
        assert_equivalent(make_config(cgct=False), contended_workload())

    def test_with_telemetry_aggregates(self):
        assert_equivalent(
            make_config(cgct=True), contended_workload(), telemetry=True
        )
        assert_equivalent(
            make_config(cgct=False), contended_workload(), telemetry=True
        )

    def test_with_timing_perturbation(self):
        # Perturbation draws from the per-run RNG; identical draws in
        # both snoop paths prove the fast path issues the same requests
        # in the same order, not just the same totals.
        config = make_config(cgct=True, perturbation=20)
        for seed in (0, 1, 2):
            assert_equivalent(config, contended_workload(), seed=seed)

    def test_stores_and_dcb_ops_churn_holder_sets(self):
        # Upgrades, DCBZ/DCBF/DCBI and eviction pressure exercise every
        # way a holder bit can be set and cleared mid-run.
        line = 0x40000
        per_proc = [
            [(TraceOp.STORE, line + i * 64, 2) for i in range(16)]
            + [(TraceOp.DCBF, line + i * 64, 1) for i in range(8)],
            [(TraceOp.LOAD, line + i * 64, 3) for i in range(16)]
            + [(TraceOp.DCBZ, line + 0x1000 + i * 64, 1) for i in range(8)],
            [(TraceOp.STORE, line + i * 64, 5) for i in range(16)]
            + [(TraceOp.DCBI, line + i * 64, 2) for i in range(4)],
            [(TraceOp.LOAD, line + 0x1000 + i * 64, 4) for i in range(16)],
        ]
        assert_equivalent(make_config(cgct=True), multitrace(per_proc))
        assert_equivalent(make_config(cgct=False), multitrace(per_proc))

    def test_filtered_machines_are_unaffected_by_the_toggle(self):
        # RegionScout/Jetty machines always run the general snoop loop:
        # the toggle must be inert there, and results identical.
        for overrides in (
            dict(cgct=False, regionscout_enabled=True),
            dict(cgct=False, jetty_enabled=True),
        ):
            config = make_config(**overrides)
            assert_equivalent(config, contended_workload())

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(
                        [TraceOp.LOAD, TraceOp.STORE, TraceOp.DCBZ]
                    ),
                    st.integers(min_value=0, max_value=0x7FFF).map(
                        lambda a: a * 64
                    ),
                    st.integers(min_value=0, max_value=12),
                ),
                min_size=1,
                max_size=30,
            ),
            min_size=4,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=7),
        cgct=st.booleans(),
    )
    def test_randomized_traces(self, data, seed, cgct):
        config = make_config(cgct=cgct, perturbation=8)
        assert_equivalent(config, multitrace(data), seed=seed)


#: The six pre-fast-path perf configs: the matrix the issue pins down.
MATRIX_CONFIGS = [
    name for name, processors, _ in PERF_CONFIGS if processors <= 16
]
#: Ops per processor, scaled down with machine size to keep the full
#: 9 workloads × 6 configs × 3 seeds matrix inside a test budget.
MATRIX_OPS = {4: 150, 8: 100, 16: 60}


class TestBenchmarkMatrix:
    """9 workloads × 6 configs × 3 seeds, both snoop paths."""

    @pytest.mark.parametrize("workload", sorted(BENCHMARKS))
    def test_workload_cells(self, workload):
        assert len(MATRIX_CONFIGS) == 6
        for config_name in MATRIX_CONFIGS:
            config = bench_config(config_name)
            procs = config.num_processors
            for seed in (0, 1, 2):
                trace = build_benchmark(
                    workload, num_processors=procs,
                    ops_per_processor=MATRIX_OPS[procs], seed=seed,
                )
                assert_equivalent(config, trace, seed=seed)


class TestSixteenProcessorHolderSets:
    """16 processors: wide holder masks, both paths, telemetry on."""

    TOPOLOGY = Topology(
        cores_per_chip=2, chips_per_switch=2, switches_per_board=2, boards=2
    )

    def workload(self):
        return build_benchmark(
            "ocean", num_processors=16, ops_per_processor=300, seed=0
        )

    def test_bitmask_equals_walk_at_16p(self):
        config = make_config(cgct=True, topology=self.TOPOLOGY)
        assert_equivalent(config, self.workload(), seed=3, telemetry=True)

    def test_warmup_reset_keeps_probe_accounting_exact(self):
        # reset_stats() mid-run (the warm-up path) re-bases the deferred
        # probe accounting; the measured portion must still match.
        config = make_config(cgct=True, topology=self.TOPOLOGY)
        results = {}
        for snoop in ("walk", "bitmask"):
            sim = Simulator(config, seed=0, snoop=snoop)
            run = sim.run(self.workload(), warmup_fraction=0.3)
            results[snoop] = (
                run.per_processor_cycles,
                run.stats,
                [n.l2.snoop_probes for n in sim.machine.nodes],
                [n.l2.snoop_hits for n in sim.machine.nodes],
            )
        assert results["walk"] == results["bitmask"]


class TestInlineRegionSnoopEquivalence:
    """Class-mask phase-2 snoops ≡ canonical per-node region snoops.

    A plain CGCT machine runs phase-2 region snoops inline over the
    per-region class masks; attaching telemetry replaces the protocols
    with recording ones, which disqualifies the inline path and routes
    every region snoop through the canonical ``node.snoop_region`` walk.
    Running the same trace both ways therefore differentially tests the
    entire class-mask machinery — mask maintenance across allocations,
    evictions, self-invalidations, line-count crossings and external
    transitions — against the reference implementation.
    """

    @staticmethod
    def _compare(config, workload, seed=0):
        plain_sim, plain_run, _ = run_with("bitmask", config, workload, seed)
        tel_sim, tel_run, tel_reg = run_with(
            "bitmask", config, workload, seed, telemetry=True
        )
        # Guard the premise: the plain machine must actually be on the
        # inline path and the instrumented one on the canonical walk —
        # otherwise this test silently compares the walk to itself.
        assert plain_sim.machine._inline_region_snoop
        assert not tel_sim.machine._inline_region_snoop
        plain_fp = fingerprint(plain_sim, plain_run, None)
        tel_fp = fingerprint(tel_sim, tel_run, tel_reg)
        tel_fp.pop("telemetry")
        assert plain_fp == tel_fp
        return plain_sim

    def test_contended_trace(self):
        self._compare(make_config(cgct=True), contended_workload())

    def test_with_timing_perturbation(self):
        config = make_config(cgct=True, perturbation=16)
        for seed in (0, 1, 2):
            self._compare(config, contended_workload(), seed=seed)

    def test_rca_pressure_exercises_eviction_and_self_invalidation(self):
        # A tiny RCA forces region evictions (fast-path bypass falls
        # back to the two-step conversation) and the line churn drives
        # empty↔non-empty crossings and self-invalidations.
        config = make_config(cgct=True, rca_sets=4, l2_bytes=16 * 1024)
        self._compare(config, contended_workload(procs=4, lines=48))

    def test_hint_visibility_variants(self):
        # The inline path computes exclusivity hints in closed form per
        # (request kind, combined response, visibility); every variant
        # must match the reference hint computation observably.
        for overrides in (
            dict(line_response_visible=False),
            dict(two_bit_response=False),
            dict(line_response_visible=False, two_bit_response=False),
            dict(owner_prediction=True),
        ):
            config = make_config(cgct=True, **overrides)
            self._compare(config, contended_workload())

    def test_benchmark_trace_at_16p(self):
        config = make_config(
            cgct=True,
            topology=TestSixteenProcessorHolderSets.TOPOLOGY,
        )
        trace = build_benchmark(
            "ocean", num_processors=16, ops_per_processor=250, seed=0
        )
        self._compare(config, trace, seed=1)

    def test_benchmark_trace_at_32p(self):
        config = make_config(
            cgct=True,
            topology=Topology(cores_per_chip=2, chips_per_switch=2,
                              switches_per_board=2, boards=4),
        )
        trace = build_benchmark(
            "barnes", num_processors=32, ops_per_processor=150, seed=0
        )
        self._compare(config, trace, seed=2)

    def test_class_masks_audit_against_arrays(self):
        # After a run the maintained per-region class masks must agree
        # exactly with a from-scratch rebuild off the RCA arrays — the
        # eager-maintenance invariant behind the inline snoop loop.
        sim = self._compare(
            make_config(cgct=True, rca_sets=8), contended_workload(lines=40)
        )
        machine = sim.machine
        expected_classes = {}
        expected_trackers = {}
        for node in machine.nodes:
            if node.rca is None:
                continue
            node_bit = 1 << node.proc_id
            for entry in node.rca.entries():
                c = (entry.state.index << 1) | (
                    1 if entry.line_count == 0 else 0
                )
                cls = expected_classes.setdefault(entry.region, {})
                cls[c] = cls.get(c, 0) | node_bit
                expected_trackers[entry.region] = (
                    expected_trackers.get(entry.region, 0) | node_bit
                )
        assert machine._region_classes == expected_classes
        assert machine._region_trackers == expected_trackers

    @settings(max_examples=12, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(
                        [TraceOp.LOAD, TraceOp.STORE, TraceOp.DCBZ,
                         TraceOp.DCBF]
                    ),
                    st.integers(min_value=0, max_value=0xFFF).map(
                        lambda a: a * 64
                    ),
                    st.integers(min_value=0, max_value=9),
                ),
                min_size=1,
                max_size=25,
            ),
            min_size=4,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_randomized_traces(self, data, seed):
        config = make_config(cgct=True, rca_sets=8, perturbation=6)
        self._compare(config, multitrace(data), seed=seed)
