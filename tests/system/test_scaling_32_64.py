"""32- and 64-processor scaling machines: determinism and bookkeeping.

The fast snoop path is what makes these machine sizes routine, so this
suite pins down exactly the properties that could silently rot at
scale: serial and parallel sweeps must agree bit for bit, interrupted
sweeps must resume to identical results, the walk and bitmask snoop
paths must still agree where holder masks are widest, and the holder /
tracker bitmasks must survive eviction, self-invalidation and DCB churn
under the deep (exhaustive) coherence audit.
"""

from functools import partial

import pytest

from repro.common.errors import WorkerCrash
from repro.harness.cache import DiskCache
from repro.harness.parallel import (
    ExperimentTask,
    ParallelRunner,
    execute_envelope,
)
from repro.harness.perfbench import PERF_CONFIGS, bench_config
from repro.harness.supervisor import SweepCheckpoint
from repro.system.simulator import Simulator
from repro.validate.sanitizer import CoherenceSanitizer
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.trace import TraceOp

from tests.conftest import make_config, multitrace


def scaling_tasks(processors, ops, seeds=(0, 1)):
    """Baseline + CGCT cells at one machine size."""
    return [
        ExperimentTask("barnes", bench_config(f"{processors}p-{mode}"),
                       ops, seed=seed)
        for mode in ("baseline", "cgct")
        for seed in seeds
    ]


def test_perf_configs_cover_32_and_64():
    names = [name for name, _, _ in PERF_CONFIGS]
    for expected in ("32p-baseline", "32p-cgct", "64p-baseline", "64p-cgct"):
        assert expected in names
    assert bench_config("32p-cgct").num_processors == 32
    assert bench_config("64p-cgct").num_processors == 64


class TestSerialParallelDeterminism:
    def test_serial_equals_parallel_at_32p(self):
        tasks = scaling_tasks(32, ops=120)
        serial = ParallelRunner(workers=0).run(tasks)
        fanned = ParallelRunner(workers=2).run(tasks)
        assert serial == fanned

    def test_serial_equals_parallel_at_64p(self):
        tasks = scaling_tasks(64, ops=80, seeds=(0,))
        serial = ParallelRunner(workers=0).run(tasks)
        fanned = ParallelRunner(workers=2).run(tasks)
        assert serial == fanned


def _crashy_execute(envelope, marker, fail_times):
    """Raise WorkerCrash for tasks 2+ until the marker counts out."""
    from pathlib import Path

    if envelope.index >= 2:
        path = Path(marker)
        seen = len(path.read_text()) if path.exists() else 0
        if seen < fail_times:
            path.write_text("x" * (seen + 1))
            raise WorkerCrash("injected transient infrastructure fault")
    return execute_envelope(envelope)


class TestCheckpointResume:
    def test_interrupted_32p_sweep_resumes_bit_identically(self, tmp_path):
        tasks = scaling_tasks(32, ops=100, seeds=(0,))
        tasks += scaling_tasks(32, ops=100, seeds=(1,))
        expected = ParallelRunner(workers=0).run(tasks)
        disk = DiskCache(tmp_path / "cache")
        checkpoint_path = tmp_path / "sweep.ckpt"

        # First attempt: tasks 2+ fail until the retry budget runs out,
        # so the sweep checkpoints with only half the grid done.
        execute = partial(_crashy_execute,
                          marker=str(tmp_path / "marker"), fail_times=4)
        first = ParallelRunner(workers=0, cache=disk, retries=1,
                               strict=False,
                               checkpoint=SweepCheckpoint(checkpoint_path),
                               execute=execute)
        partial_results = first.run(tasks)
        assert partial_results[:2] == expected[:2]
        assert partial_results[2:] == [None, None]

        # Resume: completed 32p cells replay from the checkpoint +
        # cache; the rest simulate now — and every field matches the
        # undisturbed sweep.
        second = ParallelRunner(workers=0, cache=disk,
                                checkpoint=SweepCheckpoint(checkpoint_path),
                                execute=execute)
        assert second.run(tasks) == expected


class TestSnoopPathsAtScale:
    @pytest.mark.parametrize("config_name", ["32p-baseline", "32p-cgct"])
    def test_walk_equals_bitmask_at_32p(self, config_name):
        config = bench_config(config_name)
        trace = build_benchmark(
            "ocean", num_processors=32, ops_per_processor=60, seed=0
        )
        results = {}
        for snoop in ("walk", "bitmask"):
            sim = Simulator(config, seed=0, snoop=snoop)
            run = sim.run(trace)
            results[snoop] = (
                run.per_processor_cycles, run.stats, run.broadcasts,
                run.l1_hits, run.l2_hits, run.demand_latency_mean,
                [n.l2.snoop_probes for n in sim.machine.nodes],
                [n.l2.snoop_hits for n in sim.machine.nodes],
            )
        assert results["walk"] == results["bitmask"]

    def test_repeat_runs_identical_at_64p(self):
        config = bench_config("64p-cgct")
        trace = build_benchmark(
            "barnes", num_processors=64, ops_per_processor=60, seed=0
        )
        a = Simulator(config, seed=0).run(trace)
        b = Simulator(config, seed=0).run(trace)
        assert a.per_processor_cycles == b.per_processor_cycles
        assert a.stats == b.stats
        assert a.broadcasts == b.broadcasts


class TestHolderBitmaskConsistency:
    """The fast path's central invariant: the machine's line-holder and
    region-tracker bitmasks agree with actual cache/RCA contents."""

    def churn_workload(self, procs=4):
        """Stores, DCB ops and capacity pressure on shared lines: every
        way a holder bit can be set or cleared, repeatedly."""
        base = 0x40000
        per_proc = []
        for proc in range(procs):
            records = []
            for rep in range(3):
                records += [
                    (TraceOp.STORE, base + i * 64, 2) for i in range(24)
                ]
                records += [
                    (TraceOp.LOAD, base + 0x2000 * proc + i * 64, 1)
                    for i in range(24)
                ]
                records += [
                    (TraceOp.DCBZ, base + 0x8000 + proc * 0x1000 + i * 64, 1)
                    for i in range(8)
                ]
                records += [(TraceOp.DCBF, base + i * 64, 1) for i in range(6)]
                records += [(TraceOp.DCBI, base + i * 64, 2) for i in range(4)]
            per_proc.append(records)
        return multitrace(per_proc)

    def test_deep_audit_every_step_through_churn(self):
        # Tiny caches + RCA force evictions, inclusion-driven region
        # evictions and self-invalidations; the deep sanitizer audits
        # the bitmasks against full cache state after every access.
        config = make_config(cgct=True, l2_bytes=8 * 1024, rca_sets=8)
        sanitizer = CoherenceSanitizer(mode="deep", every=1)
        sim = Simulator(config, seed=0, sanitizer=sanitizer)
        sim.run(self.churn_workload())
        sim.machine.check_coherence_invariants()

    def test_deep_audit_baseline_machine(self):
        config = make_config(cgct=False, l2_bytes=8 * 1024)
        sanitizer = CoherenceSanitizer(mode="deep", every=1)
        sim = Simulator(config, seed=0, sanitizer=sanitizer)
        sim.run(self.churn_workload())
        sim.machine.check_coherence_invariants()

    def test_deep_audit_32p_smoke(self):
        config = bench_config("32p-cgct")
        sanitizer = CoherenceSanitizer(mode="deep", every=400)
        sim = Simulator(config, seed=0, sanitizer=sanitizer)
        sim.run(build_benchmark(
            "barnes", num_processors=32, ops_per_processor=60, seed=0
        ))
        sim.machine.check_coherence_invariants()
