"""Per-path latency breakdown extraction."""

import pytest

from repro.analysis.latency import latency_breakdown
from repro.system.machine import Machine, RequestPath

from tests.conftest import make_config


@pytest.fixture
def machine():
    machine = Machine(make_config(cgct=True, rca_sets=1024))
    machine.load(0, 0x1000, now=0)        # broadcast
    machine.load(0, 0x1040, now=1000)     # direct
    machine.load(0, 0x1080, now=2000)     # direct
    return machine


def test_rows_cover_observed_paths(machine):
    breakdown = latency_breakdown(machine)
    kinds = {(row.request, row.path) for row in breakdown.rows}
    assert ("read", "broadcast") in kinds
    assert ("read", "direct") in kinds


def test_counts_and_means(machine):
    breakdown = latency_breakdown(machine)
    direct = [r for r in breakdown.rows if r.path == "direct"][0]
    assert direct.count == 2
    # 0x1000 is homed at the other chip's controller (page-interleaved):
    # direct same-switch = 20 + 160 + 20 = 200 cycles.
    assert direct.mean_cycles == pytest.approx(200.0)
    assert direct.min_cycles <= direct.mean_cycles <= direct.max_cycles


def test_rows_sorted_by_contribution(machine):
    breakdown = latency_breakdown(machine)
    totals = [row.total_cycles for row in breakdown.rows]
    assert totals == sorted(totals, reverse=True)


def test_aggregates(machine):
    breakdown = latency_breakdown(machine)
    assert breakdown.total_external_cycles() == pytest.approx(250 + 2 * 200)
    assert breakdown.mean_external_latency() == pytest.approx(
        (250 + 2 * 200) / 3)


def test_by_path_filter(machine):
    breakdown = latency_breakdown(machine)
    assert len(breakdown.by_path(RequestPath.DIRECT)) == 1
    assert breakdown.by_path(RequestPath.NO_REQUEST) == []


def test_table_rows_renderable(machine):
    from repro.harness.render import render_table

    breakdown = latency_breakdown(machine)
    text = render_table(
        ["request", "path", "n", "mean", "min", "max"],
        breakdown.as_table_rows(),
    )
    assert "read" in text and "direct" in text


def test_empty_machine():
    machine = Machine(make_config(cgct=False))
    breakdown = latency_breakdown(machine)
    assert breakdown.rows == []
    assert breakdown.mean_external_latency() == 0.0
