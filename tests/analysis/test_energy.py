"""Coherence-energy proxy accounting."""

import pytest

from repro.analysis.energy import EnergyWeights, energy_report
from repro.system.machine import Machine

from tests.conftest import make_config


def drive(machine, n=12):
    for i in range(n):
        machine.load(0, 0x10000 + i * 64, now=i * 1000)
    # One shared line for a cache-to-cache transfer.
    machine.store(1, 0x90000, now=n * 1000)
    machine.load(0, 0x90000, now=(n + 1) * 1000)


class TestEventCounting:
    def test_baseline_counts(self):
        machine = Machine(make_config(cgct=False))
        drive(machine)
        report = energy_report(machine)
        # Every external request broadcast to 3 other nodes.
        assert report.address_messages == machine.bus.broadcasts * 3
        assert report.rca_lookups == 0
        assert report.tag_lookups > 0
        assert report.data_transfers > 0

    def test_cgct_shifts_messages_to_point_to_point(self):
        base = Machine(make_config(cgct=False))
        cgct = Machine(make_config(cgct=True, rca_sets=1024))
        drive(base)
        drive(cgct)
        report_base = energy_report(base)
        report_cgct = energy_report(cgct)
        assert report_cgct.address_messages < report_base.address_messages
        assert report_cgct.tag_lookups < report_base.tag_lookups
        assert report_cgct.rca_lookups > 0

    def test_wasted_speculative_dram_counted(self):
        machine = Machine(make_config(cgct=False))
        machine.store(1, 0x90000, now=0)
        machine.load(0, 0x90000, now=1000)  # c2c; speculative DRAM wasted
        report = energy_report(machine)
        assert machine.dram_speculative_wasted >= 1
        assert report.dram_accesses >= machine.dram_speculative_wasted

    def test_savings_over(self):
        base = Machine(make_config(cgct=False))
        cgct = Machine(make_config(cgct=True, rca_sets=1024))
        drive(base)
        drive(cgct)
        saving = energy_report(cgct).savings_over(energy_report(base))
        assert -1.0 < saving < 1.0

    def test_rows_render(self):
        machine = Machine(make_config(cgct=False))
        drive(machine)
        rows = energy_report(machine).as_rows()
        assert len(rows) == 6


class TestWeights:
    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            EnergyWeights(weights={"tag_lookup": 1.0})

    def test_negative_weight_rejected(self):
        weights = dict(
            address_message=1.0, tag_lookup=-1.0, rca_lookup=0.5,
            dram_access=20.0, data_transfer=4.0,
        )
        with pytest.raises(ValueError, match="negative"):
            EnergyWeights(weights=weights)

    def test_custom_weights_change_total(self):
        machine = Machine(make_config(cgct=False))
        drive(machine)
        light = energy_report(machine)
        heavy_dram = EnergyWeights(weights={
            **EnergyWeights().weights, "dram_access": 200.0,
        })
        heavy = energy_report(machine, heavy_dram)
        assert heavy.weighted_total > light.weighted_total
