"""Standalone oracle profiles (Figure 2 analysis)."""

import pytest

from repro.analysis.oracle import oracle_profile, profile_from_result
from repro.system.machine import OracleCategory
from repro.system.simulator import run_workload

from tests.conftest import loads, make_config, multitrace, stores


def private_workload():
    return multitrace([
        loads([0x100000 * (p + 1) + i * 64 for i in range(16)], gap=2)
        for p in range(4)
    ], name="private")


def shared_workload():
    addresses = [0x500000 + i * 64 for i in range(16)]
    return multitrace([loads(addresses, gap=2) for _ in range(4)],
                      name="shared")


def test_private_workload_is_all_unnecessary():
    profile = oracle_profile(private_workload(), config=make_config(cgct=False),
                             warmup_fraction=0.0)
    assert profile.unnecessary_fraction == 1.0
    assert profile.workload == "private"


def test_shared_workload_is_mostly_necessary():
    profile = oracle_profile(shared_workload(), config=make_config(cgct=False),
                             warmup_fraction=0.0)
    # First toucher of each line is unnecessary, the other three necessary.
    assert profile.unnecessary_fraction == pytest.approx(0.25)


def test_categories_partition_the_total():
    profile = oracle_profile(private_workload(), config=make_config(cgct=False),
                             warmup_fraction=0.0)
    assert sum(profile.by_category.values()) == pytest.approx(
        profile.unnecessary_fraction)


def test_rejects_cgct_config():
    with pytest.raises(ValueError):
        oracle_profile(private_workload(), config=make_config(cgct=True))


def test_profile_from_result():
    result = run_workload(make_config(cgct=False), private_workload())
    profile = profile_from_result(result)
    assert profile.total_requests == result.stats.total_external
    assert profile.category(OracleCategory.DATA) > 0
