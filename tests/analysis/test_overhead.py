"""Table 2 storage-overhead model, row by row against the paper."""

import pytest

from repro.analysis.overhead import (
    OverheadRow,
    cache_bits_per_set,
    overhead_row,
    table2_rows,
)

#: (entries, region) → paper's (tag, count, total bits, tag %, cache %).
PAPER_TABLE2 = {
    (4096, 256): (21, 3, 76, 0.102, 0.016),
    (4096, 512): (20, 4, 76, 0.102, 0.016),
    (4096, 1024): (19, 5, 76, 0.102, 0.016),
    (8192, 256): (20, 3, 73, 0.196, 0.030),
    (8192, 512): (19, 4, 73, 0.196, 0.030),
    (8192, 1024): (18, 5, 73, 0.196, 0.030),
    (16384, 256): (19, 3, 71, 0.382, 0.059),
    (16384, 512): (18, 4, 71, 0.382, 0.059),
    (16384, 1024): (17, 5, 71, 0.382, 0.059),
}


@pytest.mark.parametrize("entries,region", sorted(PAPER_TABLE2))
def test_row_matches_paper(entries, region):
    tag, count, total, tag_pct, cache_pct = PAPER_TABLE2[(entries, region)]
    row = overhead_row(entries, region)
    assert row.address_tag_bits == tag
    assert row.line_count_bits == count
    assert row.total_bits_per_set == total
    assert row.state_bits == 3
    assert row.mem_cntrl_id_bits == 6
    assert row.lru_bits == 1
    # Percentages match to within rounding of the paper's arithmetic.
    assert row.tag_space_overhead == pytest.approx(tag_pct, abs=0.003)
    assert row.cache_space_overhead == pytest.approx(cache_pct, abs=0.001)


def test_table2_has_nine_rows_in_order():
    rows = table2_rows()
    assert len(rows) == 9
    assert [(r.entries, r.region_bytes) for r in rows] == sorted(PAPER_TABLE2)


def test_cache_set_is_23_bytes():
    # Section 3.2: "for a total of 23 bytes per set".
    assert cache_bits_per_set() in (184, 185)


def test_labels():
    assert overhead_row(16384, 512).label == "16K-Entries, 512-Byte Regions"


def test_validation():
    with pytest.raises(ValueError):
        overhead_row(1000, 512)      # not divisible into power-of-two sets
    with pytest.raises(ValueError):
        overhead_row(4096, 100)      # bad region size
    with pytest.raises(ValueError):
        overhead_row(4095, 512, ways=2)  # odd entry count


def test_half_size_rca_halves_overhead():
    full = overhead_row(16384, 512)
    half = overhead_row(8192, 512)
    ratio = half.cache_space_overhead / full.cache_space_overhead
    assert 0.45 < ratio < 0.55
