"""Aggregation metrics: category stacks, CIs over seeds."""

import pytest

from repro.analysis.metrics import (
    STACK_ORDER,
    aggregate_seeds,
    category_stack,
    runtime_reduction_interval,
)
from repro.system.machine import OracleCategory
from repro.system.simulator import run_workload

from tests.conftest import loads, make_config, multitrace


def small_run(cgct, seed=0, perturbation=0):
    workload = multitrace([
        loads([0x100000 * (p + 1) + i * 64 for i in range(24)], gap=5)
        for p in range(4)
    ])
    config = make_config(cgct=cgct, perturbation=perturbation)
    return run_workload(config, workload, seed=seed)


def test_category_stack_fractions_sum_to_total():
    result = small_run(cgct=False)
    stack = category_stack(result, of="unnecessary")
    assert stack.total == pytest.approx(result.fraction_unnecessary())
    assert set(stack.fractions) == set(STACK_ORDER)


def test_category_stack_rows_in_paper_order():
    result = small_run(cgct=False)
    rows = category_stack(result, of="unnecessary").as_rows()
    assert [name for name, _f in rows] == [c.value for c in STACK_ORDER]


def test_aggregate_seeds():
    results = [small_run(cgct=False, seed=s, perturbation=20) for s in range(3)]
    agg = aggregate_seeds(results, lambda r: float(r.cycles), "cycles")
    assert agg.workload == results[0].workload
    assert agg.interval.n == 3
    assert min(r.cycles for r in results) <= agg.mean <= max(r.cycles for r in results)


def test_aggregate_seeds_rejects_mixed_workloads():
    a = small_run(cgct=False)
    b = small_run(cgct=False)
    object.__setattr__(b, "workload", "other")
    with pytest.raises(ValueError):
        aggregate_seeds([a, b], lambda r: 1.0, "x")


def test_aggregate_seeds_rejects_empty():
    with pytest.raises(ValueError):
        aggregate_seeds([], lambda r: 1.0, "x")


def test_runtime_reduction_interval_pairs_seeds():
    bases = [small_run(cgct=False, seed=s, perturbation=20) for s in range(2)]
    cands = [small_run(cgct=True, seed=s, perturbation=20) for s in range(2)]
    ci = runtime_reduction_interval(bases, cands)
    assert ci.n == 2
    assert -1.0 < ci.mean < 1.0


def test_runtime_reduction_interval_length_mismatch():
    base = [small_run(cgct=False)]
    with pytest.raises(ValueError):
        runtime_reduction_interval(base, [])
