"""End-to-end determinism and cross-configuration trace stability."""

import numpy as np

from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.workloads.benchmarks import build_benchmark


def test_full_pipeline_bitwise_reproducible():
    """Trace generation + simulation must reproduce exactly from seeds."""
    a_trace = build_benchmark("specjbb2000", ops_per_processor=4000, seed=3)
    b_trace = build_benchmark("specjbb2000", ops_per_processor=4000, seed=3)
    a = run_workload(SystemConfig.paper_cgct(512), a_trace, seed=9,
                     warmup_fraction=0.25)
    b = run_workload(SystemConfig.paper_cgct(512), b_trace, seed=9,
                     warmup_fraction=0.25)
    assert a.per_processor_cycles == b.per_processor_cycles
    assert a.broadcasts == b.broadcasts
    assert a.stats.broadcasts == b.stats.broadcasts
    assert a.traffic_peak_per_window == b.traffic_peak_per_window


def test_trace_independent_of_region_size():
    """The workload must not depend on the simulated machine: region-size
    sweeps compare identical traces."""
    trace_a = build_benchmark("ocean", ops_per_processor=3000)
    trace_b = build_benchmark("ocean", ops_per_processor=3000)
    for ta, tb in zip(trace_a.per_processor, trace_b.per_processor):
        assert np.array_equal(ta.addresses, tb.addresses)
    # Run under two geometries; both must accept the same trace.
    run_workload(SystemConfig.paper_cgct(256), trace_a)
    run_workload(SystemConfig.paper_cgct(1024), trace_a)


def test_machine_seed_only_perturbs_timing_not_coherence_totals():
    trace = build_benchmark("barnes", ops_per_processor=4000)
    runs = [
        run_workload(SystemConfig.paper_baseline(), trace, seed=s)
        for s in (0, 1)
    ]
    # Jitter moves cycles...
    assert runs[0].cycles != runs[1].cycles
    # ...but the request population stays essentially the same: identical
    # traces produce identical demand request counts modulo interleaving
    # effects on prefetch/eviction (allow 2 %).
    a, b = (r.stats.total_external for r in runs)
    assert abs(a - b) / max(a, b) < 0.02


def test_results_stable_across_runs_of_same_simulator_config():
    trace = build_benchmark("tpc-b", ops_per_processor=3000)
    config = SystemConfig.paper_cgct(512)
    first = run_workload(config, trace, seed=4).cycles
    second = run_workload(config, trace, seed=4).cycles
    assert first == second
