"""End-to-end properties on small benchmark runs.

These are the paper's headline claims at reduced scale: CGCT avoids
broadcasts and reduces run time on sharing-light workloads, traffic
falls, and the protocol variants order as expected. Traces are kept
small so the whole module runs in well under a minute.
"""

import pytest

from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.workloads.benchmarks import build_benchmark

OPS = 8_000
WARMUP = 0.3


@pytest.fixture(scope="module")
def tpcw_runs():
    trace = build_benchmark("tpc-w", ops_per_processor=OPS)
    base = run_workload(SystemConfig.paper_baseline(), trace,
                        warmup_fraction=WARMUP)
    cgct = run_workload(SystemConfig.paper_cgct(512), trace,
                        warmup_fraction=WARMUP)
    return base, cgct


class TestHeadlineClaims:
    def test_baseline_broadcasts_everything(self, tpcw_runs):
        base, _ = tpcw_runs
        assert base.stats.total_directs == 0
        assert base.stats.total_no_requests == 0

    def test_cgct_avoids_most_broadcasts(self, tpcw_runs):
        _, cgct = tpcw_runs
        assert cgct.fraction_avoided() > 0.5

    def test_cgct_reduces_run_time(self, tpcw_runs):
        base, cgct = tpcw_runs
        assert cgct.runtime_reduction_over(base) > 0.02

    def test_cgct_cuts_traffic_by_more_than_half(self, tpcw_runs):
        base, cgct = tpcw_runs
        assert cgct.broadcasts_per_window() < base.broadcasts_per_window() / 2

    def test_avoided_within_oracle_opportunity(self, tpcw_runs):
        base, cgct = tpcw_runs
        # CGCT cannot beat the oracle (allowing a small tolerance for the
        # slightly different request streams of the two timing runs).
        assert cgct.fraction_avoided() <= base.fraction_unnecessary() + 0.05

    def test_mean_lines_per_region_in_paper_band(self, tpcw_runs):
        _, cgct = tpcw_runs
        assert 1.5 < cgct.rca_mean_line_count < 8.0

    def test_demand_latency_improves(self, tpcw_runs):
        base, cgct = tpcw_runs
        assert cgct.demand_latency_mean < base.demand_latency_mean


class TestProtocolVariants:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_benchmark("specweb99", ops_per_processor=OPS)

    def test_one_bit_variant_avoids_less(self, trace):
        import dataclasses

        full = run_workload(SystemConfig.paper_cgct(512), trace,
                            warmup_fraction=WARMUP)
        scaled_back = run_workload(
            dataclasses.replace(SystemConfig.paper_cgct(512),
                                two_bit_response=False),
            trace, warmup_fraction=WARMUP)
        # The one-bit response loses the externally-clean states (direct
        # instruction fetches), so it can only do worse or equal.
        assert scaled_back.fraction_avoided() <= full.fraction_avoided() + 0.01

    def test_half_size_rca_close_to_full(self, trace):
        full = run_workload(SystemConfig.paper_cgct(512, rca_sets=8192),
                            trace, warmup_fraction=WARMUP)
        half = run_workload(SystemConfig.paper_cgct(512, rca_sets=4096),
                            trace, warmup_fraction=WARMUP)
        # Paper: ~1 % difference. Allow slack at this tiny scale.
        assert abs(full.fraction_avoided() - half.fraction_avoided()) < 0.15


class TestWorkloadShape:
    def test_specint_has_most_opportunity(self):
        # Longer traces than the other tests: short windows are dominated
        # by compulsory (first-touch) broadcasts, which inflate TPC-H's
        # apparent opportunity.
        fractions = {}
        for name in ("specint2000rate", "tpc-h"):
            trace = build_benchmark(name, ops_per_processor=16_000)
            run = run_workload(SystemConfig.paper_baseline(), trace,
                               warmup_fraction=0.4)
            fractions[name] = run.fraction_unnecessary()
        assert fractions["specint2000rate"] > 0.9
        assert fractions["tpc-h"] < 0.55
        assert fractions["specint2000rate"] > fractions["tpc-h"]
