"""Region-size behaviour on controlled access patterns."""

import pytest

from repro.system.simulator import run_workload

from tests.conftest import loads, make_config, multitrace


def sequential_private_workload(lines=128):
    """Each processor streams through its own contiguous lines."""
    return multitrace([
        loads([0x100000 * (p + 1) + i * 64 for i in range(lines)], gap=3)
        for p in range(4)
    ], name="stream")


@pytest.mark.parametrize("region_bytes,expected_broadcasts", [
    (256, 32),   # 128 lines / 4 lines per region
    (512, 16),
    (1024, 8),
])
def test_broadcasts_scale_inversely_with_region_size(
    region_bytes, expected_broadcasts
):
    """A private sequential stream needs exactly one region-acquiring
    broadcast per region: double the region, halve the broadcasts."""
    result = run_workload(
        make_config(cgct=True, region_bytes=region_bytes, rca_sets=1024),
        sequential_private_workload(),
    )
    per_proc = expected_broadcasts
    assert result.stats.total_broadcasts == 4 * per_proc


def test_larger_regions_avoid_more_on_private_streams():
    fractions = []
    for region_bytes in (256, 512, 1024):
        result = run_workload(
            make_config(cgct=True, region_bytes=region_bytes, rca_sets=1024),
            sequential_private_workload(),
        )
        fractions.append(result.fraction_avoided())
    assert fractions[0] < fractions[1] < fractions[2]


def test_region_grain_false_sharing_costs_broadcasts():
    """Two processors touching *different lines of the same region* defeat
    region exclusivity — the coarse-grain analogue of false sharing the
    paper's Barnes results illustrate."""
    # Processors interleave within every 512B region.
    per_proc = []
    for proc in range(4):
        addresses = [0x700000 + r * 512 + proc * 64 for r in range(32)]
        per_proc.append(loads(addresses, gap=3))
    shared_regions = run_workload(
        make_config(cgct=True, region_bytes=512, rca_sets=1024),
        multitrace(per_proc),
    )
    private = run_workload(
        make_config(cgct=True, region_bytes=512, rca_sets=1024),
        sequential_private_workload(lines=32),
    )
    assert shared_regions.fraction_avoided() < private.fraction_avoided()


def test_smaller_regions_suffer_less_false_sharing():
    """With 64B 'regions' (one line), the interleaved pattern above is
    conflict-free again — region size trades reach against false sharing."""
    per_proc = []
    for proc in range(4):
        addresses = [0x700000 + r * 512 + proc * 64 for r in range(32)]
        per_proc.append(loads(addresses, gap=3))
    coarse = run_workload(
        make_config(cgct=True, region_bytes=512, rca_sets=1024),
        multitrace(per_proc),
    )
    fine = run_workload(
        make_config(cgct=True, region_bytes=64, rca_sets=1024),
        multitrace(per_proc),
    )
    assert fine.fraction_avoided() >= coarse.fraction_avoided()
