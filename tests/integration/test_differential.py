"""Differential correctness: CGCT vs the conventional baseline.

Seeded random traces (via :func:`repro.common.rng.make_rng`, so every
failure reproduces from its seed) drive a baseline machine and a CGCT
machine through the *same* global event order, asserting after **every
operation** that both machines' coherence invariants hold — and at the
end that they reached the same line-grain coherence outcome. CGCT only
changes how requests are routed (broadcast vs direct vs none); it must
never change what the caches end up holding.

This complements the Hypothesis fuzz in test_coherence_invariants.py:
that suite checks invariants after a whole run; this one checks them at
every step, so a transient violation that later self-repairs cannot
hide.
"""

import pytest

from repro.common.rng import make_rng
from repro.system.machine import Machine

from tests.conftest import make_config

#: Operation mix: loads dominate, stores create dirty regions, i-fetches
#: exercise the direct path, DCB ops exercise the oddballs.
OPS = ("load", "load", "load", "store", "store", "ifetch", "dcbz", "dcbf",
       "dcbi")

#: 4 nearby regions × 8 lines plus a distant region — small enough that
#: processors collide constantly, which is where coherence bugs live.
ADDRESSES = [0x2000 + i * 64 for i in range(32)] + \
    [0x900000 + i * 64 for i in range(4)]


def random_events(seed, length=160, processors=4):
    rng = make_rng(seed, "differential-trace")
    events = []
    for _ in range(length):
        proc = int(rng.integers(processors))
        op = OPS[int(rng.integers(len(OPS)))]
        address = ADDRESSES[int(rng.integers(len(ADDRESSES)))]
        events.append((proc, op, address))
    return events


def final_lines(machine):
    return [dict(node.l2.resident_lines()) for node in machine.nodes]


def assert_same_coherence_outcome(base, cgct):
    for lines_base, lines_cgct in zip(final_lines(base), final_lines(cgct)):
        assert set(lines_base) == set(lines_cgct)
        for line, state_base in lines_base.items():
            state_cgct = lines_cgct[line]
            # Permission-equivalent: the direct path may return E where
            # a broadcast would have found no sharers anyway, so M/E vs
            # E/M is the only tolerated difference.
            assert state_base.is_valid == state_cgct.is_valid
            assert (
                state_base.can_silently_modify
                == state_cgct.can_silently_modify
                or state_base.is_dirty == state_cgct.is_dirty
            )


@pytest.mark.parametrize("seed", range(6))
def test_invariants_hold_at_every_step_and_outcomes_match(seed):
    base = Machine(make_config(cgct=False, prefetch=False))
    cgct = Machine(make_config(cgct=True, rca_sets=8, prefetch=False))
    now = 0
    for proc, op, address in random_events(seed):
        getattr(base, op)(proc, address, now)
        getattr(cgct, op)(proc, address, now)
        base.check_coherence_invariants()
        cgct.check_coherence_invariants()
        now += 100
    assert_same_coherence_outcome(base, cgct)
    # The dirty-line census must agree exactly: whatever memory would
    # have to absorb on write-back is the same in both systems.
    dirty_base = sorted(
        line for lines in final_lines(base)
        for line, state in lines.items() if state.is_dirty
    )
    dirty_cgct = sorted(
        line for lines in final_lines(cgct)
        for line, state in lines.items() if state.is_dirty
    )
    assert dirty_base == dirty_cgct


@pytest.mark.parametrize("seed", range(3))
def test_stepwise_invariants_with_tiny_rca_forcing_evictions(seed):
    """A 2-set RCA evicts regions constantly; region-forced L2 evictions
    and write-backs must preserve step-level invariants too.

    Final L2 contents legitimately differ from the baseline here —
    inclusion evictions perturb LRU order — so this test asserts the
    invariants at every step and that the eviction path actually fired,
    not set equality.
    """
    cgct = Machine(make_config(cgct=True, rca_sets=2, prefetch=False))
    now = 0
    for proc, op, address in random_events(seed, length=120):
        getattr(cgct, op)(proc, address, now)
        cgct.check_coherence_invariants()
        now += 100
    assert sum(node.rca.evictions for node in cgct.nodes) > 0


@pytest.mark.parametrize("seed", range(3))
def test_region_state_prefetch_variant_matches_baseline(seed):
    """The §6 region-state-prefetch extension piggybacks extra region
    snoops; it must not perturb line-grain outcomes either."""
    base = Machine(make_config(cgct=False, prefetch=False))
    cgct = Machine(make_config(cgct=True, rca_sets=8, prefetch=False,
                               region_state_prefetch=True))
    now = 0
    for proc, op, address in random_events(seed, length=120):
        getattr(base, op)(proc, address, now)
        getattr(cgct, op)(proc, address, now)
        cgct.check_coherence_invariants()
        now += 100
    assert_same_coherence_outcome(base, cgct)
