"""Random-trace coherence fuzzing.

Hypothesis generates arbitrary interleavings of loads, stores, ifetches
and DCB operations from four processors over a small shared address
pool, runs them through the full machine (baseline and CGCT), and checks
the global invariants after every run:

* single-writer/multiple-reader at line grain (no M/E alongside copies),
* at most one dirty copy of any line,
* L1 ⊆ L2 inclusion,
* every cached line covered by a region entry whose count is exact.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.system.machine import Machine
from repro.workloads.trace import TraceOp

from tests.conftest import make_config

#: A small pool: 4 regions × 8 lines, plus one distant region.
ADDRESSES = [0x1000 + i * 64 for i in range(32)] + [0x800000 + i * 64 for i in range(4)]

ops = st.sampled_from([
    TraceOp.LOAD, TraceOp.LOAD, TraceOp.LOAD,   # weight loads higher
    TraceOp.STORE, TraceOp.STORE,
    TraceOp.IFETCH,
    TraceOp.DCBZ, TraceOp.DCBF, TraceOp.DCBI,
])

events = st.lists(
    st.tuples(st.integers(0, 3), ops, st.sampled_from(ADDRESSES)),
    min_size=1, max_size=120,
)

_DISPATCH = {
    TraceOp.LOAD: "load",
    TraceOp.STORE: "store",
    TraceOp.IFETCH: "ifetch",
    TraceOp.DCBZ: "dcbz",
    TraceOp.DCBF: "dcbf",
    TraceOp.DCBI: "dcbi",
}


def replay(machine, sequence):
    now = 0
    for proc, op, address in sequence:
        getattr(machine, _DISPATCH[op])(proc, address, now)
        now += 100


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_cgct_machine_invariants_hold(sequence):
    machine = Machine(make_config(cgct=True, rca_sets=8, prefetch=False))
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_baseline_machine_invariants_hold(sequence):
    machine = Machine(make_config(cgct=False, prefetch=False))
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_one_bit_protocol_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=True, rca_sets=8, prefetch=False,
                    two_bit_response=False)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_invisible_line_response_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=True, rca_sets=8, prefetch=False,
                    line_response_visible=False)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_prefetching_machine_invariants_hold(sequence):
    machine = Machine(make_config(cgct=True, rca_sets=8, prefetch=True))
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_final_line_states_match_baseline_on_same_order(sequence):
    """With an identical global event order, CGCT routing must not change
    line-grain coherence outcomes — only *how* requests were satisfied."""
    base = Machine(make_config(cgct=False, prefetch=False))
    cgct = Machine(make_config(cgct=True, rca_sets=8, prefetch=False))
    replay(base, sequence)
    replay(cgct, sequence)
    for node_b, node_c in zip(base.nodes, cgct.nodes):
        lines_b = dict(node_b.l2.resident_lines())
        lines_c = dict(node_c.l2.resident_lines())
        assert set(lines_b) == set(lines_c)
        for line, state_b in lines_b.items():
            state_c = lines_c[line]
            # Permission-equivalent: both dirty-capable or both not. The
            # direct path can return E where a broadcast would have
            # found no sharers anyway, so M/E vs E/M differences are the
            # only tolerated ones.
            assert state_b.is_valid == state_c.is_valid
            assert (
                state_b.can_silently_modify == state_c.can_silently_modify
                or state_b.is_dirty == state_c.is_dirty
            )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_regionscout_machine_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=False, prefetch=False, regionscout_enabled=True)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_extension_features_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=True, rca_sets=8, prefetch=True,
                    prefetch_region_filter=True,
                    dram_speculation_filter=True,
                    region_state_prefetch=True)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_no_self_invalidation_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=True, rca_sets=8, prefetch=False,
                    self_invalidation=False)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_owner_prediction_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=True, rca_sets=8, prefetch=False,
                    owner_prediction=True)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_owner_prediction_matches_baseline_line_states(sequence):
    """Targeted transfers must leave the same line-grain outcomes as the
    conventional path."""
    base = Machine(make_config(cgct=False, prefetch=False))
    pred = Machine(make_config(cgct=True, rca_sets=8, prefetch=False,
                               owner_prediction=True))
    replay(base, sequence)
    replay(pred, sequence)
    for node_b, node_p in zip(base.nodes, pred.nodes):
        lines_b = dict(node_b.l2.resident_lines())
        lines_p = dict(node_p.l2.resident_lines())
        assert set(lines_b) == set(lines_p)
        for line, state_b in lines_b.items():
            state_p = lines_p[line]
            assert state_b.is_valid == state_p.is_valid
            assert (
                state_b.can_silently_modify == state_p.can_silently_modify
                or state_b.is_dirty == state_p.is_dirty
            )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_jetty_machine_invariants_hold(sequence):
    machine = Machine(
        make_config(cgct=False, prefetch=False, jetty_enabled=True)
    )
    replay(machine, sequence)
    machine.check_coherence_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events)
def test_jetty_never_changes_line_states(sequence):
    """Jetty only skips provably-useless tag probes: final states must
    be identical to the unfiltered machine's."""
    plain = Machine(make_config(cgct=False, prefetch=False))
    filtered = Machine(make_config(cgct=False, prefetch=False,
                                   jetty_enabled=True))
    replay(plain, sequence)
    replay(filtered, sequence)
    for node_a, node_b in zip(plain.nodes, filtered.nodes):
        assert dict(node_a.l2.resident_lines()) == \
            dict(node_b.l2.resident_lines())
