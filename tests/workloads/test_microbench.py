"""Microbenchmarks behave as their analytical predictions say."""

import pytest

from repro.system.simulator import run_workload
from repro.workloads import microbench

from tests.conftest import make_config


def run(workload, cgct=True, **config_kw):
    return run_workload(make_config(cgct=cgct, rca_sets=1024, **config_kw),
                        workload)


class TestStreaming:
    def test_one_broadcast_per_region(self):
        workload = microbench.streaming(lines_per_processor=64)
        result = run(workload)
        # 64 lines = 8 regions of 512 B per processor.
        assert result.stats.total_broadcasts == 4 * 8
        assert result.fraction_avoided() == pytest.approx(56 / 64)

    def test_all_streaming_broadcasts_unnecessary(self):
        result = run(microbench.streaming(lines_per_processor=64), cgct=False)
        assert result.fraction_unnecessary() == 1.0


class TestPingPong:
    def test_cgct_avoids_nothing_at_steady_state(self):
        result = run(microbench.ping_pong(iterations=100))
        # Every store after the first two finds the line dirty in the
        # other cache: broadcast, necessarily.
        assert result.fraction_avoided() < 0.05

    def test_ping_pong_broadcasts_are_necessary(self):
        result = run(microbench.ping_pong(iterations=100), cgct=False)
        assert result.fraction_unnecessary() < 0.05

    def test_all_transfers_cache_to_cache(self):
        from repro.system.machine import Machine
        from repro.workloads.trace import TraceOp

        machine = Machine(make_config(cgct=False))
        machine.store(0, 0x50_0000, now=0)
        for i in range(1, 20):
            machine.store(i % 2, 0x50_0000, now=i * 10_000)
        assert machine.c2c_transfers == 19


class TestProducerConsumer:
    def test_consumers_find_producers_data(self):
        workload = microbench.producer_consumer(lines=32)
        result = run(workload, cgct=False)
        # Consumer reads hit the producer's dirty lines: necessary.
        # Producer's stores to fresh lines: unnecessary. Three consumers
        # per line; only the first gets a dirty (c2c) hit, later ones see
        # shared copies — still necessary (remote copies exist).
        assert 0.1 < result.fraction_unnecessary() < 0.5

    def test_cgct_runs_coherently(self):
        result = run(microbench.producer_consumer(lines=32))
        assert result.cycles > 0


class TestFalseRegionSharing:
    def test_block_sized_regions_avoid_nothing(self):
        workload = microbench.false_region_sharing(blocks=32)
        # 1 KB regions = one whole block: every region multi-processor.
        result = run_workload(
            make_config(cgct=True, region_bytes=1024, rca_sets=4096),
            workload)
        assert result.fraction_avoided() < 0.15

    def test_parcel_sized_regions_avoid_most(self):
        workload = microbench.false_region_sharing(blocks=32)
        # 256 B regions = one parcel: single-processor regions; of each
        # parcel's 4 lines, 3 fills go direct.
        result = run_workload(
            make_config(cgct=True, region_bytes=256, rca_sets=4096),
            workload)
        assert result.fraction_avoided() > 0.6

    def test_no_line_is_ever_shared(self):
        from repro.workloads.validation import workload_stats

        stats = workload_stats(microbench.false_region_sharing(blocks=16))
        assert stats.shared_line_fraction == 0.0


class TestUniformRandom:
    def test_deterministic(self):
        a = microbench.uniform_random(ops_per_processor=200)
        b = microbench.uniform_random(ops_per_processor=200)
        import numpy as np

        for ta, tb in zip(a.per_processor, b.per_processor):
            assert np.array_equal(ta.addresses, tb.addresses)

    def test_coherence_invariants_hold(self):
        from repro.system.machine import Machine
        from repro.system.simulator import Simulator

        sim = Simulator(make_config(cgct=True, rca_sets=64, prefetch=True))
        sim.run(microbench.uniform_random(ops_per_processor=500))
        sim.machine.check_coherence_invariants()

    def test_shared_pool_limits_avoidance(self):
        result = run(microbench.uniform_random(ops_per_processor=1500))
        # Random sharing leaves little exclusivity to exploit.
        assert result.fraction_avoided() < 0.45
