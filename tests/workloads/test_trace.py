"""Trace container: validation, slicing, concatenation."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.memory.geometry import Geometry
from repro.workloads.trace import MultiTrace, Trace, TraceOp


def make(records):
    return Trace.from_records(records)


class TestTrace:
    def test_from_records(self):
        trace = make([(TraceOp.LOAD, 0x100, 3), (TraceOp.STORE, 0x200, 0)])
        assert len(trace) == 2
        assert trace.ops[0] == int(TraceOp.LOAD)
        assert trace.addresses[1] == 0x200
        assert trace.gaps[0] == 3

    def test_empty(self):
        trace = make([])
        assert len(trace) == 0
        trace.validate(Geometry())  # must not raise

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            Trace(
                ops=np.zeros(2, dtype=np.uint8),
                addresses=np.zeros(3, dtype=np.uint64),
                gaps=np.zeros(2, dtype=np.uint32),
            )

    def test_validate_rejects_out_of_space_addresses(self):
        trace = make([(TraceOp.LOAD, 1 << 41, 0)])
        with pytest.raises(SimulationError):
            trace.validate(Geometry())

    def test_from_records_rejects_negative_addresses(self):
        # uint64 conversion used to wrap -64 to 2**64 - 64 silently;
        # construction must reject it at the source instead.
        with pytest.raises(SimulationError, match="negative address"):
            make([(TraceOp.LOAD, 0x100, 0), (TraceOp.STORE, -64, 2)])

    def test_validate_rejects_unknown_opcode(self):
        trace = Trace(
            ops=np.array([99], dtype=np.uint8),
            addresses=np.array([0], dtype=np.uint64),
            gaps=np.array([0], dtype=np.uint32),
        )
        with pytest.raises(SimulationError):
            trace.validate(Geometry())

    def test_head(self):
        trace = make([(TraceOp.LOAD, i, 0) for i in range(10)])
        assert len(trace.head(3)) == 3
        assert trace.head(100).addresses.tolist() == trace.addresses.tolist()

    def test_concatenate(self):
        a = make([(TraceOp.LOAD, 1, 0)])
        b = make([(TraceOp.STORE, 2, 1)])
        joined = Trace.concatenate([a, b])
        assert len(joined) == 2
        assert joined.addresses.tolist() == [1, 2]

    def test_concatenate_empty(self):
        assert len(Trace.concatenate([])) == 0


class TestMultiTrace:
    def test_sizes(self):
        mt = MultiTrace([make([(TraceOp.LOAD, 1, 0)]) for _ in range(4)])
        assert mt.num_processors == 4
        assert len(mt) == 4

    def test_scaled(self):
        mt = MultiTrace(
            [make([(TraceOp.LOAD, i, 0) for i in range(10)])] * 2
        )
        scaled = mt.scaled(4)
        assert all(len(t) == 4 for t in scaled.per_processor)
        assert scaled.name == mt.name


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        mt = MultiTrace(
            per_processor=[
                make([(TraceOp.LOAD, 0x1000, 3), (TraceOp.STORE, 0x2040, 0)]),
                make([(TraceOp.IFETCH, 0x3000, 7)]),
            ],
            name="roundtrip",
        )
        path = tmp_path / "trace.npz"
        mt.save(path)
        loaded = MultiTrace.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.num_processors == 2
        for original, restored in zip(mt.per_processor, loaded.per_processor):
            assert np.array_equal(original.ops, restored.ops)
            assert np.array_equal(original.addresses, restored.addresses)
            assert np.array_equal(original.gaps, restored.gaps)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.system.simulator import run_workload
        from repro.workloads.benchmarks import build_benchmark
        from tests.conftest import make_config

        mt = build_benchmark("barnes", ops_per_processor=800)
        path = tmp_path / "barnes.npz"
        mt.save(path)
        loaded = MultiTrace.load(path)
        a = run_workload(make_config(cgct=True), mt)
        b = run_workload(make_config(cgct=True), loaded)
        assert a.per_processor_cycles == b.per_processor_cycles

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, junk=np.zeros(3))
        with pytest.raises(SimulationError):
            MultiTrace.load(path)
