"""Synthetic workload generator: determinism, structure, address hygiene."""

import dataclasses

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.memory.geometry import Geometry
from repro.workloads.generator import (
    PhaseSpec,
    SyntheticWorkload,
    WorkloadProfile,
    physical_address,
)
from repro.workloads.trace import TraceOp


@pytest.fixture
def profile():
    return WorkloadProfile(
        name="test",
        description="unit-test workload",
        category="Test",
        ops_per_processor=4000,
    )


class TestPhysicalAddressTranslation:
    def test_deterministic(self):
        assert physical_address(0x12345678) == physical_address(0x12345678)

    def test_preserves_page_offset(self):
        for virtual in (0x1000, 0x1040, 0x1FFF, 0x123456):
            assert physical_address(virtual) % 4096 == virtual % 4096

    def test_same_page_stays_together(self):
        base = physical_address(0x40_0000)
        assert physical_address(0x40_0040) == base + 0x40

    def test_different_pages_scatter(self):
        pages = {physical_address(i << 12) >> 12 for i in range(1000)}
        assert len(pages) > 990  # essentially no collisions

    def test_fits_in_40_bits(self):
        for virtual in (0, 0x7F_FFFF_FFFF, 0x41_2345_6789):
            assert physical_address(virtual) < (1 << 40)

    def test_spreads_cache_sets(self):
        # Pages scatter across all 128 page-aligned set groups of an
        # 8K-set cache — the aliasing bug this function exists to fix
        # left every pool stacked on group 0.
        groups = {
            (physical_address(i << 12) >> 6) & 8191 for i in range(1000)
        }
        assert len(groups) > 100  # of the 128 possible page-start groups


class TestDeterminism:
    def test_same_seed_same_trace(self, profile):
        a = SyntheticWorkload(profile).build(seed=7)
        b = SyntheticWorkload(profile).build(seed=7)
        for ta, tb in zip(a.per_processor, b.per_processor):
            assert np.array_equal(ta.ops, tb.ops)
            assert np.array_equal(ta.addresses, tb.addresses)
            assert np.array_equal(ta.gaps, tb.gaps)

    def test_different_seeds_differ(self, profile):
        a = SyntheticWorkload(profile).build(seed=1)
        b = SyntheticWorkload(profile).build(seed=2)
        assert not np.array_equal(
            a.per_processor[0].addresses, b.per_processor[0].addresses
        )

    def test_processors_have_distinct_streams(self, profile):
        mt = SyntheticWorkload(profile).build(seed=0)
        assert not np.array_equal(
            mt.per_processor[0].addresses, mt.per_processor[1].addresses
        )

    def test_machine_sizes_have_distinct_streams(self, profile):
        # Regression: the per-processor RNG used to be scoped only by
        # (seed, profile, proc), so a 4p and an 8p build of the same
        # profile replayed identical draws for their common processors
        # even though episode choices depend on the machine size. The
        # stream must be scoped by the processor count as well. (The
        # simulator's paired perturbation stream in Machine is shared
        # across configs *on purpose* — that one must NOT be scoped.)
        t4 = SyntheticWorkload(profile, num_processors=4).build(seed=7)
        t8 = SyntheticWorkload(profile, num_processors=8).build(seed=7)
        assert not np.array_equal(
            t4.per_processor[0].addresses[:200],
            t8.per_processor[0].addresses[:200],
        )

    def test_uniform_random_scoped_by_machine_size(self):
        from repro.workloads.microbench import uniform_random

        a = uniform_random(num_processors=4, ops_per_processor=300, seed=3)
        b = uniform_random(num_processors=8, ops_per_processor=300, seed=3)
        assert not np.array_equal(
            a.per_processor[0].addresses, b.per_processor[0].addresses
        )


class TestStructure:
    def test_exact_op_count(self, profile):
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=1234)
        assert all(len(t) == 1234 for t in mt.per_processor)

    def test_validates_against_geometry(self, profile):
        mt = SyntheticWorkload(profile).build(seed=0)
        mt.validate(Geometry())  # must not raise

    def test_contains_expected_op_mix(self, profile):
        mt = SyntheticWorkload(profile).build(seed=0)
        ops = np.concatenate([t.ops for t in mt.per_processor])
        present = set(ops.tolist())
        assert int(TraceOp.LOAD) in present
        assert int(TraceOp.STORE) in present
        assert int(TraceOp.IFETCH) in present
        assert int(TraceOp.DCBZ) in present

    def test_dcbz_comes_in_page_bursts(self, profile):
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=20_000)
        trace = mt.per_processor[0]
        dcbz_addresses = trace.addresses[trace.ops == int(TraceOp.DCBZ)]
        assert len(dcbz_addresses) >= 64
        # All 64 lines of at least one page appear.
        pages = dcbz_addresses >> 12
        values, counts = np.unique(pages, return_counts=True)
        assert counts.max() == 64

    def test_gaps_follow_mean(self):
        profile = WorkloadProfile(
            name="gaps", description="", category="Test", mean_gap=10.0,
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=20_000)
        mean = float(np.mean(mt.per_processor[0].gaps))
        assert 7.0 < mean < 13.0

    def test_shared_pools_overlap_between_processors(self):
        profile = WorkloadProfile(
            name="shared", description="", category="Test",
            ro_bias=0.0, hot_fraction=0.9, hot_pool_fraction=0.1,
            phases=(PhaseSpec(fraction=1.0, p_private=0.0, p_shared_ro=1.0,
                              p_shared_rw=0.0, p_code=0.0),),
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=5_000)
        lines = [set((t.addresses >> 6).tolist()) for t in mt.per_processor]
        assert lines[0] & lines[1]

    def test_private_pools_never_overlap(self):
        profile = WorkloadProfile(
            name="private", description="", category="Test",
            stream_fraction=0.0,
            phases=(PhaseSpec(fraction=1.0, p_private=1.0, p_shared_ro=0.0,
                              p_shared_rw=0.0, p_code=0.0),),
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=5_000)
        lines = [set((t.addresses >> 6).tolist()) for t in mt.per_processor]
        assert not (lines[0] & lines[1])

    def test_private_pools_stay_disjoint_at_64_processors(self):
        # Regression: with a fixed FRESH_BASE, processor 48's private
        # pool landed exactly on processor 0's fresh pool (PRIVATE_BASE
        # + 48 * PRIVATE_STRIDE == FRESH_BASE), silently sharing pages
        # meant to be private. The fresh floor now lifts past every
        # private pool on machines larger than 48 processors.
        profile = WorkloadProfile(
            name="private64", description="", category="Test",
            stream_fraction=0.0,
            phases=(PhaseSpec(fraction=1.0, p_private=0.5, p_shared_ro=0.0,
                              p_shared_rw=0.0, p_code=0.0, p_page_zero=0.5),),
        )
        mt = SyntheticWorkload(profile, num_processors=64).build(
            seed=0, ops_per_processor=400
        )
        lines = [set((t.addresses >> 6).tolist()) for t in mt.per_processor]
        for i in range(64):
            for j in range(i + 1, 64):
                assert not (lines[i] & lines[j]), (
                    f"processors {i} and {j} share supposedly-private lines"
                )

    def test_fresh_pool_layout_unchanged_up_to_48_processors(self):
        # The 64p fix must not move any existing machine's addresses:
        # up to 48 processors the fresh floor is still FRESH_BASE.
        from repro.workloads.generator import (
            FRESH_BASE, FRESH_STRIDE, _ProcessorStream,
        )

        profile = WorkloadProfile(name="layout", description="",
                                  category="Test")
        for nprocs in (1, 4, 16, 48):
            stream = _ProcessorStream(profile, nprocs - 1, nprocs, seed=0)
            assert stream.fresh_base == FRESH_BASE + (nprocs - 1) * FRESH_STRIDE
        stream = _ProcessorStream(profile, 0, 64, seed=0)
        assert stream.fresh_base > FRESH_BASE

    def test_code_private_flag_separates_ifetch_streams(self):
        base = dict(
            description="", category="Test",
            phases=(PhaseSpec(fraction=1.0, p_private=0.0, p_shared_ro=0.0,
                              p_shared_rw=0.0, p_code=1.0),),
        )
        shared = SyntheticWorkload(
            WorkloadProfile(name="cs", **base)
        ).build(seed=0, ops_per_processor=3_000)
        private = SyntheticWorkload(
            WorkloadProfile(name="cp", code_private=True, **base)
        ).build(seed=0, ops_per_processor=3_000)
        shared_lines = [set((t.addresses >> 6).tolist())
                        for t in shared.per_processor]
        private_lines = [set((t.addresses >> 6).tolist())
                         for t in private.per_processor]
        assert shared_lines[0] & shared_lines[1]
        assert not (private_lines[0] & private_lines[1])


class TestPhases:
    def test_phase_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(
                name="bad", description="", category="Test",
                phases=(PhaseSpec(fraction=0.5, p_private=1.0, p_shared_ro=0.0,
                                  p_shared_rw=0.0, p_code=0.0),),
            )

    def test_episode_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            PhaseSpec(fraction=1.0, p_private=0.5, p_shared_ro=0.0,
                      p_shared_rw=0.0, p_code=0.0)

    def test_two_phase_workload_changes_behaviour(self):
        profile = WorkloadProfile(
            name="phased", description="", category="Test",
            phases=(
                PhaseSpec(fraction=0.5, p_private=1.0, p_shared_ro=0.0,
                          p_shared_rw=0.0, p_code=0.0),
                PhaseSpec(fraction=0.5, p_private=0.0, p_shared_ro=0.0,
                          p_shared_rw=0.0, p_code=1.0),
            ),
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=4_000)
        trace = mt.per_processor[0]
        first = trace.ops[:1800]
        second = trace.ops[2200:]
        assert int(TraceOp.IFETCH) not in set(first.tolist())
        assert set(second.tolist()) == {int(TraceOp.IFETCH)}


class TestValidation:
    def test_chunk_must_be_line_multiple(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", description="", category="Test",
                            chunk_bytes=100)

    def test_pool_smaller_than_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", description="", category="Test",
                            code_bytes=512, chunk_bytes=2048)

    def test_zero_processors_rejected(self, profile):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(profile, num_processors=0)


class TestHeapPool:
    def test_heap_parcels_never_overlap_between_processors(self):
        profile = WorkloadProfile(
            name="heap-only", description="", category="Test",
            phases=(PhaseSpec(fraction=1.0, p_private=0.0, p_shared_ro=0.0,
                              p_shared_rw=0.0, p_code=0.0, p_heap=1.0),),
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=4000)
        lines = [set((t.addresses >> 6).tolist()) for t in mt.per_processor]
        for i in range(len(lines)):
            for j in range(i + 1, len(lines)):
                assert not (lines[i] & lines[j])

    def test_heap_parcels_interleave_within_blocks(self):
        """Adjacent 512B parcels belong to different processors, so any
        1KB region is touched by two of them."""
        profile = WorkloadProfile(
            name="heap-only2", description="", category="Test",
            heap_bytes=1 << 20,
            phases=(PhaseSpec(fraction=1.0, p_private=0.0, p_shared_ro=0.0,
                              p_shared_rw=0.0, p_code=0.0, p_heap=1.0),),
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=8000)
        # Group touched 512B parcels by 1KB block; blocks touched by two
        # processors must exist (parcels are round-robin).
        owners_per_kb = {}
        for proc, trace in enumerate(mt.per_processor):
            for address in trace.addresses.tolist():
                owners_per_kb.setdefault(address >> 10, set()).add(proc)
        assert any(len(owners) > 1 for owners in owners_per_kb.values())

    def test_rw_chunk_granularity(self):
        profile = WorkloadProfile(
            name="rw-gran", description="", category="Test",
            rw_chunk_bytes=256, shared_rw_bytes=64 << 10,
            phases=(PhaseSpec(fraction=1.0, p_private=0.0, p_shared_ro=0.0,
                              p_shared_rw=1.0, p_code=0.0),),
        )
        mt = SyntheticWorkload(profile).build(seed=0, ops_per_processor=2000)
        mt.validate(Geometry())

    def test_bad_heap_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", description="", category="Test",
                            heap_chunk_bytes=100)

    def test_bad_rw_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", description="", category="Test",
                            rw_chunk_bytes=0)
