"""The Table 4 benchmark registry."""

import pytest

from repro.workloads.benchmarks import (
    BENCHMARKS,
    benchmark_names,
    build_benchmark,
    get_profile,
)


def test_nine_benchmarks_in_table4_order():
    assert benchmark_names() == [
        "ocean", "raytrace", "barnes", "specint2000rate", "specweb99",
        "specjbb2000", "tpc-w", "tpc-b", "tpc-h",
    ]


def test_categories_match_table4():
    categories = {name: p.category for name, p in BENCHMARKS.items()}
    assert categories["ocean"] == "Scientific"
    assert categories["specint2000rate"] == "Multiprogramming"
    assert categories["specweb99"] == "Web"
    assert categories["tpc-b"] == "OLTP"
    assert categories["tpc-h"] == "Decision Support"


def test_get_profile_unknown_name():
    with pytest.raises(KeyError, match="valid names"):
        get_profile("linpack")


def test_specint_is_multiprogrammed():
    profile = get_profile("specint2000rate")
    assert profile.code_private
    phase = profile.phases[0]
    # Essentially no sharing.
    assert phase.p_shared_ro + phase.p_shared_rw < 0.1


def test_tpch_has_two_phases_with_merge_heavier_sharing():
    profile = get_profile("tpc-h")
    assert len(profile.phases) == 2
    scan, merge = profile.phases
    assert merge.p_shared_rw > scan.p_shared_rw


def test_barnes_is_sharing_dominated():
    phase = get_profile("barnes").phases[0]
    assert phase.p_shared_rw >= 0.5
    assert phase.p_page_zero == 0.0


def test_tpcw_is_most_latency_bound():
    gaps = {name: p.mean_gap for name, p in BENCHMARKS.items()}
    assert gaps["tpc-w"] == min(gaps.values())


def test_build_benchmark_produces_four_traces():
    mt = build_benchmark("barnes", ops_per_processor=500)
    assert mt.num_processors == 4
    assert all(len(t) == 500 for t in mt.per_processor)
    assert mt.name == "barnes"


def test_build_benchmark_custom_processor_count():
    mt = build_benchmark("ocean", num_processors=8, ops_per_processor=200)
    assert mt.num_processors == 8


def test_default_lengths_are_reasonable():
    for profile in BENCHMARKS.values():
        assert profile.ops_per_processor >= 50_000
