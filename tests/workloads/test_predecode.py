"""Vectorized pre-decode ≡ the scalar reference loop, bit for bit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.memory.geometry import Geometry
from repro.workloads.predecode import predecode, predecode_scalar
from repro.workloads.trace import Trace, TraceOp


def make_trace(records):
    return Trace.from_records(records)


def assert_same(vector, scalar):
    assert np.array_equal(vector.lines, scalar.lines)
    assert np.array_equal(vector.regions, scalar.regions)
    assert np.array_equal(vector.issue_offsets, scalar.issue_offsets)
    if scalar.sets is None:
        assert vector.sets is None
    else:
        assert np.array_equal(vector.sets, scalar.sets)


geometries = st.builds(
    Geometry,
    line_bytes=st.sampled_from([32, 64, 128]),
    region_bytes=st.sampled_from([256, 512, 1024, 2048]),
)

records = st.lists(
    st.tuples(
        st.sampled_from([TraceOp.LOAD, TraceOp.STORE, TraceOp.IFETCH,
                         TraceOp.DCBZ]),
        st.integers(min_value=0, max_value=(1 << 40) - 1),
        st.integers(min_value=0, max_value=5000),
    ),
    max_size=200,
)


class TestPreDecode:
    @settings(max_examples=60, deadline=None)
    @given(records=records, geometry=geometries,
           num_sets=st.sampled_from([0, 1, 64, 4096]))
    def test_matches_scalar_reference(self, records, geometry, num_sets):
        trace = make_trace(records)
        assert_same(
            predecode(trace, geometry, num_sets),
            predecode_scalar(trace, geometry, num_sets),
        )

    def test_empty_trace(self):
        trace = make_trace([])
        decoded = predecode(trace, Geometry(), num_sets=64)
        scalar = predecode_scalar(trace, Geometry(), num_sets=64)
        assert len(decoded) == len(scalar) == 0
        assert_same(decoded, scalar)

    def test_single_record(self):
        trace = make_trace([(TraceOp.STORE, 0x1234, 7)])
        geometry = Geometry()
        decoded = predecode(trace, geometry, num_sets=64)
        assert decoded.lines[0] == 0x1234 >> geometry.line_offset_bits
        assert decoded.regions[0] == 0x1234 >> geometry.region_offset_bits
        assert decoded.sets[0] == decoded.lines[0] & 63
        assert decoded.issue_offsets[0] == 7
        assert_same(decoded, predecode_scalar(trace, geometry, num_sets=64))

    def test_issue_offsets_are_inclusive_prefix_sums(self):
        trace = make_trace([
            (TraceOp.LOAD, 0x0, 3),
            (TraceOp.LOAD, 0x40, 0),
            (TraceOp.LOAD, 0x80, 10),
        ])
        decoded = predecode(trace, Geometry())
        assert decoded.issue_offsets.tolist() == [3, 3, 13]

    def test_sets_skipped_when_not_requested(self):
        trace = make_trace([(TraceOp.LOAD, 0x100, 0)])
        assert predecode(trace, Geometry()).sets is None
        assert predecode_scalar(trace, Geometry()).sets is None

    @pytest.mark.parametrize("bad", [3, 12, 100])
    def test_non_power_of_two_sets_rejected(self, bad):
        trace = make_trace([(TraceOp.LOAD, 0x100, 0)])
        with pytest.raises(ConfigurationError):
            predecode(trace, Geometry(), num_sets=bad)
        with pytest.raises(ConfigurationError):
            predecode_scalar(trace, Geometry(), num_sets=bad)
