"""Materialized workload cache: keying, round-trips, activation."""

import json

import numpy as np
import pytest

from repro.workloads.benchmarks import build_benchmark, get_profile
from repro.workloads.generator import profile_digest
from repro.workloads.store import (
    WorkloadStore,
    active_store,
    generator_version,
    set_workload_store,
    workload_key,
)
from repro.workloads.trace import Trace, TraceOp, MultiTrace

from repro.system.simulator import run_workload
from tests.conftest import make_config


@pytest.fixture(autouse=True)
def isolated_store_state():
    """Keep the module-level active store out of every other test."""
    set_workload_store(None)
    yield
    set_workload_store(None)


def sample_workload(procs=2, ops=16):
    traces = []
    for proc in range(procs):
        records = [
            (TraceOp.LOAD if i % 3 else TraceOp.STORE,
             0x1000 * (proc + 1) + i * 64, i % 5)
            for i in range(ops)
        ]
        traces.append(Trace.from_records(records, name=f"p{proc}"))
    return MultiTrace(per_processor=traces, name="sample")


def key_of(name="barnes", procs=2, ops=16, seed=0, version="v-test"):
    return workload_key(name, procs, ops, seed,
                        profile_digest(get_profile(name)), version=version)


class TestWorkloadKey:
    def test_varies_with_every_input(self):
        base = key_of()
        assert key_of(procs=4) != base
        assert key_of(ops=32) != base
        assert key_of(seed=1) != base
        assert key_of(name="tpc-w") != base
        assert key_of(version="v-other") != base
        assert key_of() == base  # and is deterministic

    def test_defaults_to_generator_version(self):
        explicit = key_of(version=generator_version())
        assert workload_key(
            "barnes", 2, 16, 0, profile_digest(get_profile("barnes"))
        ) == explicit


class TestWorkloadStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        store = WorkloadStore(tmp_path)
        workload = sample_workload()
        key = key_of()
        assert store.load(key) is None  # miss first
        store.store(key, workload)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.name == workload.name
        assert loaded.num_processors == workload.num_processors
        for orig, back in zip(workload.per_processor, loaded.per_processor):
            assert back.name == orig.name
            for field in ("ops", "addresses", "gaps"):
                a, b = getattr(orig, field), getattr(back, field)
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)
        assert store.stats() == {"hits": 1, "misses": 1}
        assert len(store) == 1

    def test_cached_workload_simulates_identically(self, tmp_path):
        store = WorkloadStore(tmp_path)
        workload = build_benchmark("barnes", num_processors=4,
                                   ops_per_processor=120, seed=0)
        key = key_of(procs=4, ops=120)
        store.store(key, workload)
        cached = store.load(key)
        config = make_config(cgct=True)
        fresh = run_workload(config, workload, seed=0)
        replay = run_workload(config, cached, seed=0)
        assert replay.per_processor_cycles == fresh.per_processor_cycles
        assert replay.stats == fresh.stats
        assert replay.broadcasts == fresh.broadcasts
        assert replay.demand_latency_mean == fresh.demand_latency_mean

    def test_store_is_noop_when_entry_exists(self, tmp_path):
        store = WorkloadStore(tmp_path)
        key = key_of()
        store.store(key, sample_workload())
        meta = store._entry_dir(key) / "meta.json"
        before = meta.stat().st_mtime_ns
        store.store(key, sample_workload())
        assert meta.stat().st_mtime_ns == before

    def test_corrupt_entry_is_a_miss_and_is_dropped(self, tmp_path):
        store = WorkloadStore(tmp_path)
        key = key_of()
        store.store(key, sample_workload())
        (store._entry_dir(key) / "meta.json").write_text("{truncated")
        assert store.load(key) is None
        assert not store._entry_dir(key).exists()
        assert store.misses == 1

    def test_missing_array_is_a_miss(self, tmp_path):
        store = WorkloadStore(tmp_path)
        key = key_of()
        store.store(key, sample_workload())
        (store._entry_dir(key) / "addresses_1.npy").unlink()
        assert store.load(key) is None

    def test_disabled_store_is_inert(self, tmp_path):
        store = WorkloadStore(tmp_path, enabled=False)
        key = key_of()
        store.store(key, sample_workload())
        assert store.load(key) is None
        assert not store.contains(key)
        assert len(store) == 0

    def test_invalidate_and_clear(self, tmp_path):
        store = WorkloadStore(tmp_path)
        store.store(key_of(seed=0), sample_workload())
        store.store(key_of(seed=1), sample_workload())
        assert len(store) == 2
        assert store.invalidate(key_of(seed=0)) is True
        assert store.invalidate(key_of(seed=0)) is False
        assert store.clear() == 1
        assert len(store) == 0

    def test_metadata_sidecar_records_inputs(self, tmp_path):
        store = WorkloadStore(tmp_path)
        key = key_of()
        store.store(key, sample_workload(), metadata={"benchmark": "barnes"})
        meta = json.loads(
            (store._entry_dir(key) / "meta.json").read_text())
        assert meta["inputs"] == {"benchmark": "barnes"}


class TestActivation:
    def test_build_benchmark_miss_then_hit(self, tmp_path):
        store = WorkloadStore(tmp_path)
        set_workload_store(store)
        first = build_benchmark("barnes", num_processors=2,
                                ops_per_processor=50, seed=0)
        assert store.stats() == {"hits": 0, "misses": 1}
        second = build_benchmark("barnes", num_processors=2,
                                 ops_per_processor=50, seed=0)
        assert store.stats() == {"hits": 1, "misses": 1}
        for a, b in zip(first.per_processor, second.per_processor):
            assert np.array_equal(a.ops, b.ops)
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.gaps, b.gaps)

    def test_env_variable_activates_lazily(self, tmp_path, monkeypatch):
        import repro.workloads.store as store_module

        monkeypatch.setenv(store_module.STORE_ENV, str(tmp_path))
        monkeypatch.setattr(store_module, "_ACTIVE", None)
        monkeypatch.setattr(store_module, "_RESOLVED", False)
        resolved = store_module.active_store()
        assert resolved is not None
        assert resolved.cache_dir == tmp_path

    def test_explicit_none_beats_env(self, tmp_path, monkeypatch):
        import repro.workloads.store as store_module

        monkeypatch.setenv(store_module.STORE_ENV, str(tmp_path))
        set_workload_store(None)
        assert active_store() is None
