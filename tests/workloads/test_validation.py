"""Trace statistics and profile validation."""

import pytest

from repro.workloads.benchmarks import build_benchmark
from repro.workloads.trace import TraceOp
from repro.workloads.validation import trace_stats, workload_stats

from tests.conftest import loads, multitrace, stores, trace_of


class TestTraceStats:
    def test_empty_trace(self):
        stats = trace_stats(trace_of([]))
        assert stats.operations == 0
        assert stats.footprint_bytes == 0

    def test_op_mix(self):
        trace = trace_of(
            [(TraceOp.LOAD, 0, 0)] * 3 + [(TraceOp.STORE, 64, 0)]
        )
        stats = trace_stats(trace)
        assert stats.op_mix[TraceOp.LOAD] == pytest.approx(0.75)
        assert stats.op_mix[TraceOp.STORE] == pytest.approx(0.25)
        assert stats.op_mix[TraceOp.IFETCH] == 0.0

    def test_footprint_and_reuse(self):
        trace = trace_of([(TraceOp.LOAD, 0, 0), (TraceOp.LOAD, 0, 0),
                          (TraceOp.LOAD, 64, 0)])
        stats = trace_stats(trace)
        assert stats.lines_touched == 2
        assert stats.footprint_bytes == 128
        assert stats.line_reuse == pytest.approx(1.5)
        assert stats.pages_touched == 1

    def test_mean_gap(self):
        trace = trace_of([(TraceOp.LOAD, 0, 10), (TraceOp.LOAD, 64, 20)])
        assert trace_stats(trace).mean_gap == pytest.approx(15.0)


class TestWorkloadStats:
    def test_disjoint_workload_has_no_sharing(self):
        workload = multitrace([
            loads([0x1000 * (p + 1) * 16 + i * 64 for i in range(4)])
            for p in range(4)
        ])
        stats = workload_stats(workload)
        assert stats.shared_line_fraction == 0.0
        assert stats.communication_line_fraction == 0.0

    def test_fully_shared_workload(self):
        addresses = [0x5000 + i * 64 for i in range(4)]
        workload = multitrace([loads(addresses) for _ in range(4)])
        stats = workload_stats(workload)
        assert stats.shared_line_fraction == 1.0
        assert stats.communication_line_fraction == 0.0  # nobody writes

    def test_producer_consumer_counts_communication(self):
        addresses = [0x5000 + i * 64 for i in range(4)]
        workload = multitrace([
            stores(addresses),   # proc 0 produces
            loads(addresses),    # proc 1 consumes
            loads([0x90000]),    # bystanders
            loads([0xA0000]),
        ])
        stats = workload_stats(workload)
        assert stats.communication_line_fraction == pytest.approx(4 / 6)

    def test_mean_op_mix_averages_processors(self):
        workload = multitrace([
            loads([0x1000]),
            stores([0x2000]),
        ][:2])
        stats = workload_stats(workload)
        assert stats.mean_op_mix[TraceOp.LOAD] == pytest.approx(0.5)
        assert stats.mean_op_mix[TraceOp.STORE] == pytest.approx(0.5)


class TestBenchmarkProfileSanity:
    """The Table 4 profiles have the sharing structure they claim."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {
            name: workload_stats(build_benchmark(name, ops_per_processor=6000))
            for name in ("specint2000rate", "barnes", "tpc-h", "tpc-w")
        }

    def test_specint_shares_almost_nothing(self, stats):
        assert stats["specint2000rate"].shared_line_fraction < 0.1

    def test_barnes_and_tpch_share_heavily(self, stats):
        assert stats["barnes"].shared_line_fraction > 0.2
        assert stats["tpc-h"].shared_line_fraction > 0.2

    def test_sharing_order_matches_figure2(self, stats):
        assert (
            stats["specint2000rate"].communication_line_fraction
            < stats["tpc-w"].communication_line_fraction
            < stats["barnes"].communication_line_fraction
        )

    def test_every_benchmark_emits_ifetches(self, stats):
        for name, s in stats.items():
            assert s.mean_op_mix[TraceOp.IFETCH] > 0.05, name
