"""End-to-end determinism of trace-driven workloads.

``trace:<path>`` names must behave exactly like generated benchmark
names everywhere in the harness: bit-identical sweep records whether
cells run serially, across worker processes, or with the materialized
workload cache active, and result-cache keys that track the *content*
of the trace file, not just its path.
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.cache import cache_key
from repro.harness.runcache import RunCache
from repro.harness.sweep import ConfigSweep
from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.traces.reader import load_workload, save_workload
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.store import WorkloadStore

FIXTURES = Path(__file__).parent / "fixtures"
MIDSIZE = FIXTURES / "midsize.bin.gz"


def _sweep():
    return ConfigSweep(
        base=SystemConfig.paper_cgct(512),
        axes={"geometry.region_bytes": [256, 512]},
    )


def test_sweep_records_identical_serial_vs_parallel():
    name = f"trace:{MIDSIZE}"
    serial = _sweep().run(
        [name], ops_per_processor=2_000, warmup_fraction=0.0,
        workers=0, cache=RunCache())
    parallel = _sweep().run(
        [name], ops_per_processor=2_000, warmup_fraction=0.0,
        workers=2, cache=RunCache())
    assert serial == parallel
    assert len(serial) == 2
    assert all(record["workload"] == name for record in serial)


def test_sweep_records_identical_with_workload_cache(tmp_path):
    name = f"trace:{MIDSIZE}"
    plain = _sweep().run(
        [name], ops_per_processor=2_000, warmup_fraction=0.0,
        cache=RunCache())
    cached = _sweep().run(
        [name], ops_per_processor=2_000, warmup_fraction=0.0,
        cache=RunCache(),
        workload_cache=WorkloadStore(tmp_path / "workloads"))
    assert plain == cached


def test_repeated_simulation_of_a_loaded_trace_is_bit_identical():
    config = SystemConfig.paper_cgct(512)
    workload = build_benchmark(f"trace:{MIDSIZE}", num_processors=4,
                               ops_per_processor=2_000)
    a = run_workload(config, workload, seed=0)
    b = run_workload(config, workload, seed=0)
    assert a.cycles == b.cycles
    assert a.stats == b.stats
    assert a.fraction_avoided() == b.fraction_avoided()


def test_cache_key_tracks_trace_file_content(tmp_path):
    """Editing the trace file must invalidate cached results even
    though the workload *name* (the path) is unchanged."""
    config = SystemConfig.paper_baseline()
    path = tmp_path / "t.bin"
    workload = load_workload(MIDSIZE, ops_per_processor=100)
    save_workload(workload, path, "binary")
    name = f"trace:{path}"

    key_one = cache_key(config, name, 100, version="pinned")
    key_again = cache_key(config, name, 100, version="pinned")
    assert key_one == key_again

    # Same path, different content -> different key.
    save_workload(workload.scaled(50), path, "binary")
    key_edited = cache_key(config, name, 100, version="pinned")
    assert key_edited != key_one

    # Non-trace names are untouched by the digest fold-in.
    assert cache_key(config, "barnes", 100, version="pinned") == \
        cache_key(config, "barnes", 100, version="pinned")


def test_trace_names_pickle_to_worker_processes():
    """The parallel path ships only the name; workers must be able to
    rebuild the workload from it (absolute path, content on disk)."""
    import pickle

    from repro.harness.parallel import ExperimentTask

    task = ExperimentTask(
        config=SystemConfig.paper_baseline(),
        benchmark=f"trace:{MIDSIZE}",
        ops_per_processor=1_000,
        seed=0,
        warmup_fraction=0.0,
    )
    clone = pickle.loads(pickle.dumps(task))
    workload = build_benchmark(
        clone.benchmark,
        num_processors=clone.config.num_processors,
        ops_per_processor=clone.ops_per_processor,
    )
    assert workload.num_processors == 4
    assert len(workload.per_processor[0]) == 1_000
