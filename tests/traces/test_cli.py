"""End-to-end tests for the ``traces`` CLI subcommand."""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.__main__ import main as harness_main
from repro.harness.runlog import read_runlog
from repro.traces.cli import traces_command
from repro.traces.sample import load_report

FIXTURES = Path(__file__).parent / "fixtures"


def test_convert_profile_sample_run_pipeline(tmp_path, capsys):
    """The documented four-step pipeline, through the real dispatcher."""
    trace = tmp_path / "t.csv.gz"
    packed = tmp_path / "t.bin"
    sampled = tmp_path / "s.bin"
    report = tmp_path / "report.json"
    profile = tmp_path / "profile.json"
    runlog = tmp_path / "runs.jsonl"

    assert harness_main([
        "traces", "convert", "bench:barnes", str(trace),
        "--processors", "4", "--ops", "8000", "--trace-seed", "7",
        "--runlog", str(runlog),
    ]) == 0
    assert harness_main([
        "traces", "convert", str(trace), str(packed),
        "--runlog", str(runlog),
    ]) == 0
    assert harness_main([
        "traces", "profile", str(packed), "--json", str(profile),
        "--runlog", str(runlog),
    ]) == 0
    assert harness_main([
        "traces", "sample", str(packed), str(sampled),
        "--rate", "4", "--report", str(report), "--enforce",
        "--runlog", str(runlog),
    ]) == 0
    assert harness_main([
        "traces", "run", str(sampled), "--config", "4p-cgct",
        "--runlog", str(runlog),
    ]) == 0

    data = json.loads(profile.read_text())
    assert data["schema"] == "cgct-trace-profile/v1"
    assert data["accesses"] == 32_000
    assert load_report(report)["within_bounds"]

    events = [r["event"] for r in read_runlog(runlog)]
    assert events == ["traces-convert", "traces-convert",
                      "traces-profile", "traces-sample", "traces-run"]
    out = capsys.readouterr().out
    assert "within bounds" in out
    assert "4p-cgct" in out


def test_profile_accepts_fixture_csv(tmp_path, capsys):
    assert traces_command([
        "profile", str(FIXTURES / "mixed.csv"),
    ]) == 0
    out = capsys.readouterr().out
    assert "8 accesses" in out
    assert "oracle figure 2" in out


def test_sample_enforce_fails_on_violated_bounds(tmp_path, capsys):
    """An impossible bound must flip the exit code under --enforce."""
    code = traces_command([
        "sample", str(FIXTURES / "midsize.bin.gz"),
        str(tmp_path / "s.bin"), "--rate", "4",
        "--bound", "mean_reuse_distance=0.0000001", "--enforce",
    ])
    assert code == 1
    assert "OUTSIDE bounds" in capsys.readouterr().out


def test_cli_reports_workload_errors_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.csv"
    bad.write_text("proc,op,address,gap\n0,FNORD,0,0\n")
    assert traces_command(["profile", str(bad)]) == 1
    assert "unknown op" in capsys.readouterr().err


def test_unknown_subcommand_and_help(capsys):
    assert traces_command(["frobnicate"]) == 2
    assert "unknown traces subcommand" in capsys.readouterr().err
    assert traces_command([]) == 0
    assert "convert" in capsys.readouterr().out


def test_run_sweep_goes_through_the_harness(tmp_path, capsys):
    trace = tmp_path / "t.bin"
    assert traces_command([
        "convert", "bench:ocean", str(trace),
        "--processors", "4", "--ops", "500",
    ]) == 0
    assert traces_command([
        "run", str(trace), "--sweep", "--config", "4p-cgct",
    ]) == 0
    out = capsys.readouterr().out
    assert "3 grid points" in out
    assert "region   256 B" in out
