"""Property tests: trace file formats are lossless, chunk-invariant,
and reject malformed input with typed errors.

Hypothesis drives random event streams through every persistence format
(CSV, packed binary, npz — plain and gzipped) and asserts bit-identity
on the way back; a battery of hand-broken files pins the validation
error for every way a trace can be malformed.
"""

from __future__ import annotations

import gzip
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import WorkloadError
from repro.traces import reader
from repro.traces.reader import (
    BINARY_MAGIC,
    EventChunk,
    detect_format,
    events_to_workload,
    load_workload,
    read_events,
    save_workload,
    workload_to_events,
    write_binary,
    write_csv,
)
from repro.workloads.trace import TraceOp

NPROCS = 4

events_strategy = st.lists(
    st.tuples(
        st.integers(0, NPROCS - 1),                 # proc
        st.sampled_from([int(op) for op in TraceOp]),
        st.integers(0, (1 << 64) - 1),              # address
        st.integers(0, (1 << 32) - 1),              # gap
    ),
    max_size=120,
)


def chunk_of(records) -> EventChunk:
    procs, ops, addresses, gaps = zip(*records) if records \
        else ((), (), (), ())
    return EventChunk(
        procs=np.array(procs, dtype=np.int64),
        ops=np.array(ops, dtype=np.uint8),
        addresses=np.array(addresses, dtype=np.uint64),
        gaps=np.array(gaps, dtype=np.uint32),
    )


def assert_same_workload(a, b) -> None:
    assert a.num_processors == b.num_processors
    for left, right in zip(a.per_processor, b.per_processor):
        assert np.array_equal(left.ops, right.ops)
        assert np.array_equal(left.addresses, right.addresses)
        assert np.array_equal(left.gaps, right.gaps)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(records=events_strategy,
       format=st.sampled_from(["csv", "binary", "npz"]),
       compress=st.booleans())
def test_save_load_round_trip_is_bit_identical(
        tmp_path, records, format, compress):
    workload = events_to_workload(
        [chunk_of(records)], num_processors=NPROCS)
    suffix = {"csv": ".csv", "binary": ".bin", "npz": ".npz"}[format]
    if compress and format != "npz":
        suffix += ".gz"
    path = tmp_path / f"trace{suffix}"
    written = save_workload(workload, path, format)
    assert written == len(workload)
    assert_same_workload(load_workload(path), workload)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(records=events_strategy)
def test_csv_binary_memory_round_trip_chain(tmp_path, records):
    """memory -> csv -> binary -> memory preserves every array bit."""
    workload = events_to_workload(
        [chunk_of(records)], num_processors=NPROCS)
    csv_path = tmp_path / "t.csv"
    bin_path = tmp_path / "t.bin"
    save_workload(workload, csv_path, "csv")
    info = detect_format(csv_path)
    assert info.format == "csv" and info.num_processors == NPROCS
    write_binary(bin_path, read_events(csv_path), NPROCS)
    assert_same_workload(load_workload(bin_path), workload)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(records=events_strategy,
       chunk_records=st.sampled_from([1, 3, 7, 65_536]))
def test_reader_chunk_size_is_invisible(tmp_path, records, chunk_records):
    """Concatenating chunks is identical for every chunk size."""
    workload = events_to_workload(
        [chunk_of(records)], num_processors=NPROCS)
    for format in ("csv", "binary"):
        path = tmp_path / f"t.{format}"
        save_workload(workload, path, format)
        small = list(read_events(path, chunk_records=chunk_records))
        big = list(read_events(path, chunk_records=1 << 20))
        for field in ("procs", "ops", "addresses", "gaps"):
            left = np.concatenate(
                [getattr(c, field) for c in small]) if small \
                else np.array([])
            right = np.concatenate(
                [getattr(c, field) for c in big]) if big \
                else np.array([])
            assert np.array_equal(left, right)


@settings(max_examples=30, deadline=None)
@given(records=events_strategy,
       chunk_records=st.sampled_from([1, 5, 64]))
def test_workload_to_events_chunking_round_trips(records, chunk_records):
    workload = events_to_workload(
        [chunk_of(records)], num_processors=NPROCS)
    back = events_to_workload(
        workload_to_events(workload, chunk_records=chunk_records),
        num_processors=NPROCS)
    assert_same_workload(back, workload)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(records=events_strategy)
def test_gzip_and_plain_files_read_identically(tmp_path, records):
    workload = events_to_workload(
        [chunk_of(records)], num_processors=NPROCS)
    plain = tmp_path / "t.bin"
    zipped = tmp_path / "t.bin.gz"
    save_workload(workload, plain, "binary")
    save_workload(workload, zipped, "binary")
    assert detect_format(zipped).compressed
    assert not detect_format(plain).compressed
    assert_same_workload(load_workload(zipped), load_workload(plain))


# ----------------------------------------------------------------------
# Malformed-input rejection
# ----------------------------------------------------------------------
def write_csv_text(path, body, processors=NPROCS):
    header = f"# {reader.CSV_SCHEMA} processors={processors}\n" \
             "proc,op,address,gap\n"
    path.write_text(header + body)


def test_csv_negative_address_rejected(tmp_path):
    path = tmp_path / "t.csv"
    write_csv_text(path, "0,LOAD,-64,0\n")
    with pytest.raises(WorkloadError, match="address.*outside"):
        list(read_events(path))


def test_csv_negative_gap_rejected(tmp_path):
    path = tmp_path / "t.csv"
    write_csv_text(path, "0,LOAD,0x40,-1\n")
    with pytest.raises(WorkloadError, match="gap.*outside"):
        list(read_events(path))


def test_csv_bad_processor_id_rejected(tmp_path):
    path = tmp_path / "t.csv"
    write_csv_text(path, "9,LOAD,0x40,0\n", processors=4)
    with pytest.raises(WorkloadError, match="processor 9 outside"):
        list(read_events(path))


def test_csv_unknown_op_rejected(tmp_path):
    path = tmp_path / "t.csv"
    write_csv_text(path, "0,FNORD,0x40,0\n")
    with pytest.raises(WorkloadError, match="unknown op"):
        list(read_events(path))
    write_csv_text(path, "0,99,0x40,0\n")
    with pytest.raises(WorkloadError, match="unknown op code 99"):
        list(read_events(path))


def test_csv_field_count_and_header_rejected(tmp_path):
    path = tmp_path / "t.csv"
    write_csv_text(path, "0,LOAD,0x40\n")
    with pytest.raises(WorkloadError, match="expected 4 fields"):
        list(read_events(path))
    path.write_text("time,cpu,addr\n1,2,3\n")
    with pytest.raises(WorkloadError, match="expected header"):
        list(read_events(path))


def test_truncated_binary_tail_rejected(tmp_path):
    workload = events_to_workload(
        [chunk_of([(0, 0, 64, 0), (1, 1, 128, 2)])],
        num_processors=NPROCS)
    path = tmp_path / "t.bin"
    save_workload(workload, path, "binary")
    blob = path.read_bytes()
    path.write_bytes(blob[:-5])  # tear the last record
    with pytest.raises(WorkloadError, match="truncated binary trace"):
        list(read_events(path))


def test_binary_record_count_mismatch_rejected(tmp_path):
    path = tmp_path / "t.bin"
    chunk = chunk_of([(0, 0, 64, 0), (1, 1, 128, 2)])
    write_binary(path, [chunk], NPROCS)  # header says 2 via... sentinel
    # Rewrite the header to promise 3 records while the file holds 2.
    blob = bytearray(path.read_bytes())
    blob[:reader._HEADER.size] = reader._HEADER.pack(
        BINARY_MAGIC, 1, NPROCS, 3)
    path.write_bytes(bytes(blob))
    with pytest.raises(WorkloadError, match="header declares 3"):
        list(read_events(path))
    blob[:reader._HEADER.size] = reader._HEADER.pack(
        BINARY_MAGIC, 1, NPROCS, 1)
    path.write_bytes(bytes(blob))
    with pytest.raises(WorkloadError, match="header declares"):
        list(read_events(path))


def test_binary_bad_op_flags_and_proc_rejected(tmp_path):
    path = tmp_path / "t.bin"
    record = np.zeros(1, dtype=reader.RECORD_DTYPE)
    record["op"] = 17
    path.write_bytes(
        reader._HEADER.pack(BINARY_MAGIC, 1, NPROCS, 1)
        + record.tobytes())
    with pytest.raises(WorkloadError, match="unknown op code 17"):
        list(read_events(path))
    record["op"] = 0
    record["flags"] = 5
    path.write_bytes(
        reader._HEADER.pack(BINARY_MAGIC, 1, NPROCS, 1)
        + record.tobytes())
    with pytest.raises(WorkloadError, match="reserved flags"):
        list(read_events(path))
    record["flags"] = 0
    record["proc"] = NPROCS
    path.write_bytes(
        reader._HEADER.pack(BINARY_MAGIC, 1, NPROCS, 1)
        + record.tobytes())
    with pytest.raises(WorkloadError, match="outside the declared"):
        list(read_events(path))


def test_foreign_binary_version_rejected(tmp_path):
    path = tmp_path / "t.bin"
    path.write_bytes(b"CGCTTRC\x02" + b"\x00" * 16)
    with pytest.raises(WorkloadError, match="unsupported binary trace"):
        detect_format(path)


def test_missing_file_and_empty_undeclared_trace_rejected(tmp_path):
    with pytest.raises(WorkloadError, match="no such trace file"):
        detect_format(tmp_path / "absent.bin")
    path = tmp_path / "t.csv"
    path.write_text("proc,op,address,gap\n")  # no width, no records
    with pytest.raises(WorkloadError, match="no declared"):
        load_workload(path)


def test_npz_is_not_an_event_stream(tmp_path):
    workload = events_to_workload(
        [chunk_of([(0, 0, 64, 0)])], num_processors=1)
    path = tmp_path / "t.npz"
    save_workload(workload, path, "npz")
    with pytest.raises(WorkloadError, match="npz"):
        list(read_events(path))


def test_wider_file_than_machine_rejected(tmp_path):
    workload = events_to_workload(
        [chunk_of([(3, 0, 64, 0)])], num_processors=NPROCS)
    path = tmp_path / "t.bin"
    save_workload(workload, path, "binary")
    with pytest.raises(WorkloadError, match="outside the requested"):
        load_workload(path, num_processors=2)


def test_errors_are_deterministic_workload_errors(tmp_path):
    """The supervised pool quarantines WorkloadErrors instead of
    retrying; the classification must see them as deterministic."""
    from repro.common.errors import classify_failure

    path = tmp_path / "t.csv"
    write_csv_text(path, "0,LOAD,-64,0\n")
    with pytest.raises(WorkloadError) as info:
        list(read_events(path))
    assert classify_failure(info.value).value == "deterministic"


# ----------------------------------------------------------------------
# Corrupt gzip container
# ----------------------------------------------------------------------
def test_corrupt_gzip_payload_surfaces_as_error(tmp_path):
    path = tmp_path / "t.bin.gz"
    workload = events_to_workload(
        [chunk_of([(0, 0, 64, 0)] * 100)], num_processors=NPROCS)
    save_workload(workload, path, "binary")
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises((WorkloadError, OSError, EOFError,
                       gzip.BadGzipFile, zlib.error)):
        list(read_events(path))
