"""Differential tests: the oracle trace profile against the live machine.

The profiler judges broadcasts with the golden may-hold model *without
simulating*; these tests replay the same trace through the full
:class:`Machine` and reconcile the two:

* The golden holder set always over-approximates the real one. With
  hardware prefetching disabled and caches large enough that nothing is
  evicted (the fixtures touch a handful of lines; the paper L2 holds a
  megabyte), the two coincide **exactly** — so the machine's
  per-broadcast "unnecessary" classification (snoop found no remote
  copy) must equal the golden verdict of the access that issued it,
  broadcast for broadcast, on the baseline *and* the CGCT machine.
* The existing conformance harness (:func:`run_differential`) must
  accept trace-file workloads wholesale — including through the
  ``trace:<path>`` name funnel — holding the machine to the golden
  model's coherence invariants while a captured trace replays.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.conformance.differential import ConformanceProbe, run_differential
from repro.conformance.golden import GoldenModel
from repro.system.config import SystemConfig
from repro.system.machine import OracleCategory
from repro.system.simulator import Simulator
from repro.traces.reader import load_workload
from repro.workloads.trace import TraceOp

FIXTURES = Path(__file__).parent / "fixtures"
ALL_FIXTURES = ("pingpong", "private", "shared_ro", "mixed")

NPROCS = 4  # the paper machine; fixtures are padded up to it


def _configs():
    baseline = replace(SystemConfig.paper_baseline(),
                       prefetch_enabled=False)
    cgct = replace(SystemConfig.paper_cgct(512), prefetch_enabled=False)
    return [("baseline", baseline), ("cgct", cgct)]


def _golden_verdicts(workload, order, line_shift):
    """must_broadcast per access index, replaying the machine's order."""
    model = GoldenModel(workload.num_processors)
    ops = [t.ops.tolist() for t in workload.per_processor]
    addresses = [t.addresses.tolist() for t in workload.per_processor]
    cursors = [0] * workload.num_processors
    verdicts = []
    for proc in order:
        k = cursors[proc]
        cursors[proc] = k + 1
        verdict = model.access(
            proc, TraceOp(ops[proc][k]),
            int(addresses[proc][k]) >> line_shift,
        )
        verdicts.append(verdict.must_broadcast)
    return verdicts


@pytest.mark.parametrize("fixture", ALL_FIXTURES)
@pytest.mark.parametrize("config_name,config", _configs())
def test_machine_figure2_counters_match_oracle_exactly(
        fixture, config_name, config):
    """No evictions + no prefetch => golden state is exact, so every
    non-writeback broadcast's unnecessary-bit equals the golden verdict
    of the access that issued it."""
    workload = load_workload(FIXTURES / f"{fixture}.csv",
                             num_processors=NPROCS)
    order = []
    simulator = Simulator(config, seed=0, step_observer=order.append)
    probe = ConformanceProbe(simulator.machine, order)
    simulator.machine.attach_event_log(probe)
    simulator.run(workload)

    assert not probe.violations
    verdicts = _golden_verdicts(
        workload, order, simulator.machine._line_shift)

    broadcast_events = [
        event for event in probe.events
        if event.path == "broadcast" and event.request.value != "writeback"
    ]
    oracle_unnecessary = sum(
        1 for event in broadcast_events if not verdicts[event.index])
    stats = simulator.machine.stats
    machine_unnecessary = (
        stats.total_unnecessary
        - stats.unnecessary_broadcasts[OracleCategory.WRITEBACK]
    )
    machine_broadcasts = (
        stats.total_broadcasts
        - stats.broadcasts[OracleCategory.WRITEBACK]
    )
    assert len(broadcast_events) == machine_broadcasts
    assert machine_unnecessary == oracle_unnecessary
    # And the needed side closes the books: every broadcast is one or
    # the other.
    assert machine_broadcasts - machine_unnecessary == sum(
        1 for event in broadcast_events if verdicts[event.index])


@pytest.mark.parametrize("fixture", ("pingpong", "shared_ro", "mixed"))
@pytest.mark.parametrize("config_name,config", _configs())
def test_conformance_harness_accepts_trace_files(
        fixture, config_name, config):
    """run_differential holds trace replays to the golden invariants."""
    workload = load_workload(FIXTURES / f"{fixture}.csv",
                             num_processors=NPROCS)
    outcome = run_differential(
        workload, config, f"{config_name}/{fixture}", seed=0)
    assert outcome.ok, outcome.mismatches
    assert outcome.accesses == len(workload)


def test_trace_name_funnel_reaches_conformance():
    """``trace:<path>`` names resolve through build_benchmark and flow
    into the conformance machinery unchanged."""
    from repro.workloads.benchmarks import build_benchmark

    path = FIXTURES / "mixed.csv"
    workload = build_benchmark(f"trace:{path}", num_processors=NPROCS)
    assert workload.num_processors == NPROCS
    outcome = run_differential(
        workload, _configs()[1][1], "cgct/trace-name", seed=0)
    assert outcome.ok, outcome.mismatches


def test_oracle_profile_totals_match_golden_replay():
    """The profiler's Figure-2 totals equal a golden replay over the
    same canonical round-robin interleaving (independent code paths)."""
    from repro.traces.profiler import profile_workload
    from repro.traces.reader import workload_to_events

    workload = load_workload(FIXTURES / "mixed.csv")
    profile = profile_workload(workload)
    model = GoldenModel(workload.num_processors)
    needed = unnecessary = 0
    for chunk in workload_to_events(workload):
        for proc, op, address in zip(
                chunk.procs.tolist(), chunk.ops.tolist(),
                chunk.addresses.tolist()):
            verdict = model.access(proc, TraceOp(op), address >> 6)
            if verdict.must_broadcast:
                needed += 1
            else:
                unnecessary += 1
    assert profile.oracle.needed == needed
    assert profile.oracle.unnecessary == unnecessary
