"""Statistical regression tests for the spatial sampler.

The committed ``fixtures/midsize.bin.gz`` (a 32 000-access 4-processor
capture of the barnes generator) pins the sampler's quality end to end:
sampling it at the default rate must stay inside the error bounds its
own report documents, the whole pipeline must be deterministic under a
fixed seed and invariant to reader chunking, and the report must
round-trip its schema. The region-alignment theorem — every surviving
access keeps its exact golden Figure-2 verdict — is checked directly
against the golden model.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.conformance.golden import GoldenModel
from repro.traces import sample as sample_mod
from repro.traces.reader import load_workload, read_events, save_workload
from repro.traces.sample import (
    DEFAULT_BOUNDS,
    REPORT_SCHEMA,
    SpatialSampler,
    load_report,
    sample_file,
    save_report,
    validate_report,
)
from repro.workloads.trace import TraceOp

MIDSIZE = Path(__file__).parent / "fixtures" / "midsize.bin.gz"
RATE = 4


def test_midsize_sample_stays_within_documented_bounds(tmp_path):
    report = sample_file(MIDSIZE, tmp_path / "s.bin", rate=RATE, seed=0)
    assert report["within_bounds"], report["metrics"]
    assert report["accesses"]["full"] == 32_000
    # Keeps roughly 1/RATE of regions and accesses (hash uniformity).
    kept = report["accesses"]["sampled"] / report["accesses"]["full"]
    assert 0.5 / RATE < kept < 2.0 / RATE
    for name, bound in DEFAULT_BOUNDS.items():
        cell = report["metrics"][name]
        assert cell["bound"] == bound
        assert cell["rel_error"] <= bound, (name, cell)


def test_sampling_is_deterministic_under_a_fixed_seed(tmp_path):
    a = sample_file(MIDSIZE, tmp_path / "a.bin", rate=RATE, seed=3)
    b = sample_file(MIDSIZE, tmp_path / "b.bin", rate=RATE, seed=3)
    assert (tmp_path / "a.bin").read_bytes() == \
        (tmp_path / "b.bin").read_bytes()
    a, b = dict(a), dict(b)
    a.pop("sample"), b.pop("sample")
    assert a == b
    # A different seed keeps a different region subset.
    c = sample_file(MIDSIZE, tmp_path / "c.bin", rate=RATE, seed=4)
    assert (tmp_path / "c.bin").read_bytes() != \
        (tmp_path / "a.bin").read_bytes()


def test_sampling_is_invariant_to_reader_chunking(tmp_path):
    small = sample_file(MIDSIZE, tmp_path / "small.bin", rate=RATE,
                        seed=0, chunk_records=997)
    big = sample_file(MIDSIZE, tmp_path / "big.bin", rate=RATE,
                      seed=0, chunk_records=1 << 20)
    assert (tmp_path / "small.bin").read_bytes() == \
        (tmp_path / "big.bin").read_bytes()
    small, big = dict(small), dict(big)
    small.pop("sample"), big.pop("sample")
    assert small == big


def test_rate_one_is_the_identity(tmp_path):
    report = sample_file(MIDSIZE, tmp_path / "all.bin", rate=1, seed=0)
    assert report["accesses"]["sampled"] == report["accesses"]["full"]
    assert report["within_bounds"]
    for cell in report["metrics"].values():
        assert cell["rel_error"] == pytest.approx(0.0, abs=1e-12)


def test_keep_mask_is_region_aligned():
    """All addresses inside one region share one keep/drop fate."""
    sampler = SpatialSampler(RATE, seed=0, region_bytes=512)
    regions = np.arange(200, dtype=np.uint64)
    base = regions << np.uint64(9)
    for offset in (0, 63, 511):
        mask = sampler.keep_mask(base + np.uint64(offset))
        assert np.array_equal(mask, sampler.keep_mask(base))
    kept = int(sampler.keep_mask(base).sum())
    assert 0 < kept < len(base)  # neither empty nor everything


def test_surviving_accesses_keep_their_exact_golden_verdicts():
    """Region alignment preserves every per-line history, so the golden
    Figure-2 verdict of each surviving access is identical in the full
    and sampled streams — only the aggregate mix changes."""
    sampler = SpatialSampler(RATE, seed=0, region_bytes=512)

    full_verdicts = []
    keep = []
    model = GoldenModel(4)
    for chunk in read_events(MIDSIZE):
        keep.extend(sampler.keep_mask(chunk.addresses).tolist())
        for proc, op, address in zip(
                chunk.procs.tolist(), chunk.ops.tolist(),
                chunk.addresses.tolist()):
            verdict = model.access(proc, TraceOp(op), address >> 6)
            full_verdicts.append(verdict.must_broadcast)

    sampled_verdicts = []
    model = GoldenModel(4)
    for chunk in sampler.sample_events(read_events(MIDSIZE)):
        for proc, op, address in zip(
                chunk.procs.tolist(), chunk.ops.tolist(),
                chunk.addresses.tolist()):
            verdict = model.access(proc, TraceOp(op), address >> 6)
            sampled_verdicts.append(verdict.must_broadcast)

    survivors = [v for v, k in zip(full_verdicts, keep) if k]
    assert survivors == sampled_verdicts


def test_report_schema_round_trips(tmp_path):
    report = sample_file(MIDSIZE, tmp_path / "s.bin", rate=RATE, seed=0)
    path = tmp_path / "report.json"
    save_report(report, path)
    assert load_report(path) == report
    validate_report(report)


def test_report_validation_rejects_malformed_reports(tmp_path):
    report = sample_file(MIDSIZE, tmp_path / "s.bin", rate=RATE, seed=0)
    with pytest.raises(WorkloadError, match="schema"):
        validate_report({**report, "schema": "something/v9"})
    broken = dict(report)
    del broken["within_bounds"]
    with pytest.raises(WorkloadError, match="within_bounds"):
        validate_report(broken)
    broken = json.loads(json.dumps(report))
    del broken["metrics"]["store_fraction"]["bound"]
    with pytest.raises(WorkloadError, match="bound"):
        validate_report(broken)
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(WorkloadError, match="unreadable"):
        load_report(path)
    assert report["schema"] == REPORT_SCHEMA


def test_sampler_rejects_bad_parameters(tmp_path):
    with pytest.raises(WorkloadError, match="rate"):
        SpatialSampler(0)
    with pytest.raises(WorkloadError, match="power of two"):
        SpatialSampler(4, region_bytes=513)
    workload = load_workload(MIDSIZE)
    npz = tmp_path / "w.npz"
    save_workload(workload, npz, "npz")
    with pytest.raises(WorkloadError, match="npz"):
        sample_file(npz, tmp_path / "out.bin", rate=4)


def test_sample_workload_matches_file_membership():
    """Per-processor filtering and stream filtering keep the same
    accesses: membership depends only on the address."""
    sampler = SpatialSampler(RATE, seed=0, region_bytes=512)
    workload = load_workload(MIDSIZE)
    sampled = sampler.sample_workload(workload)
    assert sampled.name.endswith(f"~1/{RATE}")
    for trace, original in zip(sampled.per_processor,
                               workload.per_processor):
        mask = sampler.keep_mask(original.addresses)
        assert np.array_equal(trace.addresses, original.addresses[mask])
        assert np.array_equal(trace.ops, original.ops[mask])
