"""Golden-file tests: hand-written traces, hand-computed profiles.

Every number below was derived by hand from the fixture CSVs (event
order is file order; 64 B lines, 512 B regions):

* reuse distance = distinct *other* lines touched between consecutive
  accesses to the same line (exact LRU stack distance);
* a region is shared when >= 2 processors touched it, write-shared when
  additionally anyone wrote it; an upgrade is a processor's first
  STORE/DCBZ to a region it had previously only read;
* the oracle verdict is the golden may-hold model's ``must_broadcast``
  *before* each access — IFETCH needs a broadcast only if a remote copy
  may be dirty, everything else whenever any remote copy may exist.

The profiler must reproduce them exactly, through every ingestion path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.traces.profiler import profile_file, profile_workload
from repro.traces.reader import load_workload

FIXTURES = Path(__file__).parent / "fixtures"


def test_pingpong_profile():
    """Two processors ping-pong stores on one line, then read it."""
    profile = profile_file(FIXTURES / "pingpong.csv")
    assert profile.accesses == 6
    assert profile.num_processors == 2
    assert profile.op_counts == {"LOAD": 2, "STORE": 4}
    # One line: every non-cold access reuses it with nothing in between.
    assert profile.lines_touched == 1
    assert profile.reuse.cold == 1
    assert profile.reuse.finite == 5
    assert profile.reuse.buckets == {0: 5}
    assert profile.reuse.mean == 0.0
    assert profile.reuse.max_distance == 0
    # One region, both processors read and wrote it.
    assert profile.regions_touched == 1
    assert profile.regions_shared == 1
    assert profile.regions_write_shared == 1
    assert profile.sharer_histogram == {2: 1}
    # Stores precede loads, so no read->write upgrades.
    assert profile.upgrades == 0
    # Oracle: only the very first store finds no remote copy.
    assert profile.oracle.needed == 5
    assert profile.oracle.unnecessary == 1
    assert profile.oracle.fraction_unnecessary == pytest.approx(1 / 6)
    assert profile.oracle.per_op == {"STORE": [3, 1], "LOAD": [2, 0]}


def test_private_profile():
    """Disjoint per-processor regions: no access ever needs a broadcast."""
    profile = profile_file(FIXTURES / "private.csv")
    assert profile.accesses == 6
    assert profile.op_counts == {"LOAD": 4, "STORE": 2}
    assert profile.lines_touched == 4
    # e3 reuses line 0 over {0x2000}=1 line; e6 reuses 0x2000 over
    # {0x0000, 0x2040, 0x0040}=3 lines.
    assert profile.reuse.cold == 4
    assert profile.reuse.finite == 2
    assert profile.reuse.buckets == {1: 1, 2: 1}
    assert profile.reuse.mean == pytest.approx(2.0)
    assert profile.reuse.max_distance == 3
    assert profile.regions_touched == 2
    assert profile.regions_shared == 0
    assert profile.regions_write_shared == 0
    assert profile.sharer_histogram == {1: 2}
    # Each processor stores into a region it had only read: 2 upgrades.
    assert profile.upgrades == 2
    assert profile.oracle.needed == 0
    assert profile.oracle.unnecessary == 6
    assert profile.oracle.fraction_unnecessary == 1.0
    assert profile.oracle.per_op == {"LOAD": [0, 4], "STORE": [0, 2]}


def test_shared_readonly_profile():
    """Read-only sharing: loads must still broadcast, ifetches never do."""
    profile = profile_file(FIXTURES / "shared_ro.csv")
    assert profile.accesses == 5
    assert profile.num_processors == 3
    assert profile.op_counts == {"LOAD": 3, "IFETCH": 2}
    assert profile.lines_touched == 2
    assert profile.reuse.cold == 2
    assert profile.reuse.finite == 3
    assert profile.reuse.buckets == {0: 2, 1: 1}
    assert profile.reuse.mean == pytest.approx(1 / 3)
    assert profile.regions_touched == 1
    assert profile.regions_shared == 1
    assert profile.regions_write_shared == 0   # nobody wrote
    assert profile.sharer_histogram == {3: 1}
    assert profile.upgrades == 0
    # e2/e4 loads find remote clean copies -> needed; both ifetches see
    # no possibly-dirty remote copy -> unnecessary (the paper's IFETCH
    # filter), as is the cold first load.
    assert profile.oracle.needed == 2
    assert profile.oracle.unnecessary == 3
    assert profile.oracle.fraction_unnecessary == pytest.approx(3 / 5)
    assert profile.oracle.per_op == {"LOAD": [2, 1], "IFETCH": [0, 2]}


def test_mixed_profile():
    """Upgrades, DCBZ/DCBF, and a dirty-remote instruction fetch."""
    profile = profile_file(FIXTURES / "mixed.csv")
    assert profile.accesses == 8
    assert profile.op_counts == {
        "LOAD": 3, "STORE": 2, "IFETCH": 1, "DCBZ": 1, "DCBF": 1,
    }
    assert profile.lines_touched == 3
    assert profile.reuse.cold == 3
    assert profile.reuse.finite == 5
    assert profile.reuse.buckets == {0: 4, 1: 1}
    assert profile.reuse.mean == pytest.approx(0.2)
    assert profile.regions_touched == 1
    assert profile.regions_shared == 1
    assert profile.regions_write_shared == 1
    # P0's DCBZ is its first write to a region it had only read.
    assert profile.upgrades == 1
    # Hand-traced golden verdicts:
    #  e1 P0 LOAD  0x1000 cold                   -> unnecessary
    #  e2 P1 STORE 0x1000 remote P0 copy         -> needed
    #  e3 P0 IFETCH 0x1000 P1 may hold it dirty  -> needed
    #  e4 P1 DCBF 0x1000 remote P0 copy          -> needed
    #  e5 P0 DCBZ 0x1040 cold                    -> unnecessary
    #  e6 P1 LOAD 0x1040 P0 holds it dirty       -> needed
    #  e7 P0 STORE 0x1000 purged by the DCBF     -> unnecessary
    #  e8 P1 LOAD 0x1080 cold                    -> unnecessary
    assert profile.oracle.needed == 4
    assert profile.oracle.unnecessary == 4
    assert profile.oracle.fraction_unnecessary == 0.5
    assert profile.oracle.per_op == {
        "LOAD": [1, 2], "STORE": [1, 1], "IFETCH": [1, 0],
        "DCBF": [1, 0], "DCBZ": [0, 1],
    }


def test_store_fraction_and_shared_fraction_headlines():
    profile = profile_file(FIXTURES / "mixed.csv")
    # STORE + DCBZ are the write ops: 3 of 8 accesses.
    assert profile.store_fraction == pytest.approx(3 / 8)
    assert profile.shared_region_fraction == 1.0


@pytest.mark.parametrize(
    "fixture", ["pingpong", "private", "shared_ro", "mixed"])
def test_profiles_survive_format_conversion(tmp_path, fixture):
    """Converting csv -> binary must not change a single profile field."""
    from repro.traces.reader import read_events, write_binary, detect_format

    src = FIXTURES / f"{fixture}.csv"
    dst = tmp_path / f"{fixture}.bin"
    info = detect_format(src)
    write_binary(dst, read_events(src), info.num_processors)
    assert profile_file(dst).to_dict() == profile_file(src).to_dict()


def test_profile_chunking_invariance_on_fixtures():
    for fixture in ("pingpong", "private", "shared_ro", "mixed"):
        path = FIXTURES / f"{fixture}.csv"
        one = profile_file(path, chunk_records=1)
        big = profile_file(path, chunk_records=65_536)
        assert one.to_dict() == big.to_dict()


def test_round_robin_workload_profile_matches_file_order():
    """These fixtures are written in round-robin order, so the two
    canonical interleavings coincide and the profiles must too."""
    for fixture in ("pingpong", "private", "shared_ro"):
        path = FIXTURES / f"{fixture}.csv"
        by_file = profile_file(path)
        by_workload = profile_workload(load_workload(path))
        assert by_file.to_dict() == by_workload.to_dict()
