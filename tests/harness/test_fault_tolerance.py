"""Fault injection against the supervised runner.

Every scenario ends with the same assertion: the surviving results are
*bit-identical* to an undisturbed serial run (full ``RunResult``
equality). Faults — killed workers, hangs past the deadline, corrupted
cache entries, interrupted sweeps — may cost wall clock, never bits.

Injection goes through the runner's ``execute`` hook with on-disk
markers (the idiom of ``test_parallel.py``), so a fault fires a
controlled number of times across worker processes.
"""

import json
import os
import signal
import time
from functools import partial
from pathlib import Path

import pytest

from repro.common.errors import FailureClass, WorkerCrash
from repro.harness.cache import DiskCache, code_version
from repro.harness.parallel import (
    ExperimentTask,
    ParallelRunner,
    execute_envelope,
)
from repro.harness.runlog import RunLog, read_runlog, summarize
from repro.harness.supervisor import (
    RetryPolicy,
    SupervisedPool,
    SweepCheckpoint,
    sweep_fingerprint,
)
from repro.system.config import SystemConfig


def grid_tasks(ops=800):
    """2 benchmarks × 2 configs — 4 cells, a cheap but real grid."""
    tasks = []
    for name in ("barnes", "tpc-w"):
        for config in (SystemConfig.paper_baseline(),
                       SystemConfig.paper_cgct(512)):
            tasks.append(ExperimentTask(name, config, ops,
                                        warmup_fraction=0.25))
    return tasks


def undisturbed(tasks):
    return ParallelRunner(workers=0).run(tasks)


# ----------------------------------------------------------------------
# Injected execute hooks (top-level: workers must reach them)
# ----------------------------------------------------------------------
def _sigkill_once_execute(envelope, marker):
    """SIGKILL the worker mid-task 0, exactly once across the sweep."""
    if envelope.index == 0:
        path = Path(marker)
        if not path.exists():
            path.write_text("killed")
            os.kill(os.getpid(), signal.SIGKILL)
    return execute_envelope(envelope)


def _hang_once_execute(envelope, marker):
    """Wedge the worker on task 1 (far past the deadline), once."""
    if envelope.index == 1:
        path = Path(marker)
        if not path.exists():
            path.write_text("hung")
            time.sleep(120)
    return execute_envelope(envelope)


def _bad_cell_execute(envelope):
    """Task 0 hits a deterministic simulator bug; the rest are fine."""
    if envelope.index == 0:
        raise ValueError("impossible region transition (injected)")
    return execute_envelope(envelope)


def _worker_hostile_execute(envelope, parent_pid):
    """Die instantly in any worker process; succeed in the parent."""
    if os.getpid() != parent_pid:
        os._exit(17)
    return execute_envelope(envelope)


def _crashy_execute(envelope, marker, fail_times):
    """Raise WorkerCrash for tasks 2+ until the marker counts out."""
    if envelope.index >= 2:
        path = Path(marker)
        seen = len(path.read_text()) if path.exists() else 0
        if seen < fail_times:
            path.write_text("x" * (seen + 1))
            raise WorkerCrash("injected transient infrastructure fault")
    return execute_envelope(envelope)


# ----------------------------------------------------------------------
# Scenario 1: worker killed mid-task
# ----------------------------------------------------------------------
def test_sigkilled_worker_is_replaced_and_results_are_identical(tmp_path):
    tasks = grid_tasks()
    expected = undisturbed(tasks)
    log = tmp_path / "run.jsonl"
    execute = partial(_sigkill_once_execute,
                      marker=str(tmp_path / "marker"))
    with RunLog(log) as runlog:
        runner = ParallelRunner(workers=2, runlog=runlog, retries=2,
                                execute=execute)
        results = runner.run(tasks)
    assert results == expected
    records = read_runlog(log)
    crashes = [r for r in records if r.get("status") == "error"
               and r.get("kind") == "crash"]
    assert len(crashes) == 1
    assert crashes[0]["will_retry"] is True
    assert crashes[0]["failure_class"] == "transient"


# ----------------------------------------------------------------------
# Scenario 2: worker hangs past the wall-clock budget
# ----------------------------------------------------------------------
def test_hung_worker_is_killed_at_deadline_and_task_requeued(tmp_path):
    tasks = grid_tasks()
    expected = undisturbed(tasks)
    log = tmp_path / "run.jsonl"
    execute = partial(_hang_once_execute, marker=str(tmp_path / "marker"))
    with RunLog(log) as runlog:
        runner = ParallelRunner(workers=2, runlog=runlog, retries=2,
                                execute=execute, task_timeout=2.0)
        results = runner.run(tasks)
    assert results == expected
    timeouts = [r for r in read_runlog(log) if r.get("status") == "error"
                and r.get("kind") == "timeout"]
    assert len(timeouts) == 1
    assert timeouts[0]["will_retry"] is True
    assert "wall-clock budget" in timeouts[0]["error"]


# ----------------------------------------------------------------------
# Scenario 3: corrupted cache entry
# ----------------------------------------------------------------------
def test_corrupt_cache_entry_is_resimulated_identically(tmp_path):
    tasks = grid_tasks()
    expected = undisturbed(tasks)
    disk = DiskCache(tmp_path / "cache")
    ParallelRunner(workers=0, cache=disk).run(tasks)

    # Truncate-and-garble one entry on disk.
    victim = disk._path(tasks[0].cache_key(code_version()))
    assert victim.exists()
    victim.write_bytes(b"not a pickle at all")

    log = tmp_path / "run.jsonl"
    with RunLog(log) as runlog:
        results = ParallelRunner(workers=0, cache=disk,
                                 runlog=runlog).run(tasks)
    assert results == expected
    summary = summarize(read_runlog(log))
    assert summary["simulated"] == 1  # only the corrupted cell re-ran
    assert summary["cache_hits"] == len(tasks) - 1
    assert summary["failures"] == 0


# ----------------------------------------------------------------------
# Scenario 4: sweep interrupted, checkpointed, resumed
# ----------------------------------------------------------------------
def test_checkpoint_resume_mid_sweep_is_bit_identical(tmp_path):
    tasks = grid_tasks()
    expected = undisturbed(tasks)
    disk = DiskCache(tmp_path / "cache")
    checkpoint_path = tmp_path / "sweep.ckpt"

    # First attempt: tasks 2+ fail transiently until the retry budget
    # runs out — the sweep ends with half the grid done. fail_times
    # covers exactly this sweep's four attempts (2 tasks × 2 tries), so
    # the fault has cleared by the resume.
    execute = partial(_crashy_execute, marker=str(tmp_path / "marker"),
                      fail_times=4)
    first = ParallelRunner(workers=0, cache=disk, retries=1, strict=False,
                           checkpoint=SweepCheckpoint(checkpoint_path),
                           execute=execute)
    partial_results = first.run(tasks)
    assert partial_results[:2] == expected[:2]
    assert partial_results[2:] == [None, None]
    assert len(first.failures) == 2

    # Resume: completed cells come from the checkpoint + cache, the
    # rest simulate now that the fault has cleared.
    log = tmp_path / "resume.jsonl"
    with RunLog(log) as runlog:
        second = ParallelRunner(workers=0, cache=disk, runlog=runlog,
                                checkpoint=SweepCheckpoint(checkpoint_path),
                                execute=execute)
        results = second.run(tasks)
    assert results == expected
    records = read_runlog(log)
    start = next(r for r in records if r["event"] == "sweep-start")
    assert start["resumed"] == 2
    resumed = [r for r in records
               if r["event"] == "run" and r.get("resumed")]
    assert {r["index"] for r in resumed} == {0, 1}
    assert summarize(records)["simulated"] == 2


def test_checkpoint_fingerprint_mismatch_restarts(tmp_path):
    path = tmp_path / "sweep.ckpt"
    checkpoint = SweepCheckpoint(path)
    assert checkpoint.begin(["key-a", "key-b"]) == set()
    checkpoint.mark_done(0, "key-a", "miss")
    assert SweepCheckpoint(path).begin(["key-a", "key-b"]) == {0}
    # A different grid (or code version, baked into real keys) restarts.
    assert SweepCheckpoint(path).begin(["key-a", "key-c"]) == set()


def test_checkpoint_tolerates_torn_trailing_line(tmp_path):
    path = tmp_path / "sweep.ckpt"
    checkpoint = SweepCheckpoint(path)
    checkpoint.begin(["key-a", "key-b"])
    checkpoint.mark_done(0, "key-a", "miss")
    with path.open("a") as handle:
        handle.write('{"record": "done", "ind')  # interrupted append
    assert SweepCheckpoint(path).begin(["key-a", "key-b"]) == {0}


# ----------------------------------------------------------------------
# Scenario 5: deterministic failures quarantine, never retry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 2])
def test_deterministic_failure_quarantines_without_retry(tmp_path, workers):
    tasks = grid_tasks()
    log = tmp_path / "run.jsonl"
    with RunLog(log) as runlog:
        runner = ParallelRunner(workers=workers, runlog=runlog, retries=3,
                                strict=False, execute=_bad_cell_execute)
        results = runner.run(tasks)
    assert results[0] is None
    assert [r is not None for r in results[1:]] == [True, True, True]
    assert len(runner.quarantined) == 1
    assert runner.quarantined[0]["class"] == "deterministic"
    errors = [r for r in read_runlog(log) if r.get("status") == "error"]
    assert len(errors) == 1  # one attempt total — no retries burned
    assert errors[0]["will_retry"] is False
    summary = summarize(read_runlog(log))
    assert summary["quarantined"] == 1
    assert summary["retries"] == 0


def test_quarantine_is_recorded_in_checkpoint(tmp_path):
    tasks = grid_tasks()
    checkpoint_path = tmp_path / "sweep.ckpt"
    runner = ParallelRunner(workers=0, strict=False,
                            checkpoint=SweepCheckpoint(checkpoint_path),
                            execute=_bad_cell_execute)
    runner.run(tasks)
    records = [json.loads(line) for line in
               checkpoint_path.read_text().splitlines()]
    quarantined = [r for r in records if r["record"] == "quarantined"]
    assert len(quarantined) == 1
    assert quarantined[0]["index"] == 0
    assert "injected" in quarantined[0]["reason"]


# ----------------------------------------------------------------------
# Scenario 6: circuit breaker → graceful serial degradation
# ----------------------------------------------------------------------
def test_circuit_break_degrades_to_serial_with_identical_results(tmp_path):
    tasks = grid_tasks()
    expected = undisturbed(tasks)
    log = tmp_path / "run.jsonl"
    execute = partial(_worker_hostile_execute, parent_pid=os.getpid())
    with RunLog(log) as runlog:
        runner = ParallelRunner(workers=2, runlog=runlog, retries=8,
                                circuit_threshold=2, execute=execute)
        results = runner.run(tasks)
    assert results == expected
    records = read_runlog(log)
    breaks = [r for r in records if r["event"] == "circuit-break"]
    assert len(breaks) == 1
    assert breaks[0]["remaining"] >= 1
    assert breaks[0]["consecutive_faults"] >= 2
    assert summarize(records)["completed"] == len(tasks)


# ----------------------------------------------------------------------
# Retry policy: deterministic backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic_per_key(self):
        policy = RetryPolicy()
        assert policy.delay(1, key=7) == policy.delay(1, key=7)
        assert policy.delay(1, key=7) != policy.delay(1, key=8)

    def test_backoff_grows_to_the_cap(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_cap=0.5, jitter=0.0)
        delays = [policy.delay(a) for a in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             backoff_cap=1.0, jitter=0.25)
        for key in range(20):
            assert 1.0 <= policy.delay(1, key=key) < 1.25


def test_sweep_fingerprint_is_order_sensitive():
    assert sweep_fingerprint(["a", "b"]) != sweep_fingerprint(["b", "a"])
    assert sweep_fingerprint(["a", "b"]) == sweep_fingerprint(["a", "b"])


# ----------------------------------------------------------------------
# Retry policy: the max-delay ceiling (crash-loop re-admission cadence)
# ----------------------------------------------------------------------
class TestRetryPolicyMaxDelay:
    def test_max_delay_caps_the_jittered_value(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_cap=1000.0, jitter=0.25,
                             max_delay=7.5)
        for attempt in range(1, 12):
            for key in range(10):
                assert policy.delay(attempt, key=key) <= 7.5

    def test_schedule_is_pinned(self):
        """The exact delay schedule for a fixed (policy, key) — any
        change to the derivation breaks resume determinism and must be
        deliberate."""
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_cap=2.0, jitter=0.0, max_delay=1.0)
        delays = [policy.delay(a) for a in range(1, 8)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0, 1.0]

    def test_jittered_schedule_is_reproducible_across_instances(self):
        first = RetryPolicy(max_delay=3.0)
        second = RetryPolicy(max_delay=3.0)
        schedule = [first.delay(a, key=("camp", 3)) for a in range(1, 9)]
        assert schedule == [second.delay(a, key=("camp", 3))
                            for a in range(1, 9)]
        assert all(d <= 3.0 for d in schedule)

    def test_invariant_band(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_cap=4.0, jitter=0.25, max_delay=5.0)
        for attempt in range(1, 10):
            for key in range(20):
                delay = policy.delay(attempt, key=key)
                assert 0.5 <= delay <= 5.0


# ----------------------------------------------------------------------
# Circuit breaker: half-open probe semantics
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_breaker(**kwargs):
    from repro.harness.supervisor import CircuitBreaker

    clock = FakeClock()
    kwargs.setdefault("threshold", 2)
    kwargs.setdefault("cooldown", 10.0)
    return CircuitBreaker(clock=clock, **kwargs), clock


def trip(breaker):
    while breaker.state != "open":
        breaker.record_fault()


class TestCircuitBreakerHalfOpen:
    def test_legacy_default_trips_permanently(self):
        from repro.harness.supervisor import CircuitBreaker

        breaker = CircuitBreaker(threshold=2)  # cooldown=None
        breaker.record_fault()
        assert not breaker.tripped
        breaker.record_fault()
        assert breaker.tripped
        assert breaker.state == "open"
        assert not breaker.allow_dispatch()

    def test_open_transitions_to_half_open_after_cooldown(self):
        breaker, clock = make_breaker()
        trip(breaker)
        assert not breaker.tripped  # cooldown set: trip is provisional
        assert not breaker.allow_dispatch()
        clock.now = 9.999
        assert breaker.state == "open"
        clock.now = 10.0
        assert breaker.state == "half-open"

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.now = 10.0
        assert breaker.allow_dispatch()       # the probe
        assert not breaker.allow_dispatch()   # a second task: refused
        assert not breaker.begin_probe()

    def test_probe_success_closes_the_breaker(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.now = 10.0
        assert breaker.allow_dispatch()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow_dispatch()
        assert breaker.consecutive_faults == 0
        assert breaker.failed_probes == 0

    def test_probe_fault_reopens_with_escalated_cooldown(self):
        breaker, clock = make_breaker()
        trip(breaker)
        clock.now = 10.0
        assert breaker.allow_dispatch()
        breaker.record_fault()                # probe died
        assert breaker.state == "open"
        clock.now = 10.0 + 10.0               # base cooldown: not enough
        assert breaker.state == "open"
        clock.now = 10.0 + 20.0               # doubled after 1 failed probe
        assert breaker.state == "half-open"

    def test_probe_exhaustion_trips_for_good(self):
        breaker, clock = make_breaker(max_probes=2)
        trip(breaker)
        for _ in range(2):
            clock.now += 1000.0               # past any cooldown
            assert breaker.allow_dispatch()
            breaker.record_fault()
        assert breaker.tripped
        clock.now += 10000.0
        assert breaker.state == "open"        # never half-open again
        assert not breaker.allow_dispatch()

    def test_straggler_fault_in_half_open_burns_no_probe(self):
        """A task dispatched before the trip that faults during the
        half-open window (no probe admitted) re-opens the breaker but
        must not consume a probe or escalate the cool-down — otherwise
        stragglers could exhaust ``max_probes`` and permanently trip
        the breaker without a single trial task being dispatched."""
        breaker, clock = make_breaker(max_probes=2)
        trip(breaker)
        for _ in range(5):            # far more stragglers than probes
            clock.now += 10.0         # base cool-down, never escalated
            assert breaker.state == "half-open"
            breaker.record_fault()    # straggler: no probe was admitted
            assert breaker.state == "open"
        assert breaker.failed_probes == 0
        assert not breaker.tripped
        clock.now += 10.0
        assert breaker.allow_dispatch()   # the real probe finally runs
        breaker.record_success()
        assert breaker.state == "closed"

    def test_full_cycle_open_half_open_closed(self):
        breaker, clock = make_breaker()
        assert breaker.state == "closed"
        trip(breaker)
        assert breaker.state == "open"
        clock.now = 50.0
        assert breaker.state == "half-open"
        assert breaker.allow_dispatch()
        breaker.record_success()
        assert breaker.state == "closed"
        # Healthy again: faults re-trip at the same threshold.
        trip(breaker)
        assert breaker.state == "open"
        assert not breaker.tripped


# ----------------------------------------------------------------------
# Sweep checkpoint: crash-point regression sweep
# ----------------------------------------------------------------------
def test_checkpoint_crash_at_any_point_resumes_a_prefix(tmp_path):
    """Truncate the checkpoint at every byte of its tail record: begin()
    must never raise and must report a subset of the truly completed
    indices (re-running a completed cell is safe; resuming a phantom
    one is not)."""
    keys = ["k0", "k1", "k2"]
    path = tmp_path / "sweep.ckpt"
    checkpoint = SweepCheckpoint(path)
    checkpoint.begin(keys)
    checkpoint.mark_done(0, "k0", "miss")
    checkpoint.mark_done(1, "k1", "miss")
    full = path.read_bytes()
    newlines = [i for i, b in enumerate(full) if b == 0x0A]
    for cut in range(newlines[0] + 1, len(full) + 1):
        path.write_bytes(full[:cut])
        completed = SweepCheckpoint(path).begin(keys)
        assert completed <= {0, 1}
        last_full = sum(1 for n in newlines if n < cut)
        assert len(completed) >= last_full - 1
    # Restore and confirm the intact file still resumes fully.
    path.write_bytes(full)
    assert SweepCheckpoint(path).begin(keys) == {0, 1}


def test_checkpoint_appends_are_fsynced(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd), real_fsync(fd))[1])
    checkpoint = SweepCheckpoint(tmp_path / "sweep.ckpt")
    checkpoint.begin(["k0"])          # header write
    checkpoint.mark_done(0, "k0", "miss")
    assert len(synced) == 2
