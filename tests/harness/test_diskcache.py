"""On-disk result cache: keys, round-trips, invalidation, resilience."""

import pickle

import pytest

from repro.harness.cache import (
    DiskCache,
    cache_key,
    code_version,
    config_fingerprint,
)
from repro.harness.parallel import ExperimentTask
from repro.harness.runcache import RunCache
from repro.system.config import SystemConfig


@pytest.fixture(scope="module")
def small_result():
    return ExperimentTask("barnes", SystemConfig.paper_baseline(), 300,
                          warmup_fraction=0.0).execute()


def _key(**overrides):
    params = dict(config=SystemConfig.paper_baseline(), benchmark="barnes",
                  ops_per_processor=300, seed=0, trace_seed=0,
                  warmup_fraction=0.0, version="pinned")
    params.update(overrides)
    return cache_key(**params)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_key_is_stable_and_content_addressed():
    assert _key() == _key()
    assert len(_key()) == 64


def test_key_distinguishes_every_input():
    base = _key()
    assert _key(config=SystemConfig.paper_cgct(512)) != base
    assert _key(benchmark="ocean") != base
    assert _key(ops_per_processor=400) != base
    assert _key(seed=1) != base
    assert _key(trace_seed=1) != base
    assert _key(warmup_fraction=0.4) != base


def test_code_version_change_invalidates():
    assert _key(version="aaaa") != _key(version="bbbb")


def test_code_version_is_memoised_and_stable():
    assert code_version() == code_version()
    assert len(code_version()) == 16
    int(code_version(), 16)  # hex


def test_config_fingerprint_covers_nested_fields():
    base = SystemConfig.paper_cgct(512)
    assert config_fingerprint(base) == config_fingerprint(
        SystemConfig.paper_cgct(512))
    assert config_fingerprint(base) != config_fingerprint(
        SystemConfig.paper_cgct(1024))


# ----------------------------------------------------------------------
# Store behaviour
# ----------------------------------------------------------------------
def test_round_trip_preserves_every_field(tmp_path, small_result):
    disk = DiskCache(tmp_path)
    disk.store(_key(), small_result)
    loaded = disk.load(_key())
    assert loaded == small_result
    assert disk.hits == 1


def test_miss_returns_none_and_counts(tmp_path):
    disk = DiskCache(tmp_path)
    assert disk.load(_key()) is None
    assert disk.misses == 1
    assert not disk.contains(_key())


def test_metadata_sidecar_written(tmp_path, small_result):
    disk = DiskCache(tmp_path)
    disk.store(_key(), small_result, metadata={"benchmark": "barnes"})
    sidecars = list(tmp_path.rglob("*.json"))
    assert len(sidecars) == 1
    assert "barnes" in sidecars[0].read_text()


def test_corrupt_entry_treated_as_miss_and_dropped(tmp_path, small_result):
    disk = DiskCache(tmp_path)
    key = _key()
    disk.store(key, small_result)
    path = disk._path(key)
    path.write_bytes(path.read_bytes()[:20])  # truncate mid-pickle
    assert disk.load(key) is None
    assert not path.exists()


def test_unpicklable_garbage_treated_as_miss(tmp_path):
    disk = DiskCache(tmp_path)
    key = _key()
    path = disk._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle at all")
    assert disk.load(key) is None


def test_invalidate_and_clear(tmp_path, small_result):
    disk = DiskCache(tmp_path)
    disk.store(_key(), small_result, metadata={})
    disk.store(_key(seed=1), small_result)
    assert len(disk) == 2
    assert disk.invalidate(_key()) is True
    assert disk.invalidate(_key()) is False
    assert len(disk) == 1
    assert disk.clear() == 1
    assert len(disk) == 0


def test_disabled_cache_is_a_noop(tmp_path, small_result):
    disk = DiskCache(tmp_path, enabled=False)
    disk.store(_key(), small_result)
    assert disk.load(_key()) is None
    assert len(disk) == 0
    assert not any(tmp_path.iterdir())


def test_atomic_store_leaves_no_temp_files(tmp_path, small_result):
    disk = DiskCache(tmp_path)
    for seed in range(3):
        disk.store(_key(seed=seed), small_result)
    assert not list(tmp_path.rglob("*.tmp"))


# ----------------------------------------------------------------------
# RunCache integration
# ----------------------------------------------------------------------
def test_disk_backed_runcache_replays_across_instances(tmp_path):
    config = SystemConfig.paper_baseline()
    first = RunCache(disk=DiskCache(tmp_path))
    a = first.run("barnes", config, 300, warmup_fraction=0.0)
    # A fresh process-equivalent: new memory cache, same disk store.
    second = RunCache(disk=DiskCache(tmp_path))
    b = second.run("barnes", config, 300, warmup_fraction=0.0)
    assert a == b
    assert second.disk.hits == 1
    assert second.disk.misses == 0


def test_disk_backed_runcache_stores_new_runs(tmp_path):
    cache = RunCache(disk=DiskCache(tmp_path))
    cache.run("barnes", SystemConfig.paper_baseline(), 300,
              warmup_fraction=0.0)
    assert len(cache.disk) == 1
    # In-memory hit: the disk is not consulted twice.
    cache.run("barnes", SystemConfig.paper_baseline(), 300,
              warmup_fraction=0.0)
    assert cache.disk.hits == 0


def test_results_pickle_roundtrip_equality(small_result):
    clone = pickle.loads(pickle.dumps(small_result))
    assert clone == small_result
    assert clone.cycles == small_result.cycles
