"""JSON/Markdown export of experiment results."""

import json

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.export import (
    load_results_json,
    result_to_dict,
    result_to_markdown,
    save_results_json,
    save_results_markdown,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="figX",
        title="Example figure",
        headers=["Benchmark", "Value"],
        rows=[["barnes", 1.5], ["tpc-w", 2]],
        notes=["a note"],
    )


def test_result_to_dict_round_trips_through_json(result):
    payload = result_to_dict(result)
    restored = json.loads(json.dumps(payload))
    assert restored["experiment_id"] == "figX"
    assert restored["rows"] == [["barnes", 1.5], ["tpc-w", 2]]


def test_save_and_load_json(tmp_path, result):
    path = tmp_path / "results.json"
    save_results_json([result, result], path)
    loaded = load_results_json(path)
    assert len(loaded) == 2
    assert loaded[0]["title"] == "Example figure"


def test_markdown_rendering(result):
    text = result_to_markdown(result)
    assert "### `figX`" in text
    assert "| Benchmark | Value |" in text
    assert "| barnes | 1.5 |" in text
    assert "> a note" in text


def test_markdown_document(tmp_path, result):
    path = tmp_path / "results.md"
    save_results_markdown([result], path, title="Doc")
    text = path.read_text()
    assert text.startswith("# Doc")
    assert "figX" in text


def test_non_serialisable_cells_stringified():
    class Odd:
        def __str__(self):
            return "odd!"

    result = ExperimentResult("x", "t", ["a"], [[Odd()]])
    assert result_to_dict(result)["rows"] == [["odd!"]]
    assert "odd!" in result_to_markdown(result)


def test_real_experiment_exports(tmp_path):
    from repro.harness.experiments import RunOptions, run_experiment

    result = run_experiment("table2", RunOptions())
    save_results_json([result], tmp_path / "t2.json")
    assert load_results_json(tmp_path / "t2.json")[0]["experiment_id"] == "table2"
