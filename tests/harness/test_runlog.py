"""JSON-lines run log: writing, reading back, summarising."""

import json

from repro.harness.runlog import RunLog, read_runlog, summarize


def test_records_append_and_read_back(tmp_path):
    path = tmp_path / "runs.jsonl"
    with RunLog(path) as log:
        log.record("sweep-start", tasks=2, workers=1, cache="off")
        log.record("run", index=0, status="ok", cache="miss", wall_s=0.5)
    # Appending across instances (successive invocations share a log).
    with RunLog(path) as log:
        log.record("run", index=1, status="ok", cache="hit", wall_s=0.0)
    records = read_runlog(path)
    assert [r["event"] for r in records] == ["sweep-start", "run", "run"]
    assert all("ts" in r for r in records)


def test_lines_are_plain_json(tmp_path):
    path = tmp_path / "runs.jsonl"
    with RunLog(path) as log:
        log.record("run", status="ok", task={"benchmark": "barnes"})
    line = path.read_text().strip()
    assert json.loads(line)["task"]["benchmark"] == "barnes"


def test_missing_log_reads_empty(tmp_path):
    assert read_runlog(tmp_path / "absent.jsonl") == []


def test_parent_directories_created(tmp_path):
    path = tmp_path / "deep" / "nested" / "runs.jsonl"
    with RunLog(path) as log:
        log.record("sweep-start", tasks=0)
    assert path.exists()


def test_summarize_counts_every_bucket():
    records = [
        {"event": "sweep-start", "tasks": 3},
        {"event": "run", "status": "error", "will_retry": True,
         "error": "boom"},
        {"event": "run", "status": "ok", "cache": "miss", "wall_s": 1.5,
         "peak_rss_kb": 2000},
        {"event": "run", "status": "ok", "cache": "hit", "wall_s": 0.1,
         "peak_rss_kb": 1000},
        {"event": "run", "status": "error", "will_retry": False,
         "error": "boom"},
        {"event": "sweep-end"},
    ]
    summary = summarize(records)
    assert summary["runs"] == 4
    assert summary["completed"] == 2
    assert summary["simulated"] == 1
    assert summary["cache_hits"] == 1
    assert summary["retries"] == 1
    assert summary["failures"] == 1
    assert summary["wall_seconds"] == 1.6
    assert summary["peak_rss_kb"] == 2000


def test_summarize_empty_stream():
    summary = summarize([])
    assert summary["runs"] == 0
    assert summary["simulated"] == 0
    assert summary["peak_rss_kb"] == 0


def test_double_close_is_safe(tmp_path):
    log = RunLog(tmp_path / "runs.jsonl")
    log.record("sweep-start", tasks=0)
    log.close()
    log.close()
