"""JSON-lines run log: writing, reading back, summarising."""

import json
import os
import socket

import pytest

from repro.harness.runlog import RUNLOG_SCHEMA, RunLog, read_runlog, summarize


def test_records_append_and_read_back(tmp_path):
    path = tmp_path / "runs.jsonl"
    with RunLog(path) as log:
        log.record("sweep-start", tasks=2, workers=1, cache="off")
        log.record("run", index=0, status="ok", cache="miss", wall_s=0.5)
    # Appending across instances (successive invocations share a log).
    with RunLog(path) as log:
        log.record("run", index=1, status="ok", cache="hit", wall_s=0.0)
    records = read_runlog(path)
    assert [r["event"] for r in records] == ["sweep-start", "run", "run"]
    assert all("ts" in r for r in records)


def test_lines_are_plain_json(tmp_path):
    path = tmp_path / "runs.jsonl"
    with RunLog(path) as log:
        log.record("run", status="ok", task={"benchmark": "barnes"})
    line = path.read_text().strip()
    assert json.loads(line)["task"]["benchmark"] == "barnes"


def test_missing_log_reads_empty(tmp_path):
    assert read_runlog(tmp_path / "absent.jsonl") == []


def test_parent_directories_created(tmp_path):
    path = tmp_path / "deep" / "nested" / "runs.jsonl"
    with RunLog(path) as log:
        log.record("sweep-start", tasks=0)
    assert path.exists()


def test_records_are_stamped_with_schema_host_and_pid(tmp_path):
    path = tmp_path / "runs.jsonl"
    with RunLog(path) as log:
        log.record("sweep-start", tasks=1)
        log.record("run", status="ok")
    for record in read_runlog(path):
        assert record["schema"] == RUNLOG_SCHEMA == "runlog/v1"
        assert record["hostname"] == socket.gethostname()
        assert record["pid"] == os.getpid()


def test_caller_fields_cannot_be_shadowed_by_stamps(tmp_path):
    # A caller passing its own hostname (say, relaying a worker's)
    # wins over the coordinator's stamp.
    path = tmp_path / "runs.jsonl"
    with RunLog(path) as log:
        log.record("run", status="ok", hostname="worker-7", pid=1234)
    record = read_runlog(path)[0]
    assert record["hostname"] == "worker-7"
    assert record["pid"] == 1234


def test_old_unstamped_records_still_read_and_summarize(tmp_path):
    # Logs written before runlog/v1 carry no schema/hostname/pid; they
    # must keep reading back and summarising unchanged.
    path = tmp_path / "runs.jsonl"
    old = [
        {"event": "sweep-start", "ts": 1.0, "tasks": 1},
        {"event": "run", "ts": 2.0, "status": "ok", "cache": "miss",
         "wall_s": 0.5, "peak_rss_kb": 100},
        {"event": "sweep-end", "ts": 3.0},
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in old))
    with RunLog(path) as log:  # a new writer appends stamped records
        log.record("run", status="ok", cache="hit", wall_s=0.0,
                   peak_rss_kb=50)
    records = read_runlog(path)
    assert len(records) == 4
    assert "schema" not in records[0]
    assert records[-1]["schema"] == RUNLOG_SCHEMA
    summary = summarize(records)
    assert summary["runs"] == 2
    assert summary["simulated"] == 1
    assert summary["cache_hits"] == 1


def test_summarize_counts_every_bucket():
    records = [
        {"event": "sweep-start", "tasks": 3},
        {"event": "run", "status": "error", "will_retry": True,
         "error": "boom"},
        {"event": "run", "status": "ok", "cache": "miss", "wall_s": 1.5,
         "peak_rss_kb": 2000},
        {"event": "run", "status": "ok", "cache": "hit", "wall_s": 0.1,
         "peak_rss_kb": 1000},
        {"event": "run", "status": "error", "will_retry": False,
         "error": "boom"},
        {"event": "sweep-end"},
    ]
    summary = summarize(records)
    assert summary["runs"] == 4
    assert summary["completed"] == 2
    assert summary["simulated"] == 1
    assert summary["cache_hits"] == 1
    assert summary["retries"] == 1
    assert summary["failures"] == 1
    assert summary["wall_seconds"] == 1.6
    assert summary["peak_rss_kb"] == 2000


def test_summarize_empty_stream():
    summary = summarize([])
    assert summary["runs"] == 0
    assert summary["simulated"] == 0
    assert summary["peak_rss_kb"] == 0


def test_double_close_is_safe(tmp_path):
    log = RunLog(tmp_path / "runs.jsonl")
    log.record("sweep-start", tasks=0)
    log.close()
    log.close()


# ----------------------------------------------------------------------
# Durability: fsync-on-append, torn-trailing tolerance, crash points
# ----------------------------------------------------------------------
def test_torn_trailing_record_is_dropped(tmp_path):
    path = tmp_path / "run.jsonl"
    log = RunLog(path)
    log.record("run", index=0, status="ok")
    log.record("run", index=1, status="ok")
    log.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "run", "index": 2, "stat')  # no newline
    records = read_runlog(path)
    assert [r["index"] for r in records] == [0, 1]


def test_corruption_before_the_tail_still_raises(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text('{"event": "a"}\nGARBAGE\n{"event": "b"}\n')
    with pytest.raises(json.JSONDecodeError):
        read_runlog(path)


def test_crash_at_every_byte_boundary_keeps_the_prefix(tmp_path):
    """Crash-point sweep: truncating the log anywhere mid-final-record
    yields exactly the records fully written before it."""
    path = tmp_path / "run.jsonl"
    log = RunLog(path)
    for i in range(3):
        log.record("run", index=i)
    log.close()
    full = path.read_bytes()
    newlines = [i for i, b in enumerate(full) if b == 0x0A]
    torn = tmp_path / "torn.jsonl"
    for cut in range(newlines[0] + 1, len(full)):
        torn.write_bytes(full[:cut])
        records = read_runlog(torn)
        complete = sum(1 for n in newlines if n < cut)
        got = [r["index"] for r in records]
        # Every fully terminated record survives; the torn tail either
        # vanishes or (cut exactly before its newline, so its JSON is
        # whole) parses — never anything corrupt, never a lost prefix.
        assert got in (list(range(complete)), list(range(complete + 1)))


def test_append_is_fsynced_by_default(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd), real_fsync(fd))[1])
    log = RunLog(tmp_path / "run.jsonl")
    log.record("run", index=0)
    log.record("run", index=1)
    log.close()
    assert len(synced) == 2


def test_durable_false_skips_fsync_but_still_flushes(tmp_path, monkeypatch):
    synced = []
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
    log = RunLog(tmp_path / "run.jsonl", durable=False)
    log.record("run", index=0)
    log.close()
    assert synced == []
    assert read_runlog(tmp_path / "run.jsonl")[0]["index"] == 0
