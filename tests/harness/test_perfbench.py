"""Perf benchmark suite: configs, measurement payloads, and the CI gate.

The measurement itself is timed wall-clock and therefore not asserted on
(host speed is not a test invariant); everything around it is — config
construction, payload shape, fingerprint determinism, the speedup
attachment, and both failure modes of ``check_against``.
"""

import copy
import json

import pytest

from repro.harness.perfbench import (
    PERF_CONFIGS,
    attach_reference,
    bench_config,
    check_against,
    host_metadata,
    measure_config,
    perf_command,
    render,
    run_suite,
)


class TestConfigs:
    def test_canonical_points_cover_4_8_16(self):
        assert [(p, c) for _, p, c in PERF_CONFIGS] == [
            (4, False), (4, True), (8, False), (8, True),
            (16, False), (16, True),
        ]

    @pytest.mark.parametrize("name,processors,cgct", PERF_CONFIGS)
    def test_bench_config_matches_its_point(self, name, processors, cgct):
        config = bench_config(name)
        assert config.num_processors == processors
        assert config.cgct_enabled == cgct

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            bench_config("2p-baseline")

    def test_host_metadata_fields(self):
        host = host_metadata()
        assert host["python"]
        assert host["cpu_count"] >= 1


class TestMeasurement:
    def test_cell_shape_and_fingerprint_determinism(self):
        a = measure_config("4p-cgct", 400, repeats=1)
        b = measure_config("4p-cgct", 400, repeats=1)
        assert a["processors"] == 4
        assert a["mode"] == "cgct"
        assert a["simulated_ops"] == 4 * 400
        assert a["wall_s"] > 0
        assert a["ops_per_host_second"] > 0
        # Wall time is host noise; the simulated behaviour is not.
        assert a["fingerprint"] == b["fingerprint"]
        assert a["fingerprint"]["cycles"] > 0

    def test_run_suite_payload(self):
        payload = run_suite(ops_per_processor=300, repeats=1,
                            configs=["4p-baseline", "4p-cgct"])
        assert set(payload["configs"]) == {"4p-baseline", "4p-cgct"}
        assert payload["suite"]["ops_per_processor"] == 300
        assert payload["host"]["python"]
        assert "speedup" not in payload

    def test_run_suite_rejects_unknown_config(self):
        with pytest.raises(ValueError):
            run_suite(ops_per_processor=300, configs=["nope"])


def fake_payload(rate=1000.0, cycles=123):
    return {
        "suite": {"workload": "barnes", "ops_per_processor": 300,
                  "seed": 0, "warmup_fraction": 0.0, "repeats": 1},
        "configs": {
            "4p-cgct": {
                "processors": 4, "mode": "cgct", "simulated_ops": 1200,
                "wall_s": 1.2, "ops_per_host_second": rate,
                "fingerprint": {"cycles": cycles, "broadcasts": 7},
            },
        },
    }


class TestCheckAgainst:
    def test_identical_measurement_passes(self):
        payload = fake_payload()
        assert check_against(payload, copy.deepcopy(payload)) == []

    def test_faster_run_passes(self):
        assert check_against(fake_payload(rate=2000.0), fake_payload()) == []

    def test_throughput_regression_fails(self):
        failures = check_against(fake_payload(rate=700.0), fake_payload(),
                                 threshold=0.25)
        assert len(failures) == 1
        assert "4p-cgct" in failures[0]

    def test_regression_inside_threshold_passes(self):
        assert check_against(fake_payload(rate=800.0), fake_payload(),
                             threshold=0.25) == []

    def test_fingerprint_mismatch_fails_even_when_fast(self):
        failures = check_against(fake_payload(rate=9000.0, cycles=999),
                                 fake_payload())
        assert len(failures) == 1
        assert "fingerprint" in failures[0]

    def test_fingerprint_not_compared_across_suite_params(self):
        baseline = fake_payload(cycles=999)
        baseline["suite"]["ops_per_processor"] = 600
        assert check_against(fake_payload(), baseline) == []

    def test_configs_missing_from_baseline_are_skipped(self):
        baseline = fake_payload()
        del baseline["configs"]["4p-cgct"]
        assert check_against(fake_payload(rate=1.0), baseline) == []


class TestReferenceAndRender:
    def test_attach_reference_computes_speedup(self):
        payload = fake_payload(rate=3000.0)
        attach_reference(payload, fake_payload(rate=1000.0))
        assert payload["speedup"]["4p-cgct"] == 3.0
        assert payload["reference"]["configs"]["4p-cgct"][
            "ops_per_host_second"] == 1000.0

    def test_render_mentions_every_config(self):
        payload = fake_payload()
        attach_reference(payload, fake_payload(rate=500.0))
        table = render(payload)
        assert "4p-cgct" in table
        assert "2.00x" in table


class TestCommand:
    def test_quick_run_writes_payload_and_checks_itself(self, tmp_path,
                                                        capsys):
        out = tmp_path / "BENCH_core.json"
        assert perf_command([
            "--quick", "--ops", "200", "--configs", "4p-cgct",
            "--output", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        # --quick overrides --ops down to its fixed smoke size.
        assert payload["suite"]["ops_per_processor"] == 3000
        assert "4p-cgct" in payload["configs"]
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--check", str(out), "--threshold", "0.9",
        ]) == 0

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        baseline = fake_payload(rate=10_000_000.0)
        baseline["suite"]["ops_per_processor"] = 3000
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--check", str(path),
        ]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
