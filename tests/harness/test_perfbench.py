"""Perf benchmark suite: configs, measurement payloads, and the CI gate.

The measurement itself is timed wall-clock and therefore not asserted on
(host speed is not a test invariant); everything around it is — config
construction, payload shape, fingerprint determinism, the speedup
attachment, and both failure modes of ``check_against``.
"""

import copy
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.harness.perfbench import (
    PERF_CONFIGS,
    SCHEMA,
    attach_reference,
    bench_config,
    check_against,
    host_metadata,
    load_measurement,
    measure_config,
    perf_command,
    render,
    run_suite,
    version_drift_warning,
)


class TestConfigs:
    def test_canonical_points_cover_4_through_64(self):
        assert [(p, c) for _, p, c in PERF_CONFIGS] == [
            (4, False), (4, True), (8, False), (8, True),
            (16, False), (16, True), (32, False), (32, True),
            (64, False), (64, True),
        ]

    @pytest.mark.parametrize("name,processors,cgct", PERF_CONFIGS)
    def test_bench_config_matches_its_point(self, name, processors, cgct):
        config = bench_config(name)
        assert config.num_processors == processors
        assert config.cgct_enabled == cgct

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            bench_config("2p-baseline")

    def test_host_metadata_fields(self):
        host = host_metadata()
        assert host["python"]
        assert host["cpu_count"] >= 1


class TestMeasurement:
    def test_cell_shape_and_fingerprint_determinism(self):
        a = measure_config("4p-cgct", 400, repeats=1)
        b = measure_config("4p-cgct", 400, repeats=1)
        assert a["processors"] == 4
        assert a["mode"] == "cgct"
        assert a["simulated_ops"] == 4 * 400
        assert a["wall_s"] > 0
        assert a["ops_per_host_second"] > 0
        # Wall time is host noise; the simulated behaviour is not.
        assert a["fingerprint"] == b["fingerprint"]
        assert a["fingerprint"]["cycles"] > 0

    def test_run_suite_payload(self):
        payload = run_suite(ops_per_processor=300, repeats=1,
                            configs=["4p-baseline", "4p-cgct"])
        assert set(payload["configs"]) == {"4p-baseline", "4p-cgct"}
        assert payload["suite"]["ops_per_processor"] == 300
        assert payload["host"]["python"]
        assert "speedup" not in payload

    def test_run_suite_rejects_unknown_config(self):
        with pytest.raises(ValueError):
            run_suite(ops_per_processor=300, configs=["nope"])


def fake_payload(rate=1000.0, cycles=123):
    return {
        "schema": SCHEMA,
        "suite": {"workload": "barnes", "ops_per_processor": 300,
                  "seed": 0, "warmup_fraction": 0.0, "repeats": 1},
        "configs": {
            "4p-cgct": {
                "processors": 4, "mode": "cgct", "simulated_ops": 1200,
                "wall_s": 1.2, "ops_per_host_second": rate,
                "fingerprint": {"cycles": cycles, "broadcasts": 7},
            },
        },
    }


class TestCheckAgainst:
    def test_identical_measurement_passes(self):
        payload = fake_payload()
        assert check_against(payload, copy.deepcopy(payload)) == []

    def test_faster_run_passes(self):
        assert check_against(fake_payload(rate=2000.0), fake_payload()) == []

    def test_throughput_regression_fails(self):
        failures = check_against(fake_payload(rate=700.0), fake_payload(),
                                 threshold=0.25)
        assert len(failures) == 1
        assert "4p-cgct" in failures[0]

    def test_regression_inside_threshold_passes(self):
        assert check_against(fake_payload(rate=800.0), fake_payload(),
                             threshold=0.25) == []

    def test_fingerprint_mismatch_fails_even_when_fast(self):
        failures = check_against(fake_payload(rate=9000.0, cycles=999),
                                 fake_payload())
        assert len(failures) == 1
        assert "fingerprint" in failures[0]

    def test_fingerprint_not_compared_across_suite_params(self):
        baseline = fake_payload(cycles=999)
        baseline["suite"]["ops_per_processor"] = 600
        assert check_against(fake_payload(), baseline) == []

    def test_configs_missing_from_baseline_are_skipped(self):
        # Growth direction: the new run measures a config the committed
        # baseline predates. Nothing to compare against — tolerated.
        baseline = fake_payload()
        del baseline["configs"]["4p-cgct"]
        assert check_against(fake_payload(rate=1.0), baseline) == []

    def test_config_disappearing_from_the_run_fails_loudly(self):
        # Loss direction: the baseline measured a config the new run
        # did not. That is coverage loss, never a silent pass.
        baseline = fake_payload()
        baseline["configs"]["8p-cgct"] = copy.deepcopy(
            baseline["configs"]["4p-cgct"]
        )
        failures = check_against(fake_payload(), baseline)
        assert len(failures) == 1
        assert "8p-cgct" in failures[0]
        assert "coverage" in failures[0]

    def test_empty_run_reports_every_lost_config(self):
        payload = fake_payload()
        payload["configs"] = {}
        failures = check_against(payload, fake_payload())
        assert len(failures) == 1
        assert "4p-cgct" in failures[0]


class TestReferenceAndRender:
    def test_attach_reference_computes_speedup(self):
        payload = fake_payload(rate=3000.0)
        attach_reference(payload, fake_payload(rate=1000.0))
        assert payload["speedup"]["4p-cgct"] == 3.0
        assert payload["reference"]["configs"]["4p-cgct"][
            "ops_per_host_second"] == 1000.0

    def test_reference_covering_a_missing_config_is_rejected(self):
        # A reference measured at a config this run skipped would make
        # the speedup table silently shrink — refuse instead.
        reference = fake_payload(rate=500.0)
        reference["configs"]["16p-cgct"] = copy.deepcopy(
            reference["configs"]["4p-cgct"]
        )
        with pytest.raises(ConfigurationError, match="16p-cgct"):
            attach_reference(fake_payload(), reference)

    def test_explicit_configs_restriction_trims_the_comparison(self, tmp_path):
        # `--configs 4p-cgct --check <full baseline>` is a deliberate
        # subset: the untouched baseline configs must not fail the run.
        baseline = fake_payload()
        baseline["configs"]["8p-baseline"] = copy.deepcopy(
            baseline["configs"]["4p-cgct"]
        )
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--check", str(path), "--threshold", "0.99",
        ]) == 0

    def test_render_mentions_every_config(self):
        payload = fake_payload()
        attach_reference(payload, fake_payload(rate=500.0))
        table = render(payload)
        assert "4p-cgct" in table
        assert "2.00x" in table


class TestCommand:
    def test_quick_run_writes_payload_and_checks_itself(self, tmp_path,
                                                        capsys):
        out = tmp_path / "BENCH_core.json"
        assert perf_command([
            "--quick", "--ops", "200", "--configs", "4p-cgct",
            "--output", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        # --quick overrides --ops down to its fixed smoke size.
        assert payload["suite"]["ops_per_processor"] == 3000
        assert "4p-cgct" in payload["configs"]
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--check", str(out), "--threshold", "0.9",
        ]) == 0

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        baseline = fake_payload(rate=10_000_000.0)
        baseline["suite"]["ops_per_processor"] = 3000
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--check", str(path),
        ]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err


class TestLoadMeasurement:
    """--reference/--check file vetting: actionable errors, host compat."""

    def _write(self, tmp_path, payload):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        return path

    def test_valid_measurement_loads(self, tmp_path):
        path = self._write(tmp_path, fake_payload())
        assert load_measurement(path, "--check")["configs"]

    def test_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(ConfigurationError) as excinfo:
            load_measurement(tmp_path / "gone.json", "--check")
        message = str(excinfo.value)
        assert "--check" in message
        assert "python -m repro.harness perf" in message

    def test_unparseable_file_is_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{truncated")
        with pytest.raises(ConfigurationError, match="not a readable JSON"):
            load_measurement(path, "--reference")

    def test_wrong_schema_is_rejected(self, tmp_path):
        payload = fake_payload()
        payload["schema"] = "bench-core/v99"
        path = self._write(tmp_path, payload)
        with pytest.raises(ConfigurationError, match="bench-core/v1"):
            load_measurement(path, "--check")

    def test_reference_requires_compatible_host(self, tmp_path):
        payload = fake_payload()
        payload["host"] = {"machine": "sparc64", "implementation": "Jython"}
        path = self._write(tmp_path, payload)
        with pytest.raises(ConfigurationError) as excinfo:
            load_measurement(path, "--reference",
                             current_host=host_metadata())
        message = str(excinfo.value)
        assert "incompatible host" in message
        assert "sparc64" in message
        assert "--check" in message  # points at the host-tolerant option

    def test_check_tolerates_foreign_hosts(self, tmp_path):
        # CI runs --check against a measurement from a different host;
        # only the speedup-computing --reference needs host parity.
        payload = fake_payload()
        payload["host"] = {"machine": "sparc64", "implementation": "Jython"}
        path = self._write(tmp_path, payload)
        assert load_measurement(path, "--check")["host"]["machine"] == \
            "sparc64"


class TestVersionDriftWarning:
    def payload_at(self, sha):
        payload = fake_payload()
        payload["host"] = {"git_sha": sha}
        return payload

    def test_warns_when_shas_differ(self):
        warning = version_drift_warning(
            "--reference", self.payload_at("aaaa111"), "bbbb222")
        assert warning is not None
        assert "--reference" in warning
        assert "aaaa111" in warning and "bbbb222" in warning

    def test_silent_when_shas_match(self):
        assert version_drift_warning(
            "--check", self.payload_at("aaaa111"), "aaaa111") is None

    def test_silent_when_either_side_unknown(self):
        # Exported trees have no git metadata; old payloads no git_sha.
        assert version_drift_warning(
            "--check", self.payload_at("aaaa111"), None) is None
        assert version_drift_warning(
            "--check", fake_payload(), "bbbb222") is None


class TestCommandVetting:
    def test_missing_check_file_exits_2_before_measuring(self, tmp_path,
                                                         capsys):
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--check", str(tmp_path / "gone.json"),
        ]) == 2
        err = capsys.readouterr().err
        assert "error: --check" in err

    def test_cross_host_reference_exits_2(self, tmp_path, capsys):
        payload = fake_payload()
        payload["host"] = {"machine": "sparc64", "implementation": "Jython"}
        path = tmp_path / "ref.json"
        path.write_text(json.dumps(payload))
        assert perf_command([
            "--quick", "--configs", "4p-cgct", "--no-write",
            "--reference", str(path),
        ]) == 2
        assert "incompatible host" in capsys.readouterr().err


class TestSanitizedMeasurement:
    def test_check_invariants_is_recorded_and_bit_identical(self):
        plain = measure_config("4p-cgct", 400, repeats=1)
        audited = run_suite(ops_per_processor=400, repeats=1,
                            configs=["4p-cgct"],
                            check_invariants="sampled")
        assert audited["suite"]["check_invariants"] == "sampled"
        assert audited["configs"]["4p-cgct"]["fingerprint"] == \
            plain["fingerprint"]
