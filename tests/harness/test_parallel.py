"""Parallel runner: determinism, caching, retry, and observability.

The determinism tests run the same ≥8-cell experiment grid serially and
through process pools of 2 and 4 workers and require *bit-identical*
results (full ``RunResult`` equality, every field). The failure tests
inject faults through the runner's ``execute`` hook — a picklable
top-level function that consults an on-disk marker so the fault fires a
controlled number of times across processes.
"""

import os
from functools import partial
from pathlib import Path

import pytest

from repro.common.errors import SimulationError
from repro.harness.cache import DiskCache
from repro.harness.experiments import RunOptions, run_experiment
from repro.harness.parallel import (
    ExperimentTask,
    ParallelRunner,
    execute_envelope,
    experiment_tasks,
    replicated_tasks,
    warm_cache,
)
from repro.harness.runcache import RunCache
from repro.harness.runlog import RunLog, read_runlog, summarize
from repro.system.config import SystemConfig


def grid_tasks(seeds=(0, 1), ops=800):
    """2 benchmarks × 2 configs × len(seeds) — 8 cells by default."""
    tasks = []
    for name in ("barnes", "tpc-w"):
        for config in (SystemConfig.paper_baseline(),
                       SystemConfig.paper_cgct(512)):
            for seed in seeds:
                tasks.append(ExperimentTask(name, config, ops, seed=seed,
                                            warmup_fraction=0.25))
    return tasks


def tiny_tasks(count=2):
    return [
        ExperimentTask("barnes", SystemConfig.paper_baseline(), 400,
                       seed=seed, warmup_fraction=0.0)
        for seed in range(count)
    ]


# ----------------------------------------------------------------------
# Determinism: serial == 2 workers == 4 workers, field for field
# ----------------------------------------------------------------------
def test_parallel_matches_serial_bit_for_bit():
    tasks = grid_tasks()
    assert len(tasks) == 8
    serial = ParallelRunner(workers=0).run(tasks)
    two = ParallelRunner(workers=2).run(tasks)
    four = ParallelRunner(workers=4).run(tasks)
    # RunResult is a dataclass: == compares every field, including the
    # full per-category stats and per-processor cycle lists.
    assert serial == two
    assert serial == four


def test_parallel_matches_serial_at_16_processors():
    # The scaling machine: 16 snoopers make grant-order tie-breaks (and
    # the heap scheduler behind them) far busier than the 4p grid above.
    from dataclasses import replace

    from repro.interconnect.topology import Topology

    topology = Topology(cores_per_chip=2, chips_per_switch=2,
                        switches_per_board=2, boards=2)
    tasks = [
        ExperimentTask(name, replace(config, topology=topology), 300,
                       seed=seed, warmup_fraction=0.0)
        for name in ("barnes", "ocean")
        for config in (SystemConfig.paper_baseline(),
                       SystemConfig.paper_cgct(512))
        for seed in (0, 1)
    ]
    serial = ParallelRunner(workers=0).run(tasks)
    fanned = ParallelRunner(workers=4).run(tasks)
    assert serial == fanned


def test_cache_replay_is_identical_and_simulates_nothing(tmp_path):
    tasks = grid_tasks(seeds=(0,))  # 4 cells
    disk = DiskCache(tmp_path / "cache")
    cold_log = tmp_path / "cold.jsonl"
    warm_log = tmp_path / "warm.jsonl"
    with RunLog(cold_log) as log:
        cold = ParallelRunner(workers=2, cache=disk, runlog=log).run(tasks)
    with RunLog(warm_log) as log:
        warm = ParallelRunner(workers=2, cache=disk, runlog=log).run(tasks)
    assert cold == warm
    cold_summary = summarize(read_runlog(cold_log))
    warm_summary = summarize(read_runlog(warm_log))
    assert cold_summary["simulated"] == 4
    assert cold_summary["cache_hits"] == 0
    assert warm_summary["simulated"] == 0
    assert warm_summary["cache_hits"] == 4
    assert len(disk) == 4


def test_replicated_tasks_fix_seeds_at_creation_time():
    config = SystemConfig.paper_cgct(512)
    first = replicated_tasks("barnes", config, 1000, replicates=3)
    again = replicated_tasks("barnes", config, 1000, replicates=3)
    assert first == again
    assert len({task.seed for task in first}) == 3
    other = replicated_tasks("ocean", config, 1000, replicates=3)
    assert {t.seed for t in first}.isdisjoint({t.seed for t in other})


def test_runlog_records_carry_observability_fields(tmp_path):
    log_path = tmp_path / "runs.jsonl"
    with RunLog(log_path) as log:
        ParallelRunner(workers=2, runlog=log).run(tiny_tasks())
    records = read_runlog(log_path)
    assert records[0]["event"] == "sweep-start"
    assert records[-1]["event"] == "sweep-end"
    runs = [r for r in records if r["event"] == "run"]
    assert len(runs) == 2
    for record in runs:
        assert record["status"] == "ok"
        assert record["wall_s"] >= 0
        assert record["worker"] > 0
        assert record["peak_rss_kb"] > 0
        assert record["task"]["benchmark"] == "barnes"


# ----------------------------------------------------------------------
# Failure injection: retry-once, surfacing, cache integrity
# ----------------------------------------------------------------------
def _poisoned_execute(envelope, marker, fail_times):
    """Raise on task 0 until the marker file has counted *fail_times*."""
    path = Path(marker)
    if envelope.index == 0:
        count = int(path.read_text()) if path.exists() else 0
        if count < fail_times:
            path.write_text(str(count + 1))
            raise RuntimeError("injected transient fault")
    return execute_envelope(envelope)


def _dying_execute(envelope, marker):
    """Kill the whole worker process on task 0's first attempt."""
    path = Path(marker)
    if envelope.index == 0 and not path.exists():
        path.write_text("died")
        os._exit(43)
    return execute_envelope(envelope)


def test_worker_exception_retried_once_then_succeeds(tmp_path):
    disk = DiskCache(tmp_path / "cache")
    log_path = tmp_path / "runs.jsonl"
    execute = partial(_poisoned_execute, marker=str(tmp_path / "marker"),
                      fail_times=1)
    with RunLog(log_path) as log:
        runner = ParallelRunner(workers=2, cache=disk, runlog=log,
                                execute=execute)
        results = runner.run(tiny_tasks())
    assert all(result is not None for result in results)
    records = read_runlog(log_path)
    errors = [r for r in records if r.get("status") == "error"]
    assert len(errors) == 1
    assert errors[0]["will_retry"] is True
    assert "injected transient fault" in errors[0]["error"]
    summary = summarize(records)
    assert summary["retries"] == 1
    assert summary["failures"] == 0
    assert summary["completed"] == 2


def test_persistent_failure_surfaced_without_corrupting_cache(tmp_path):
    disk = DiskCache(tmp_path / "cache")
    log_path = tmp_path / "runs.jsonl"
    execute = partial(_poisoned_execute, marker=str(tmp_path / "marker"),
                      fail_times=5)  # more than the retry budget
    with RunLog(log_path) as log:
        runner = ParallelRunner(workers=2, cache=disk, runlog=log,
                                execute=execute)
        with pytest.raises(SimulationError, match="failed after"):
            runner.run(tiny_tasks())
    records = read_runlog(log_path)
    surfaced = [r for r in records
                if r.get("status") == "error" and not r["will_retry"]]
    assert len(surfaced) == 1
    assert "injected transient fault" in surfaced[0]["error"]
    # The healthy task's result is cached intact; the failing attempts
    # left no partial entries behind.
    assert len(disk) == 1
    assert not list((tmp_path / "cache").rglob("*.tmp"))


def test_non_strict_runner_returns_none_for_failed_cells(tmp_path):
    execute = partial(_poisoned_execute, marker=str(tmp_path / "marker"),
                      fail_times=5)
    runner = ParallelRunner(workers=0, strict=False, execute=execute)
    results = runner.run(tiny_tasks())
    assert results[0] is None
    assert results[1] is not None
    assert len(runner.failures) == 1


def test_worker_death_is_retried_on_a_fresh_pool(tmp_path):
    execute = partial(_dying_execute, marker=str(tmp_path / "marker"))
    runner = ParallelRunner(workers=2, execute=execute)
    results = runner.run(tiny_tasks())
    assert all(result is not None for result in results)


# ----------------------------------------------------------------------
# Grid enumeration and cache warming
# ----------------------------------------------------------------------
def test_experiment_tasks_cover_fig8_grid():
    options = RunOptions(ops_per_processor=1000, seeds=2,
                         benchmarks=("barnes", "ocean"),
                         region_sizes=(256, 512))
    tasks = experiment_tasks(["fig8"], options)
    # 2 benchmarks × 2 seeds × (baseline + 2 regions) = 12 unique cells.
    assert len(tasks) == 12
    assert len(set(tasks)) == len(tasks)


def test_experiment_tasks_deduplicate_across_experiments():
    options = RunOptions(ops_per_processor=1000, seeds=1,
                         benchmarks=("barnes",), region_sizes=(512,))
    together = experiment_tasks(["fig2", "fig7", "fig10"], options)
    # fig2's baseline run and fig10's cells are subsets of fig7's.
    assert together == experiment_tasks(["fig7"], options)


def test_static_experiments_need_no_simulations():
    options = RunOptions()
    assert experiment_tasks(["table1", "table2", "table3", "table4", "fig6"],
                            options) == []


def test_warm_cache_preloads_so_experiments_run_from_memory():
    options = RunOptions(ops_per_processor=600, seeds=1,
                         benchmarks=("barnes",), region_sizes=(512,))
    cache = RunCache()
    cells = warm_cache(["fig2"], options, cache, workers=0)
    assert cells == 1
    assert len(cache) == 1
    result = run_experiment("fig2", options, cache)
    assert result.rows
    # The experiment added no new runs: everything came from the warmed
    # cache.
    assert len(cache) == 1


def test_run_experiment_with_workers_matches_serial():
    options = RunOptions(ops_per_processor=600, seeds=1,
                         benchmarks=("barnes",), region_sizes=(512,))
    serial = run_experiment("fig7", options, RunCache())
    fanned = run_experiment("fig7", options, RunCache(), workers=2)
    assert serial.rows == fanned.rows
