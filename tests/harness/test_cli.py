"""The ``python -m repro.harness`` command line."""

import pytest

from repro.harness.__main__ import main


def test_static_experiment_prints_table(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "RCA storage overhead" in out
    assert "16K-Entries, 512-Byte Regions" in out
    assert "5.9%" in out


def test_multiple_experiments(capsys):
    assert main(["table1", "fig6"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig6" in out


def test_quick_flag_and_benchmark_restriction(capsys):
    assert main(["fig2", "--quick", "--ops", "2000",
                 "--benchmarks", "barnes"]) == 0
    out = capsys.readouterr().out
    assert "barnes" in out
    assert "AVERAGE" in out


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["fig99"])


def test_json_and_markdown_export(tmp_path, capsys):
    json_path = tmp_path / "out.json"
    md_path = tmp_path / "out.md"
    assert main(["table1", "--json", str(json_path),
                 "--markdown", str(md_path)]) == 0
    import json

    payload = json.loads(json_path.read_text())
    assert payload[0]["experiment_id"] == "table1"
    assert "table1" in md_path.read_text()


def test_validate_subcommand_clean_matrix(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # bundle dir default is relative
    assert main(["validate", "--benchmarks", "barnes",
                 "--configs", "4p-baseline", "4p-cgct",
                 "--ops", "1200", "--mode", "deep"]) == 0
    out = capsys.readouterr().out
    assert "ok   barnes/4p-baseline" in out
    assert "ok   barnes/4p-cgct" in out
    assert "all 2 cells clean" in out


def test_validate_subcommand_catches_mutation(capsys, tmp_path,
                                              monkeypatch):
    from repro.rca.protocol import RegionProtocol

    monkeypatch.setattr(
        RegionProtocol, "_after_external_request",
        lambda self, state, request, fills=None: state,
    )
    assert main(["validate", "--benchmarks", "barnes",
                 "--configs", "4p-cgct", "--ops", "1500",
                 "--mode", "sampled",
                 "--bundle-dir", str(tmp_path / "diag")]) == 1
    out = capsys.readouterr().out
    assert "FAIL barnes/4p-cgct" in out
    assert "cells FAILED" in out
    assert list((tmp_path / "diag").glob("bundle-*.json"))


def test_check_invariants_flag_runs_clean(capsys, tmp_path):
    assert main(["fig2", "--quick", "--ops", "1200",
                 "--benchmarks", "barnes",
                 "--check-invariants", "sampled", "--no-cache",
                 "--runlog", str(tmp_path / "run.jsonl")]) == 0
    assert "AVERAGE" in capsys.readouterr().out
