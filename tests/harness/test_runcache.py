"""Run memoisation shared across experiments."""

from repro.harness.runcache import RunCache, config_key
from repro.system.config import SystemConfig


def test_config_key_distinguishes_what_matters():
    base = SystemConfig.paper_baseline()
    assert config_key(base) != config_key(SystemConfig.paper_cgct(512))
    assert config_key(SystemConfig.paper_cgct(256)) != config_key(
        SystemConfig.paper_cgct(512))
    assert config_key(SystemConfig.paper_cgct(512, rca_sets=4096)) != config_key(
        SystemConfig.paper_cgct(512))
    assert config_key(base) == config_key(SystemConfig.paper_baseline())


def test_trace_cache_reuses_objects():
    cache = RunCache()
    a = cache.trace("barnes", 500)
    b = cache.trace("barnes", 500)
    assert a is b
    assert cache.trace("barnes", 600) is not a


def test_run_cache_reuses_results():
    cache = RunCache()
    config = SystemConfig.paper_baseline()
    a = cache.run("barnes", config, ops_per_processor=400, warmup_fraction=0.0)
    b = cache.run("barnes", config, ops_per_processor=400, warmup_fraction=0.0)
    assert a is b
    assert len(cache) == 1


def test_run_cache_distinguishes_seeds_and_configs():
    cache = RunCache()
    base = SystemConfig.paper_baseline()
    cache.run("barnes", base, 400, seed=0, warmup_fraction=0.0)
    cache.run("barnes", base, 400, seed=1, warmup_fraction=0.0)
    cache.run("barnes", SystemConfig.paper_cgct(512), 400, seed=0,
              warmup_fraction=0.0)
    assert len(cache) == 3


def test_clear():
    cache = RunCache()
    cache.run("barnes", SystemConfig.paper_baseline(), 400,
              warmup_fraction=0.0)
    cache.clear()
    assert len(cache) == 0


def test_empty_cache_is_not_discarded_by_run_experiment():
    """Regression: an empty RunCache is falsy (len == 0); run_experiment
    must not replace it with a throwaway via ``cache or RunCache()``."""
    from repro.harness.experiments import RunOptions, run_experiment

    cache = RunCache()
    options = RunOptions(ops_per_processor=1500, seeds=1,
                         benchmarks=("barnes",))
    run_experiment("fig2", options, cache)
    assert len(cache) > 0
