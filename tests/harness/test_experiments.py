"""Every registered experiment runs and produces well-formed results."""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    RunOptions,
    run_experiment,
)
from repro.harness.runcache import RunCache

#: Tiny options so the whole registry runs in seconds.
QUICK = RunOptions(
    ops_per_processor=3_000,
    seeds=1,
    warmup_fraction=0.3,
    region_sizes=(512,),
    benchmarks=("barnes", "tpc-w"),
)


@pytest.fixture(scope="module")
def cache():
    return RunCache()


def test_registry_covers_every_artifact():
    paper_artifacts = {
        "table1", "table2", "table3", "table4",
        "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "sec32",
    }
    beyond_paper = {"ablations", "extensions", "scaling", "energy",
                    "sectored"}
    assert set(EXPERIMENTS) == paper_artifacts | beyond_paper


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_renders(experiment_id, cache):
    result = run_experiment(experiment_id, QUICK, cache)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    for row in result.rows:
        assert len(row) == len(result.headers)
    rendered = result.render()
    assert experiment_id in rendered
    assert result.headers[0] in rendered


def test_table1_has_seven_states(cache):
    result = run_experiment("table1", QUICK, cache)
    assert len(result.rows) == 7


def test_table2_has_nine_rows(cache):
    result = run_experiment("table2", QUICK, cache)
    assert len(result.rows) == 9


def test_fig6_has_eight_scenarios(cache):
    result = run_experiment("fig6", QUICK, cache)
    assert len(result.rows) == 8


def test_fig2_includes_average_row(cache):
    result = run_experiment("fig2", QUICK, cache)
    assert result.rows[-1][0] == "AVERAGE"
    assert len(result.rows) == len(QUICK.benchmarks) + 1


def test_fig8_includes_summary_rows(cache):
    result = run_experiment("fig8", QUICK, cache)
    labels = [row[0] for row in result.rows]
    assert "AVERAGE" in labels
    assert "COMMERCIAL" in labels


def test_quick_options_shrink():
    options = RunOptions().quick()
    assert options.ops_per_processor <= 12_000
    assert options.seeds == 1
    assert len(options.benchmarks) == 3


def test_fig2_includes_stacked_chart(cache):
    result = run_experiment("fig2", QUICK, cache)
    assert result.chart is not None
    assert "|" in result.chart
    for name in QUICK.benchmarks:
        assert name in result.chart
    assert result.chart in result.render()


def test_fig8_includes_bar_chart(cache):
    result = run_experiment("fig8", QUICK, cache)
    assert result.chart is not None
    assert "512B" in result.chart
    assert result.chart in result.render()


def test_chartless_results_render_without_chart(cache):
    result = run_experiment("table1", QUICK, cache)
    assert result.chart is None
    assert "None" not in result.render()
