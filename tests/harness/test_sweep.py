"""Configuration sweeps."""

import pytest

from repro.harness.sweep import ConfigSweep, _replace_path
from repro.system.config import SystemConfig


class TestReplacePath:
    def test_top_level_field(self):
        config = _replace_path(SystemConfig.paper_cgct(), "rca_sets", 4096)
        assert config.rca_sets == 4096

    def test_nested_field(self):
        config = _replace_path(
            SystemConfig.paper_cgct(), "geometry.region_bytes", 256)
        assert config.geometry.region_bytes == 256
        assert config.cgct_enabled  # rest untouched

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            _replace_path(SystemConfig(), "bogus_field", 1)


class TestGrid:
    def test_cartesian_product(self):
        sweep = ConfigSweep(
            base=SystemConfig.paper_cgct(),
            axes={"geometry.region_bytes": [256, 512],
                  "rca_sets": [4096, 8192]},
        )
        grid = sweep.grid()
        assert len(grid) == 4
        assert {"geometry.region_bytes": 256, "rca_sets": 8192} in grid

    def test_config_for_applies_all_axes(self):
        sweep = ConfigSweep(
            base=SystemConfig.paper_cgct(),
            axes={"geometry.region_bytes": [256],
                  "timing.store_stall_fraction": [0.5]},
        )
        config = sweep.config_for(sweep.grid()[0])
        assert config.geometry.region_bytes == 256
        assert config.timing.store_stall_fraction == 0.5

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ConfigSweep(SystemConfig(), axes={})


class TestRun:
    def test_records_have_axes_workload_and_metrics(self):
        sweep = ConfigSweep(
            base=SystemConfig.paper_cgct(),
            axes={"geometry.region_bytes": [512, 1024]},
        )
        records = sweep.run(["barnes"], ops_per_processor=2000)
        assert len(records) == 2
        for record in records:
            assert record["workload"] == "barnes"
            assert "runtime_reduction" in record
            assert "fraction_avoided" in record
            assert record["geometry.region_bytes"] in (512, 1024)

    def test_custom_metric(self):
        sweep = ConfigSweep(
            base=SystemConfig.paper_cgct(),
            axes={"geometry.region_bytes": [512]},
            metrics={"broadcasts": lambda b, r: r.stats.total_broadcasts},
        )
        records = sweep.run(["barnes"], ops_per_processor=2000)
        assert records[0]["broadcasts"] > 0
        assert "runtime_reduction" not in records[0]

    def test_best(self):
        records = [
            {"x": 1, "runtime_reduction": 0.05},
            {"x": 2, "runtime_reduction": 0.09},
        ]
        assert ConfigSweep.best(records)["x"] == 2

    def test_best_empty_rejected(self):
        with pytest.raises(ValueError):
            ConfigSweep.best([])
