"""Plain-text renderers."""

from repro.harness.render import render_bar, render_stacked_bar, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "long"], [["xxxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        # Every line is padded to the same width before stripping.
        assert len({len(line) for line in lines}) == 1
        assert lines[0].startswith("a")
        assert "----" in lines[1]

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456]])
        assert "0.123" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestBars:
    def test_bar_full_and_empty(self):
        assert render_bar(1.0, width=10) == "#" * 10
        assert render_bar(0.0, width=10) == "." * 10

    def test_bar_clamps(self):
        assert render_bar(2.0, width=4) == "####"
        assert render_bar(-1.0, width=4) == "...."

    def test_stacked_bar_width_fixed(self):
        bar = render_stacked_bar([0.3, 0.3, 0.2], width=20)
        assert len(bar) == 20

    def test_stacked_bar_never_overflows(self):
        bar = render_stacked_bar([0.9, 0.9], width=10)
        assert len(bar) == 10
