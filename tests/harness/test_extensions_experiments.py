"""Unit-level checks on the beyond-the-paper experiment helpers."""

import pytest

from repro.harness.extensions import (
    _ablation_configs,
    _topology_for,
)
from repro.harness.experiments import RunOptions, run_experiment
from repro.harness.runcache import RunCache, config_key


class TestAblationConfigs:
    def test_variants_are_distinct_runs(self):
        keys = {label: config_key(cfg)
                for label, cfg in _ablation_configs().items()}
        assert len(set(keys.values())) == len(keys), (
            "two ablation variants share a cache key — their results "
            "would silently alias"
        )

    def test_full_config_is_the_paper_system(self):
        full = _ablation_configs()["CGCT (full)"]
        assert full.cgct_enabled
        assert full.geometry.region_bytes == 512
        assert full.self_invalidation
        assert full.two_bit_response

    def test_regionscout_variant_has_no_rca(self):
        scout = _ablation_configs()["RegionScout"]
        assert not scout.cgct_enabled
        assert scout.regionscout_enabled


class TestTopologies:
    def test_known_sizes(self):
        assert _topology_for(4).num_processors == 4
        assert _topology_for(8).num_processors == 8
        assert _topology_for(16).num_processors == 16

    def test_sixteen_spans_two_boards(self):
        topo = _topology_for(16)
        assert topo.boards == 2
        assert topo.num_memory_controllers == 8

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            _topology_for(6)


class TestExperimentPlumbing:
    QUICK = RunOptions(ops_per_processor=2_000, seeds=1,
                       benchmarks=("barnes",))

    def test_energy_rows_per_workload_and_config(self):
        result = run_experiment("energy", self.QUICK, RunCache())
        assert len(result.rows) == 4  # one workload × four configs
        labels = {row[1] for row in result.rows}
        assert "baseline" in labels
        assert "baseline + Jetty" in labels

    def test_sectored_reports_tag_savings_direction(self):
        result = run_experiment("sectored", self.QUICK, RunCache())
        assert result.rows
        # Conventional tag count is 16384 for the 1 MB / 2-way cache.
        assert result.rows[0][2] == 16384
