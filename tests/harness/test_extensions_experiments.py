"""Unit-level checks on the beyond-the-paper experiment helpers."""

import pytest

from repro.harness.extensions import (
    _ablation_configs,
    _extension_configs,
    _topology_for,
)
from repro.harness.experiments import RunOptions, run_experiment
from repro.harness.runcache import RunCache, config_key


class TestAblationConfigs:
    def test_variants_are_distinct_runs(self):
        keys = {label: config_key(cfg)
                for label, cfg in _ablation_configs().items()}
        assert len(set(keys.values())) == len(keys), (
            "two ablation variants share a cache key — their results "
            "would silently alias"
        )

    def test_full_config_is_the_paper_system(self):
        full = _ablation_configs()["CGCT (full)"]
        assert full.cgct_enabled
        assert full.geometry.region_bytes == 512
        assert full.self_invalidation
        assert full.two_bit_response

    def test_regionscout_variant_has_no_rca(self):
        scout = _ablation_configs()["RegionScout"]
        assert not scout.cgct_enabled
        assert scout.regionscout_enabled


class TestTopologies:
    def test_known_sizes(self):
        assert _topology_for(4).num_processors == 4
        assert _topology_for(8).num_processors == 8
        assert _topology_for(16).num_processors == 16

    def test_sixteen_spans_two_boards(self):
        topo = _topology_for(16)
        assert topo.boards == 2
        assert topo.num_memory_controllers == 8

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            _topology_for(6)


class TestExperimentPlumbing:
    QUICK = RunOptions(ops_per_processor=2_000, seeds=1,
                       benchmarks=("barnes",))

    def test_energy_rows_per_workload_and_config(self):
        result = run_experiment("energy", self.QUICK, RunCache())
        assert len(result.rows) == 4  # one workload × four configs
        labels = {row[1] for row in result.rows}
        assert "baseline" in labels
        assert "baseline + Jetty" in labels

    def test_sectored_reports_tag_savings_direction(self):
        result = run_experiment("sectored", self.QUICK, RunCache())
        assert result.rows
        # Conventional tag count is 16384 for the 1 MB / 2-way cache.
        assert result.rows[0][2] == 16384


class TestExtensionConfigs:
    def test_labels_cover_each_feature_and_their_combination(self):
        labels = list(_extension_configs())
        assert labels[0] == "CGCT (as evaluated)"
        assert "+ all three" in labels
        assert len(labels) == 5

    def test_variants_are_distinct_runs(self):
        keys = {label: config_key(cfg)
                for label, cfg in _extension_configs().items()}
        assert len(set(keys.values())) == len(keys)

    def test_all_three_enables_every_section6_feature(self):
        combo = _extension_configs()["+ all three"]
        assert combo.prefetch_region_filter
        assert combo.dram_speculation_filter
        assert combo.region_state_prefetch


class TestWorkloadFallback:
    """Benchmark lists that miss every ABLATION_WORKLOAD fall back to
    the first two requested benchmarks instead of producing empty rows."""

    FALLBACK = RunOptions(ops_per_processor=1_000, seeds=1,
                          benchmarks=("ocean", "specjbb2000"))

    def test_ablations_use_requested_benchmarks(self):
        result = run_experiment("ablations", self.FALLBACK, RunCache())
        assert result.headers[1:] == ["ocean", "specjbb2000"]
        assert all(len(row) == 3 for row in result.rows)

    def test_extensions_use_requested_benchmarks(self):
        result = run_experiment("extensions", self.FALLBACK, RunCache())
        assert result.headers[1:] == ["ocean", "specjbb2000"]
        assert len(result.rows) == 5


class TestScalingThroughCache:
    def test_scaling_rows_and_memoisation(self):
        options = RunOptions(ops_per_processor=1_000, seeds=1,
                             benchmarks=("barnes",))
        cache = RunCache()
        result = run_experiment("scaling", options, cache)
        assert [row[0] for row in result.rows] == [4, 8, 16]
        # Every scaling cell went through the shared cache: 3 machine
        # sizes × (baseline + CGCT).
        runs_after_first = len(cache)
        assert runs_after_first == 6
        # A second invocation replays entirely from cache.
        again = run_experiment("scaling", options, cache)
        assert len(cache) == runs_after_first
        assert again.rows == result.rows
