"""MOESI / MSI state-classification properties."""

from repro.coherence.line_states import L1State, LineState


def test_validity():
    assert not LineState.INVALID.is_valid
    for state in (LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE,
                  LineState.SHARED):
        assert state.is_valid


def test_dirty_states_are_m_and_o():
    assert {s for s in LineState if s.is_dirty} == {
        LineState.MODIFIED, LineState.OWNED,
    }


def test_only_modified_is_writable():
    assert {s for s in LineState if s.is_writable} == {LineState.MODIFIED}


def test_silent_modification_from_m_and_e():
    assert {s for s in LineState if s.can_silently_modify} == {
        LineState.MODIFIED, LineState.EXCLUSIVE,
    }


def test_owner_supplies_on_snoop():
    assert {s for s in LineState if s.supplies_on_snoop} == {
        LineState.MODIFIED, LineState.OWNED,
    }


def test_l1_states():
    assert L1State.MODIFIED.is_writable
    assert not L1State.SHARED.is_writable
    assert not L1State.INVALID.is_valid
    assert L1State.SHARED.is_valid
