"""Request-type classification properties."""

from repro.coherence.requests import RequestType


def test_demand_requests():
    demand = {r for r in RequestType if r.is_demand}
    assert demand == {
        RequestType.READ, RequestType.RFO, RequestType.UPGRADE,
        RequestType.IFETCH,
    }


def test_prefetches():
    assert RequestType.PREFETCH.is_prefetch
    assert RequestType.PREFETCH_EX.is_prefetch
    assert not RequestType.READ.is_prefetch


def test_dcb_ops():
    dcb = {r for r in RequestType if r.is_dcb}
    assert dcb == {RequestType.DCBZ, RequestType.DCBF, RequestType.DCBI}


def test_wants_data():
    wants = {r for r in RequestType if r.wants_data}
    assert wants == {
        RequestType.READ, RequestType.RFO, RequestType.IFETCH,
        RequestType.PREFETCH, RequestType.PREFETCH_EX,
    }


def test_dcbz_does_not_read_memory():
    # DCBZ allocates a zeroed line: no data fetch needed.
    assert not RequestType.DCBZ.wants_data
    assert RequestType.DCBZ.wants_modifiable
    assert RequestType.DCBZ.allocates_line


def test_wants_modifiable():
    modifiable = {r for r in RequestType if r.wants_modifiable}
    assert modifiable == {
        RequestType.RFO, RequestType.UPGRADE, RequestType.DCBZ,
        RequestType.PREFETCH_EX,
    }


def test_invalidates_others_superset_of_modifiable_minus_upgradeless():
    invalidating = {r for r in RequestType if r.invalidates_others}
    assert invalidating == {
        RequestType.RFO, RequestType.UPGRADE, RequestType.DCBZ,
        RequestType.DCBF, RequestType.DCBI, RequestType.PREFETCH_EX,
    }


def test_allocates_line():
    allocating = {r for r in RequestType if r.allocates_line}
    assert allocating == {
        RequestType.READ, RequestType.RFO, RequestType.IFETCH,
        RequestType.DCBZ, RequestType.PREFETCH, RequestType.PREFETCH_EX,
    }


def test_writeback_is_passive():
    wb = RequestType.WRITEBACK
    assert not wb.wants_data
    assert not wb.wants_modifiable
    assert not wb.invalidates_others
    assert not wb.allocates_line
    assert not wb.is_demand
