"""Snoop-response combining (single-owner enforcement)."""

import pytest

from repro.coherence.snoop import (
    LineSnoopResponse,
    SnoopResult,
    combine_line_responses,
)


class TestLineSnoopResponse:
    def test_dirty_implies_cached(self):
        with pytest.raises(ValueError):
            LineSnoopResponse(cached=False, dirty=True)

    def test_supplier_implies_cached(self):
        with pytest.raises(ValueError):
            LineSnoopResponse(cached=False, supplied=True)


class TestCombining:
    def test_empty_is_unshared(self):
        result = combine_line_responses([])
        assert result == SnoopResult()
        assert result.memory_sources_data

    def test_silent_agents_do_not_share(self):
        result = combine_line_responses([
            (1, LineSnoopResponse()),
            (2, LineSnoopResponse()),
        ])
        assert not result.shared

    def test_any_cached_copy_sets_shared(self):
        result = combine_line_responses([
            (1, LineSnoopResponse(cached=True)),
            (2, LineSnoopResponse()),
        ])
        assert result.shared
        assert not result.owned

    def test_dirty_copy_sets_owned(self):
        result = combine_line_responses([
            (1, LineSnoopResponse(cached=True, dirty=True, supplied=True)),
        ])
        assert result.owned
        assert result.supplier == 1
        assert not result.memory_sources_data

    def test_two_suppliers_rejected(self):
        with pytest.raises(ValueError, match="single-owner"):
            combine_line_responses([
                (1, LineSnoopResponse(cached=True, dirty=True, supplied=True)),
                (2, LineSnoopResponse(cached=True, dirty=True, supplied=True)),
            ])

    def test_sharers_plus_one_owner(self):
        result = combine_line_responses([
            (1, LineSnoopResponse(cached=True)),
            (2, LineSnoopResponse(cached=True, dirty=True, supplied=True)),
            (3, LineSnoopResponse(cached=True)),
        ])
        assert result.shared and result.owned and result.supplier == 2
