"""MOESI protocol tables: fills, permissions, snoop transitions."""

import pytest

from repro.coherence.line_states import LineState
from repro.coherence.moesi import (
    SnoopAction,
    fill_state_for,
    snoop_transition,
    state_permits,
)
from repro.coherence.requests import RequestType
from repro.coherence.snoop import SnoopResult

READ_LIKE = (RequestType.READ, RequestType.IFETCH, RequestType.PREFETCH)
VALID = (LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE,
         LineState.SHARED)


class TestStatePermits:
    def test_reads_satisfied_by_any_valid_copy(self):
        for state in VALID:
            for request in READ_LIKE:
                assert state_permits(state, request)

    def test_reads_not_satisfied_by_invalid(self):
        for request in READ_LIKE:
            assert not state_permits(LineState.INVALID, request)

    def test_writes_need_silent_modifiability(self):
        assert state_permits(LineState.MODIFIED, RequestType.RFO)
        assert state_permits(LineState.EXCLUSIVE, RequestType.RFO)
        assert not state_permits(LineState.SHARED, RequestType.RFO)
        assert not state_permits(LineState.OWNED, RequestType.RFO)

    def test_upgrades_and_dcb_never_satisfied_locally(self):
        for state in VALID:
            assert not state_permits(state, RequestType.UPGRADE)
            assert not state_permits(state, RequestType.DCBZ)


class TestFillStates:
    def test_read_fills_exclusive_when_unshared(self):
        assert fill_state_for(RequestType.READ, SnoopResult()) is LineState.EXCLUSIVE

    def test_read_fills_shared_when_shared(self):
        result = SnoopResult(shared=True)
        assert fill_state_for(RequestType.READ, result) is LineState.SHARED

    def test_ifetch_always_fills_shared(self):
        assert fill_state_for(RequestType.IFETCH, SnoopResult()) is LineState.SHARED

    def test_write_requests_fill_modified(self):
        for request in (RequestType.RFO, RequestType.UPGRADE, RequestType.DCBZ):
            assert fill_state_for(request, SnoopResult()) is LineState.MODIFIED

    def test_exclusive_prefetch_fills_exclusive(self):
        assert (
            fill_state_for(RequestType.PREFETCH_EX, SnoopResult(shared=True))
            is LineState.EXCLUSIVE
        )

    def test_kill_requests_leave_nothing(self):
        for request in (RequestType.DCBF, RequestType.DCBI, RequestType.WRITEBACK):
            assert fill_state_for(request, SnoopResult()) is LineState.INVALID


class TestSnoopTransitions:
    def test_invalid_copy_unaffected(self):
        for request in RequestType:
            action = snoop_transition(LineState.INVALID, request)
            assert action.next_state is LineState.INVALID
            assert not action.supplies_data

    def test_writeback_never_disturbs_remote_copies(self):
        for state in VALID:
            action = snoop_transition(state, RequestType.WRITEBACK)
            assert action.next_state is state

    def test_read_demotes_modified_to_owned_and_supplies(self):
        action = snoop_transition(LineState.MODIFIED, RequestType.READ)
        assert action == SnoopAction(LineState.OWNED, supplies_data=True)

    def test_read_keeps_owned_supplying(self):
        action = snoop_transition(LineState.OWNED, RequestType.READ)
        assert action == SnoopAction(LineState.OWNED, supplies_data=True)

    def test_read_demotes_exclusive_to_shared_silently(self):
        action = snoop_transition(LineState.EXCLUSIVE, RequestType.READ)
        assert action == SnoopAction(LineState.SHARED)

    def test_read_leaves_shared(self):
        action = snoop_transition(LineState.SHARED, RequestType.READ)
        assert action.next_state is LineState.SHARED

    def test_rfo_invalidates_and_owner_forwards(self):
        action = snoop_transition(LineState.MODIFIED, RequestType.RFO)
        assert action.next_state is LineState.INVALID
        assert action.supplies_data
        assert not action.writes_back

    def test_rfo_invalidates_clean_without_data(self):
        for state in (LineState.EXCLUSIVE, LineState.SHARED):
            action = snoop_transition(state, RequestType.RFO)
            assert action.next_state is LineState.INVALID
            assert not action.supplies_data

    def test_dcbz_pushes_dirty_data_to_memory(self):
        # The requestor zeroes the line: it does not want the data, but
        # the model conservatively writes the dirty copy back.
        action = snoop_transition(LineState.MODIFIED, RequestType.DCBZ)
        assert action.next_state is LineState.INVALID
        assert not action.supplies_data
        assert action.writes_back

    def test_dcbf_flushes_dirty_to_memory(self):
        action = snoop_transition(LineState.OWNED, RequestType.DCBF)
        assert action.writes_back
        assert action.next_state is LineState.INVALID

    def test_dcbi_discards_dirty_data(self):
        action = snoop_transition(LineState.MODIFIED, RequestType.DCBI)
        assert action.next_state is LineState.INVALID
        assert not action.writes_back  # invalidate = data intentionally lost

    def test_upgrade_invalidates_stale_sharers(self):
        action = snoop_transition(LineState.SHARED, RequestType.UPGRADE)
        assert action.next_state is LineState.INVALID

    def test_prefetch_behaves_like_read(self):
        for state in VALID:
            assert (
                snoop_transition(state, RequestType.PREFETCH)
                == snoop_transition(state, RequestType.READ)
            )

    def test_exclusive_prefetch_behaves_like_rfo(self):
        for state in VALID:
            assert (
                snoop_transition(state, RequestType.PREFETCH_EX)
                == snoop_transition(state, RequestType.RFO)
            )

    def test_closure_over_state_space(self):
        # Every (state, request) pair must yield a defined action.
        for state in LineState:
            for request in RequestType:
                action = snoop_transition(state, request)
                assert isinstance(action, SnoopAction)
