"""Shared fixtures: small deterministic machines and trace helpers.

Unit tests use scaled-down caches/RCAs (so evictions and inclusion
effects appear with few accesses), zero perturbation, and no prefetching
unless the test is about prefetching — keeping every assertion exact.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.memory.geometry import Geometry
from repro.system.config import SystemConfig, TimingParameters
from repro.system.machine import Machine
from repro.workloads.trace import MultiTrace, Trace, TraceOp


@pytest.fixture
def geometry() -> Geometry:
    return Geometry()


def make_config(
    cgct: bool = True,
    region_bytes: int = 512,
    l2_bytes: int = 64 * 1024,
    l1_bytes: int = 4 * 1024,
    rca_sets: int = 64,
    prefetch: bool = False,
    perturbation: int = 0,
    **overrides,
) -> SystemConfig:
    """A small, fully deterministic machine configuration for unit tests."""
    base = SystemConfig(
        geometry=Geometry(region_bytes=region_bytes),
        cgct_enabled=cgct,
        l1i_bytes=l1_bytes,
        l1d_bytes=l1_bytes,
        l2_bytes=l2_bytes,
        rca_sets=rca_sets,
        prefetch_enabled=prefetch,
        timing=TimingParameters(perturbation_cycles=perturbation),
    )
    if overrides:
        base = replace(base, **overrides)
    return base


@pytest.fixture
def cgct_machine() -> Machine:
    return Machine(make_config(cgct=True))


@pytest.fixture
def baseline_machine() -> Machine:
    return Machine(make_config(cgct=False))


def trace_of(records, name: str = "test") -> Trace:
    """Build a trace from (op, address, gap) tuples."""
    return Trace.from_records(records, name=name)


def multitrace(per_proc_records, name: str = "test") -> MultiTrace:
    return MultiTrace(
        per_processor=[
            trace_of(records, name=f"{name}.p{i}")
            for i, records in enumerate(per_proc_records)
        ],
        name=name,
    )


def loads(addresses, gap: int = 0):
    """(LOAD, addr, gap) records for each address."""
    return [(TraceOp.LOAD, a, gap) for a in addresses]


def stores(addresses, gap: int = 0):
    return [(TraceOp.STORE, a, gap) for a in addresses]
