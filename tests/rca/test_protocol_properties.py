"""Property-based tests: the region protocol is closed and monotone."""

from hypothesis import given, strategies as st

from repro.coherence.line_states import LineState
from repro.coherence.requests import RequestType
from repro.common.errors import ProtocolError
from repro.rca.protocol import RegionProtocol
from repro.rca.response import RegionSnoopResponse
from repro.rca.states import ExternalPart, RegionState

states = st.sampled_from(list(RegionState))
valid_states = st.sampled_from([s for s in RegionState if s.is_valid])
requests = st.sampled_from(list(RequestType))
read_like = st.sampled_from(
    [RequestType.READ, RequestType.IFETCH, RequestType.PREFETCH]
)
fill_states = st.sampled_from(list(LineState))
responses = st.builds(
    RegionSnoopResponse,
    clean=st.booleans(),
    dirty=st.booleans(),
)
maybe_exclusive = st.sampled_from([None, True, False])
protocols = st.sampled_from([RegionProtocol(True), RegionProtocol(False)])


@given(protocols, states, requests, fill_states,
       st.one_of(st.none(), responses))
def test_local_transitions_closed_or_explicit_error(
    protocol, state, request, fill_state, response
):
    """Every local event either yields a RegionState or raises ProtocolError
    (never a stray exception)."""
    try:
        result = protocol.after_local_request(state, request, fill_state, response)
    except ProtocolError:
        return
    assert isinstance(result, RegionState)


@given(protocols, states, requests, maybe_exclusive)
def test_external_transitions_closed(protocol, state, request, exclusive):
    try:
        result = protocol.after_external_request(state, request, exclusive)
    except ProtocolError:
        return
    assert isinstance(result, RegionState)


@given(protocols, valid_states, requests, maybe_exclusive)
def test_external_requests_never_improve_knowledge(
    protocol, state, request, exclusive
):
    """Figure 5: external traffic can only make the external letter more
    conservative (NONE → CLEAN → DIRTY), never less."""
    try:
        after = protocol.after_external_request(state, request, exclusive)
    except ProtocolError:
        return
    if not after.is_valid:
        return
    order = [ExternalPart.NONE, ExternalPart.CLEAN, ExternalPart.DIRTY]
    assert order.index(after.external_part) >= order.index(state.external_part)


@given(protocols, valid_states, requests, maybe_exclusive)
def test_external_requests_never_change_local_letter(
    protocol, state, request, exclusive
):
    try:
        after = protocol.after_external_request(state, request, exclusive)
    except ProtocolError:
        return
    if after.is_valid:
        assert after.local_part is state.local_part


@given(protocols, valid_states, st.sampled_from(
    [RequestType.READ, RequestType.RFO, RequestType.IFETCH,
     RequestType.UPGRADE, RequestType.DCBZ]),
    fill_states, responses)
def test_broadcast_rebaselines_external_letter(
    protocol, state, request, fill_state, response
):
    """Figure 4: after a broadcast, the external letter equals exactly what
    the (possibly collapsed) response reported."""
    try:
        after = protocol.after_local_request(state, request, fill_state, response)
    except ProtocolError:
        return
    if not after.is_valid:
        return
    expected = response if protocol.two_bit else response.collapsed()
    assert after.external_part is expected.external_part


@given(valid_states, st.integers(0, 8))
def test_response_matches_local_letter(state, line_count):
    protocol = RegionProtocol()
    outcome = protocol.response_for(state, line_count)
    if line_count == 0:
        assert outcome.self_invalidate
        assert not outcome.response.cached
    else:
        assert outcome.response.cached
        assert outcome.response.dirty == (state.local_part.value == "D")


@given(states, requests)
def test_broadcast_decision_total(state, request):
    assert isinstance(state.needs_broadcast(request), bool)


@given(valid_states, requests)
def test_no_request_completion_implies_no_broadcast(state, request):
    if state.completes_without_request(request):
        assert not state.needs_broadcast(request)
