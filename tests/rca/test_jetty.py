"""Jetty snoop filter: soundness and integration."""

import pytest

from repro.common.errors import ConfigurationError
from repro.rca.jetty import JettySnoopFilter
from repro.system.machine import Machine

from tests.conftest import make_config


class TestFilterSoundness:
    def test_empty_filter_proves_absence(self):
        jetty = JettySnoopFilter(entries=64)
        assert not jetty.may_cache_line(1234)
        assert jetty.filter_rate == 1.0

    def test_cached_line_always_maybe_present(self):
        jetty = JettySnoopFilter(entries=64)
        jetty.line_allocated(42)
        assert jetty.may_cache_line(42)

    def test_never_false_absent_under_collisions(self):
        jetty = JettySnoopFilter(entries=4)  # force collisions
        lines = list(range(200))
        for line in lines:
            jetty.line_allocated(line)
        for line in lines:
            assert jetty.may_cache_line(line)

    def test_removal_restores_absence(self):
        jetty = JettySnoopFilter(entries=64)
        jetty.line_allocated(42)
        jetty.line_removed(42)
        assert not jetty.may_cache_line(42)

    def test_underflow_detected(self):
        jetty = JettySnoopFilter(entries=64)
        with pytest.raises(ValueError):
            jetty.line_removed(42)

    def test_two_hash_functions_filter_better_than_one_bucket(self):
        # A line colliding with a cached one in ONE hash can still be
        # proven absent by the other.
        jetty = JettySnoopFilter(entries=8)
        jetty.line_allocated(0)
        filtered_before = jetty.filtered
        for probe in range(1, 64):
            jetty.may_cache_line(probe)
        assert jetty.filtered > filtered_before

    def test_validation_and_storage(self):
        with pytest.raises(ConfigurationError):
            JettySnoopFilter(entries=100)
        assert JettySnoopFilter(entries=512).storage_bits == 8192


class TestMachineIntegration:
    def test_filtered_snoops_skip_tag_probes(self):
        machine = Machine(make_config(cgct=False, jetty_enabled=True))
        machine.load(0, 0x1000, now=0)
        machine.load(1, 0x200000, now=1000)  # disjoint lines
        # Each broadcast snooped three nodes whose Jettys were empty for
        # the line: zero actual tag probes.
        assert sum(n.l2.snoop_probes for n in machine.nodes) == 0
        assert all(n.jetty.filtered > 0 for n in machine.nodes
                   if n.jetty.queries)

    def test_shared_lines_still_probe_and_stay_coherent(self):
        machine = Machine(make_config(cgct=False, jetty_enabled=True))
        machine.store(0, 0x1000, now=0)
        machine.load(1, 0x1000, now=1000)    # must find proc 0's M copy
        assert machine.c2c_transfers == 1
        machine.check_coherence_invariants()

    def test_jetty_composes_with_cgct(self):
        machine = Machine(make_config(cgct=True, rca_sets=1024,
                                      jetty_enabled=True))
        machine.load(0, 0x1000, now=0)
        machine.load(0, 0x1040, now=1000)
        machine.store(1, 0x1000, now=2000)
        machine.check_coherence_invariants()
        assert machine.nodes[0].rca is not None
        assert machine.nodes[0].jetty is not None

    def test_jetty_does_not_avoid_broadcasts(self):
        plain = Machine(make_config(cgct=False))
        jetty = Machine(make_config(cgct=False, jetty_enabled=True))
        for machine in (plain, jetty):
            for i in range(12):
                machine.load(0, 0x3000 + i * 64, now=i * 1000)
        # Section 2: "Jetty does not avoid sending requests".
        assert jetty.bus.broadcasts == plain.bus.broadcasts
        assert jetty.stats.total_directs == 0

    def test_jetty_outcomes_match_unfiltered_machine(self):
        plain = Machine(make_config(cgct=False, prefetch=False))
        filtered = Machine(make_config(cgct=False, prefetch=False,
                                       jetty_enabled=True))
        sequence = [
            (0, "load", 0x1000), (1, "store", 0x1000), (2, "load", 0x1040),
            (0, "store", 0x1040), (3, "load", 0x1000), (1, "dcbz", 0x2000),
        ]
        for now, (proc, op, address) in enumerate(sequence):
            getattr(plain, op)(proc, address, now * 1000)
            getattr(filtered, op)(proc, address, now * 1000)
        for node_a, node_b in zip(plain.nodes, filtered.nodes):
            assert dict(node_a.l2.resident_lines()) == \
                dict(node_b.l2.resident_lines())
