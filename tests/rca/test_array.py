"""Region Coherence Array: storage, line counts, inclusion, replacement."""

import pytest

from repro.common.errors import ProtocolError
from repro.memory.geometry import Geometry
from repro.rca.array import RegionCoherenceArray
from repro.rca.states import RegionState


@pytest.fixture
def geom():
    return Geometry()  # 512B regions, 8 lines per region


@pytest.fixture
def rca(geom):
    return RegionCoherenceArray(geom, num_sets=4, ways=2, name="rcatest")


def region_line(geom, region, index=0):
    """Line number *index* of region number *region*."""
    return list(geom.lines_in_region(region))[index]


class TestLookups:
    def test_miss_then_hit(self, rca):
        assert rca.lookup(5) is None
        rca.insert(5, RegionState.CLEAN_INVALID, home_mc=1)
        entry = rca.lookup(5)
        assert entry is not None
        assert entry.state is RegionState.CLEAN_INVALID
        assert entry.home_mc == 1
        assert (rca.hits, rca.misses) == (1, 1)

    def test_probe_has_no_side_effects(self, rca):
        rca.insert(5, RegionState.CLEAN_INVALID, home_mc=0)
        rca.probe(5)
        rca.probe(6)
        assert (rca.hits, rca.misses) == (0, 0)

    def test_insert_invalid_rejected(self, rca):
        with pytest.raises(ValueError):
            rca.insert(5, RegionState.INVALID, home_mc=0)


class TestLineCounts:
    def test_allocation_increments(self, rca, geom):
        rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        rca.line_allocated(region_line(geom, 5))
        rca.line_allocated(region_line(geom, 5, 1))
        assert rca.probe(5).line_count == 2

    def test_removal_decrements(self, rca, geom):
        rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        rca.line_allocated(region_line(geom, 5))
        rca.line_removed(region_line(geom, 5))
        assert rca.probe(5).line_count == 0

    def test_allocation_without_entry_is_inclusion_violation(self, rca, geom):
        with pytest.raises(ProtocolError):
            rca.line_allocated(region_line(geom, 5))

    def test_removal_without_entry_is_inclusion_violation(self, rca, geom):
        with pytest.raises(ProtocolError):
            rca.line_removed(region_line(geom, 5))

    def test_count_cannot_go_negative(self, rca, geom):
        rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        with pytest.raises(ProtocolError):
            rca.line_removed(region_line(geom, 5))

    def test_count_cannot_exceed_lines_per_region(self, rca, geom):
        rca.insert(5, RegionState.DIRTY_INVALID, home_mc=0)
        for i in range(geom.lines_per_region):
            rca.line_allocated(region_line(geom, 5, i))
        with pytest.raises(ProtocolError):
            rca.line_allocated(region_line(geom, 5))


class TestReplacement:
    def test_no_victim_when_way_free(self, rca):
        rca.insert(0, RegionState.CLEAN_INVALID, home_mc=0)
        assert rca.victim_for(4) is None  # set 0 has a free way

    def test_victim_prefers_empty_region(self, rca, geom):
        # Regions 0, 4, 8 all map to set 0 (4 sets).
        rca.insert(0, RegionState.CLEAN_INVALID, home_mc=0)
        rca.insert(4, RegionState.CLEAN_INVALID, home_mc=0)
        rca.line_allocated(region_line(geom, 0))  # region 0 now non-empty
        victim = rca.victim_for(8)
        assert victim.region == 4  # empty beats LRU

    def test_victim_falls_back_to_lru(self, rca, geom):
        rca.insert(0, RegionState.CLEAN_INVALID, home_mc=0)
        rca.insert(4, RegionState.CLEAN_INVALID, home_mc=0)
        rca.line_allocated(region_line(geom, 0))
        rca.line_allocated(region_line(geom, 4))
        assert rca.victim_for(8).region == 0

    def test_evict_requires_flushed_lines(self, rca, geom):
        rca.insert(0, RegionState.DIRTY_INVALID, home_mc=0)
        rca.line_allocated(region_line(geom, 0))
        with pytest.raises(ProtocolError):
            rca.evict(0)
        rca.line_removed(region_line(geom, 0))
        entry = rca.evict(0)
        assert entry.region == 0
        assert rca.evictions == 1

    def test_evict_untracked_raises(self, rca):
        with pytest.raises(KeyError):
            rca.evict(0)

    def test_eviction_histogram(self, rca):
        rca.note_eviction_line_count(0)
        rca.note_eviction_line_count(0)
        rca.note_eviction_line_count(2)
        assert rca.eviction_fraction_with_count(0) == pytest.approx(2 / 3)
        assert rca.eviction_fraction_with_count(2) == pytest.approx(1 / 3)
        assert rca.eviction_fraction_with_count(5) == 0.0

    def test_eviction_fraction_empty(self, rca):
        assert rca.eviction_fraction_with_count(0) == 0.0


class TestSelfInvalidation:
    def test_invalidate_empty_region(self, rca):
        rca.insert(3, RegionState.DIRTY_DIRTY, home_mc=0)
        entry = rca.invalidate(3)
        assert entry.region == 3
        assert rca.probe(3) is None
        assert rca.self_invalidations == 1

    def test_invalidate_untracked_is_noop(self, rca):
        assert rca.invalidate(3) is None
        assert rca.self_invalidations == 0

    def test_invalidate_with_lines_is_protocol_error(self, rca, geom):
        rca.insert(3, RegionState.DIRTY_DIRTY, home_mc=0)
        rca.line_allocated(region_line(geom, 3))
        with pytest.raises(ProtocolError):
            rca.invalidate(3)


class TestStatistics:
    def test_mean_line_count(self, rca, geom):
        rca.insert(0, RegionState.CLEAN_INVALID, home_mc=0)
        rca.insert(1, RegionState.CLEAN_INVALID, home_mc=0)
        rca.insert(2, RegionState.CLEAN_INVALID, home_mc=0)
        for i in range(4):
            rca.line_allocated(region_line(geom, 0, i))
        for i in range(2):
            rca.line_allocated(region_line(geom, 1, i))
        assert rca.mean_line_count(nonzero_only=True) == pytest.approx(3.0)
        assert rca.mean_line_count(nonzero_only=False) == pytest.approx(2.0)

    def test_mean_line_count_empty_array(self, rca):
        assert rca.mean_line_count() == 0.0

    def test_reset_stats_preserves_entries(self, rca):
        rca.insert(0, RegionState.CLEAN_INVALID, home_mc=0)
        rca.lookup(0)
        rca.reset_stats()
        assert rca.hits == 0
        assert rca.probe(0) is not None

    def test_num_entries(self, rca):
        assert rca.num_entries == 8
