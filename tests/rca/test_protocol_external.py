"""Region protocol: external requests and RCA snoops (Figure 5)."""

import pytest

from repro.coherence.requests import RequestType
from repro.common.errors import ProtocolError
from repro.rca.protocol import RegionProtocol
from repro.rca.states import ExternalPart, RegionState


@pytest.fixture
def protocol():
    return RegionProtocol()


class TestExternalReads:
    def test_shared_read_downgrades_exclusive_to_clean(self, protocol):
        state = protocol.after_external_request(
            RegionState.CLEAN_INVALID, RequestType.READ,
            requestor_fills_exclusive=False)
        assert state is RegionState.CLEAN_CLEAN

    def test_exclusive_read_downgrades_to_dirty(self, protocol):
        # "If the read is going to get an exclusive copy... transition to
        # an externally dirty region state."
        state = protocol.after_external_request(
            RegionState.DIRTY_INVALID, RequestType.READ,
            requestor_fills_exclusive=True)
        assert state is RegionState.DIRTY_DIRTY

    def test_unknown_exclusivity_is_conservative(self, protocol):
        state = protocol.after_external_request(
            RegionState.CLEAN_INVALID, RequestType.READ,
            requestor_fills_exclusive=None)
        assert state is RegionState.CLEAN_DIRTY

    def test_ifetch_downgrades_like_shared_read(self, protocol):
        state = protocol.after_external_request(
            RegionState.DIRTY_INVALID, RequestType.IFETCH,
            requestor_fills_exclusive=False)
        assert state is RegionState.DIRTY_CLEAN

    def test_shared_read_cannot_improve_dirty_knowledge(self, protocol):
        # The external letter only worsens between our own broadcasts.
        state = protocol.after_external_request(
            RegionState.CLEAN_DIRTY, RequestType.READ,
            requestor_fills_exclusive=False)
        assert state is RegionState.CLEAN_DIRTY


class TestExternalInvalidations:
    @pytest.mark.parametrize("request_type", [
        RequestType.RFO, RequestType.UPGRADE, RequestType.DCBZ,
        RequestType.PREFETCH_EX,
    ])
    def test_modifiable_requests_force_externally_dirty(self, protocol,
                                                        request_type):
        for start in (RegionState.CLEAN_INVALID, RegionState.CLEAN_CLEAN,
                      RegionState.DIRTY_CLEAN):
            state = protocol.after_external_request(start, request_type)
            assert state.external_part is ExternalPart.DIRTY
            assert state.local_part is start.local_part

    def test_dcbf_leaves_state(self, protocol):
        state = protocol.after_external_request(
            RegionState.DIRTY_CLEAN, RequestType.DCBF)
        assert state is RegionState.DIRTY_CLEAN

    def test_dcbi_leaves_state(self, protocol):
        state = protocol.after_external_request(
            RegionState.CLEAN_CLEAN, RequestType.DCBI)
        assert state is RegionState.CLEAN_CLEAN

    def test_writeback_leaves_state(self, protocol):
        state = protocol.after_external_request(
            RegionState.CLEAN_DIRTY, RequestType.WRITEBACK)
        assert state is RegionState.CLEAN_DIRTY


class TestUntrackedRegions:
    def test_invalid_unaffected_by_everything(self, protocol):
        for request in RequestType:
            state = protocol.after_external_request(
                RegionState.INVALID, request, requestor_fills_exclusive=True)
            assert state is RegionState.INVALID


class TestRCASnoopResponses:
    def test_untracked_region_reports_nothing(self, protocol):
        outcome = protocol.response_for(RegionState.INVALID, 0)
        assert not outcome.response.cached
        assert not outcome.self_invalidate

    def test_clean_region_reports_region_clean(self, protocol):
        outcome = protocol.response_for(RegionState.CLEAN_CLEAN, 3)
        assert outcome.response.clean
        assert not outcome.response.dirty

    def test_dirty_region_reports_region_dirty(self, protocol):
        outcome = protocol.response_for(RegionState.DIRTY_INVALID, 1)
        assert outcome.response.dirty

    def test_empty_region_self_invalidates(self, protocol):
        # Section 3.1: line count zero ⇒ invalidate and report no copies,
        # letting the requestor obtain an exclusive region.
        for state in (RegionState.CLEAN_CLEAN, RegionState.DIRTY_DIRTY,
                      RegionState.DIRTY_INVALID):
            outcome = protocol.response_for(state, 0)
            assert outcome.self_invalidate
            assert not outcome.response.cached

    def test_negative_count_is_protocol_error(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.response_for(RegionState.CLEAN_CLEAN, -1)

    def test_one_bit_mode_reports_everything_dirty(self):
        protocol = RegionProtocol(two_bit=False)
        outcome = protocol.response_for(RegionState.CLEAN_CLEAN, 2)
        assert outcome.response.dirty
        assert not outcome.response.clean


class TestOneBitExternal:
    def test_shared_read_still_forces_dirty(self):
        protocol = RegionProtocol(two_bit=False)
        state = protocol.after_external_request(
            RegionState.CLEAN_INVALID, RequestType.READ,
            requestor_fills_exclusive=False)
        assert state is RegionState.CLEAN_DIRTY
