"""Region protocol: local requests (Figures 3 and 4)."""

import pytest

from repro.coherence.line_states import LineState
from repro.coherence.requests import RequestType
from repro.common.errors import ProtocolError
from repro.rca.protocol import RegionProtocol
from repro.rca.response import RegionSnoopResponse
from repro.rca.states import RegionState

NONE = RegionSnoopResponse()
CLEAN = RegionSnoopResponse(clean=True)
DIRTY = RegionSnoopResponse(dirty=True)


@pytest.fixture
def protocol():
    return RegionProtocol()


class TestAllocationFromInvalid:
    """Figure 3, left: the first broadcast allocates the region."""

    @pytest.mark.parametrize("response,expected", [
        (NONE, RegionState.CLEAN_INVALID),
        (CLEAN, RegionState.CLEAN_CLEAN),
        (DIRTY, RegionState.CLEAN_DIRTY),
    ])
    def test_shared_read_goes_clean(self, protocol, response, expected):
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.READ, LineState.SHARED, response)
        assert state is expected

    @pytest.mark.parametrize("response,expected", [
        (NONE, RegionState.CLEAN_INVALID),
        (CLEAN, RegionState.CLEAN_CLEAN),
        (DIRTY, RegionState.CLEAN_DIRTY),
    ])
    def test_ifetch_goes_clean(self, protocol, response, expected):
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.IFETCH, LineState.SHARED, response)
        assert state is expected

    @pytest.mark.parametrize("response,expected", [
        (NONE, RegionState.DIRTY_INVALID),
        (CLEAN, RegionState.DIRTY_CLEAN),
        (DIRTY, RegionState.DIRTY_DIRTY),
    ])
    def test_exclusive_read_goes_dirty(self, protocol, response, expected):
        # "Reads that bring data into the cache in an exclusive state
        # transition the region to DI, DC, or DD."
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.READ, LineState.EXCLUSIVE, response)
        assert state is expected

    @pytest.mark.parametrize("response,expected", [
        (NONE, RegionState.DIRTY_INVALID),
        (CLEAN, RegionState.DIRTY_CLEAN),
        (DIRTY, RegionState.DIRTY_DIRTY),
    ])
    def test_rfo_goes_dirty(self, protocol, response, expected):
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.RFO, LineState.MODIFIED, response)
        assert state is expected

    def test_dcbz_goes_dirty(self, protocol):
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.DCBZ, LineState.MODIFIED, NONE)
        assert state is RegionState.DIRTY_INVALID


class TestSilentCIToDI:
    """Figure 3's dashed edge: CI changes to DI with no broadcast."""

    def test_direct_exclusive_read(self, protocol):
        state = protocol.after_local_request(
            RegionState.CLEAN_INVALID, RequestType.READ,
            LineState.EXCLUSIVE, None)
        assert state is RegionState.DIRTY_INVALID

    def test_direct_rfo(self, protocol):
        state = protocol.after_local_request(
            RegionState.CLEAN_INVALID, RequestType.RFO,
            LineState.MODIFIED, None)
        assert state is RegionState.DIRTY_INVALID

    def test_no_request_upgrade(self, protocol):
        state = protocol.after_local_request(
            RegionState.CLEAN_INVALID, RequestType.UPGRADE,
            LineState.MODIFIED, None)
        assert state is RegionState.DIRTY_INVALID

    def test_ifetch_does_not_dirty_ci(self, protocol):
        state = protocol.after_local_request(
            RegionState.CLEAN_INVALID, RequestType.IFETCH,
            LineState.SHARED, None)
        assert state is RegionState.CLEAN_INVALID


class TestLocalLetterIsSticky:
    def test_dirty_region_stays_dirty_on_shared_read(self, protocol):
        state = protocol.after_local_request(
            RegionState.DIRTY_INVALID, RequestType.READ,
            LineState.EXCLUSIVE, None)
        assert state is RegionState.DIRTY_INVALID

    def test_dc_stays_dirty_on_ifetch(self, protocol):
        state = protocol.after_local_request(
            RegionState.DIRTY_CLEAN, RequestType.IFETCH,
            LineState.SHARED, None)
        assert state is RegionState.DIRTY_CLEAN


class TestResponseUpgrades:
    """Figure 4: broadcasts refresh the external letter for free."""

    def test_cc_rfo_upgrades_to_di_when_others_left(self, protocol):
        # The paper's worked example: RFO from CC, response shows no
        # sharers remain ⇒ DI.
        state = protocol.after_local_request(
            RegionState.CLEAN_CLEAN, RequestType.RFO, LineState.MODIFIED, NONE)
        assert state is RegionState.DIRTY_INVALID

    def test_cc_rfo_to_dc_when_clean_sharers_remain(self, protocol):
        state = protocol.after_local_request(
            RegionState.CLEAN_CLEAN, RequestType.RFO, LineState.MODIFIED, CLEAN)
        assert state is RegionState.DIRTY_CLEAN

    def test_cd_read_rescued_to_ci_when_migratory_data_left(self, protocol):
        # Externally-dirty regions whose remote copies evaporated (the
        # migratory pattern) upgrade on the next forced broadcast.
        state = protocol.after_local_request(
            RegionState.CLEAN_DIRTY, RequestType.READ, LineState.SHARED, NONE)
        assert state is RegionState.CLEAN_INVALID

    def test_dd_upgrade_to_di(self, protocol):
        state = protocol.after_local_request(
            RegionState.DIRTY_DIRTY, RequestType.UPGRADE,
            LineState.MODIFIED, NONE)
        assert state is RegionState.DIRTY_INVALID

    def test_response_can_also_worsen_external_letter(self, protocol):
        state = protocol.after_local_request(
            RegionState.CLEAN_CLEAN, RequestType.READ, LineState.SHARED, DIRTY)
        assert state is RegionState.CLEAN_DIRTY


class TestNonAllocatingRequests:
    def test_writeback_never_changes_region_state(self, protocol):
        for state in RegionState:
            after = protocol.after_local_request(
                state, RequestType.WRITEBACK, LineState.INVALID, None)
            assert after is state

    def test_dcbf_keeps_untracked_region_untracked(self, protocol):
        after = protocol.after_local_request(
            RegionState.INVALID, RequestType.DCBF, LineState.INVALID, DIRTY)
        assert after is RegionState.INVALID

    def test_dcbf_harvests_response_in_tracked_region(self, protocol):
        after = protocol.after_local_request(
            RegionState.DIRTY_DIRTY, RequestType.DCBF, LineState.INVALID, NONE)
        assert after is RegionState.DIRTY_INVALID

    def test_dcbi_without_broadcast_keeps_state(self, protocol):
        after = protocol.after_local_request(
            RegionState.DIRTY_INVALID, RequestType.DCBI, LineState.INVALID, None)
        assert after is RegionState.DIRTY_INVALID


class TestErrors:
    def test_upgrade_with_untracked_region_is_inclusion_violation(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.after_local_request(
                RegionState.INVALID, RequestType.UPGRADE,
                LineState.MODIFIED, None)

    def test_direct_request_from_invalid_region_is_routing_bug(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.after_local_request(
                RegionState.INVALID, RequestType.READ, LineState.SHARED, None)


class TestOneBitMode:
    def test_clean_response_collapses_to_dirty(self):
        protocol = RegionProtocol(two_bit=False)
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.READ, LineState.SHARED, CLEAN)
        assert state is RegionState.CLEAN_DIRTY

    def test_exclusive_still_reachable(self):
        protocol = RegionProtocol(two_bit=False)
        state = protocol.after_local_request(
            RegionState.INVALID, RequestType.READ, LineState.EXCLUSIVE, NONE)
        assert state is RegionState.DIRTY_INVALID
