"""Table 1: region states and the broadcast decision, exhaustively."""

import pytest

from repro.coherence.requests import RequestType
from repro.rca.states import ExternalPart, LocalPart, RegionState

EXCLUSIVE = (RegionState.CLEAN_INVALID, RegionState.DIRTY_INVALID)
EXT_CLEAN = (RegionState.CLEAN_CLEAN, RegionState.DIRTY_CLEAN)
EXT_DIRTY = (RegionState.CLEAN_DIRTY, RegionState.DIRTY_DIRTY)
VALID = EXCLUSIVE + EXT_CLEAN + EXT_DIRTY


class TestStructure:
    def test_seven_states(self):
        assert len(RegionState) == 7

    def test_parts_round_trip(self):
        for state in VALID:
            local, external = state.parts
            assert RegionState.from_parts(local, external) is state

    def test_invalid_has_no_parts(self):
        with pytest.raises(ValueError):
            RegionState.INVALID.parts

    def test_classification_partitions_valid_states(self):
        for state in VALID:
            kinds = [state.is_exclusive, state.is_externally_clean,
                     state.is_externally_dirty]
            assert sum(kinds) == 1

    def test_invalid_is_none_of_the_classes(self):
        state = RegionState.INVALID
        assert not (state.is_exclusive or state.is_externally_clean
                    or state.is_externally_dirty)

    def test_external_part_worse_of(self):
        none, clean, dirty = (ExternalPart.NONE, ExternalPart.CLEAN,
                              ExternalPart.DIRTY)
        assert none.worse_of(clean) is clean
        assert clean.worse_of(none) is clean
        assert clean.worse_of(dirty) is dirty
        assert dirty.worse_of(none) is dirty
        assert none.worse_of(none) is none


class TestBroadcastDecision:
    """Table 1's "Broadcast Needed?" column, request by request."""

    def test_invalid_broadcasts_everything_except_nothing(self):
        for request in RequestType:
            assert RegionState.INVALID.needs_broadcast(request)

    def test_exclusive_states_broadcast_nothing(self):
        for state in EXCLUSIVE:
            for request in RequestType:
                assert not state.needs_broadcast(request)

    def test_externally_clean_lets_ifetch_through(self):
        for state in EXT_CLEAN:
            assert not state.needs_broadcast(RequestType.IFETCH)

    def test_externally_clean_broadcasts_demand_loads(self):
        # Section 3.1: loads are broadcast unless the region is CI or DI,
        # so they may return exclusive copies.
        for state in EXT_CLEAN:
            assert state.needs_broadcast(RequestType.READ)

    def test_externally_clean_broadcasts_modifiable_requests(self):
        for state in EXT_CLEAN:
            for request in (RequestType.RFO, RequestType.UPGRADE,
                            RequestType.DCBZ, RequestType.PREFETCH_EX):
                assert state.needs_broadcast(request)

    def test_externally_dirty_broadcasts_all_but_writebacks(self):
        for state in EXT_DIRTY:
            for request in RequestType:
                expected = request is not RequestType.WRITEBACK
                assert state.needs_broadcast(request) == expected

    def test_writebacks_direct_in_any_valid_state(self):
        # The region entry records the home memory controller (§5.1).
        for state in VALID:
            assert not state.needs_broadcast(RequestType.WRITEBACK)


class TestImmediateCompletion:
    def test_upgrades_and_dcb_complete_in_exclusive_regions(self):
        for state in EXCLUSIVE:
            for request in (RequestType.UPGRADE, RequestType.DCBZ,
                            RequestType.DCBF, RequestType.DCBI):
                assert state.completes_without_request(request)

    def test_data_requests_always_need_memory(self):
        for state in VALID:
            for request in (RequestType.READ, RequestType.RFO,
                            RequestType.IFETCH):
                assert not state.completes_without_request(request)

    def test_nothing_completes_free_outside_exclusive(self):
        for state in EXT_CLEAN + EXT_DIRTY + (RegionState.INVALID,):
            for request in RequestType:
                assert not state.completes_without_request(request)
