"""RegionScout structures: CRH superset encoding, NSRT coherence rules."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memory.geometry import Geometry
from repro.rca.regionscout import (
    CachedRegionHash,
    NonSharedRegionTable,
    RegionScout,
)


@pytest.fixture
def geom():
    return Geometry()


class TestCRH:
    def test_empty_proves_absence(self, geom):
        crh = CachedRegionHash(geom, entries=64)
        assert not crh.may_cache_region(123)

    def test_counts_lines_per_region(self, geom):
        crh = CachedRegionHash(geom, entries=64)
        lines = list(geom.lines_in_region(5))
        crh.line_allocated(lines[0])
        crh.line_allocated(lines[1])
        assert crh.may_cache_region(5)
        crh.line_removed(lines[0])
        assert crh.may_cache_region(5)
        crh.line_removed(lines[1])
        assert not crh.may_cache_region(5)

    def test_superset_encoding_never_false_absent(self, geom):
        # Whatever collides, a cached region must always answer "maybe".
        crh = CachedRegionHash(geom, entries=4)  # force collisions
        for region in range(64):
            crh.line_allocated(next(iter(geom.lines_in_region(region))))
        for region in range(64):
            assert crh.may_cache_region(region)

    def test_underflow_detected(self, geom):
        crh = CachedRegionHash(geom, entries=64)
        with pytest.raises(ValueError):
            crh.line_removed(0)

    def test_entries_validation(self, geom):
        with pytest.raises(ConfigurationError):
            CachedRegionHash(geom, entries=100)

    def test_storage_is_small(self, geom):
        # The whole point: ~256 bytes versus the RCA's hundreds of kilobits.
        assert CachedRegionHash(geom, entries=256).storage_bits == 2048


class TestNSRT:
    def test_record_and_lookup(self):
        nsrt = NonSharedRegionTable(entries=4)
        nsrt.record(7)
        assert nsrt.contains(7)
        assert not nsrt.contains(8)

    def test_invalidate(self):
        nsrt = NonSharedRegionTable(entries=4)
        nsrt.record(7)
        nsrt.invalidate(7)
        assert not nsrt.contains(7)
        assert nsrt.invalidations == 1

    def test_invalidate_absent_is_noop(self):
        nsrt = NonSharedRegionTable(entries=4)
        nsrt.invalidate(7)
        assert nsrt.invalidations == 0

    def test_lru_capacity(self):
        nsrt = NonSharedRegionTable(entries=2)
        nsrt.record(1)
        nsrt.record(2)
        nsrt.contains(1)      # touch
        nsrt.record(3)        # evicts 2
        assert nsrt.contains(1)
        assert not nsrt.contains(2)
        assert nsrt.contains(3)

    def test_rerecord_touches(self):
        nsrt = NonSharedRegionTable(entries=2)
        nsrt.record(1)
        nsrt.record(2)
        nsrt.record(1)        # refresh, no new slot
        nsrt.record(3)        # evicts 2
        assert nsrt.contains(1)


def test_regionscout_storage_well_below_rca(geom):
    scout = RegionScout(geom, crh_entries=16384, nsrt_entries=32)
    # 16K-entry RCA ≈ 71 bits × 8192 sets ≈ 581 Kbit; this RegionScout
    # configuration needs ≈ 133 Kbit — less than a quarter.
    rca_bits = 71 * 8192
    assert scout.storage_bits < rca_bits / 4
