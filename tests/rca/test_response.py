"""Region snoop-response bits and combining (Section 3.4)."""

from repro.rca.response import (
    NO_COPIES,
    RegionSnoopResponse,
    combine_region_responses,
)
from repro.rca.states import ExternalPart


class TestSingleResponse:
    def test_no_copies(self):
        assert not NO_COPIES.cached
        assert NO_COPIES.external_part is ExternalPart.NONE

    def test_clean_maps_to_clean(self):
        response = RegionSnoopResponse(clean=True)
        assert response.cached
        assert response.external_part is ExternalPart.CLEAN

    def test_dirty_dominates_clean(self):
        response = RegionSnoopResponse(clean=True, dirty=True)
        assert response.external_part is ExternalPart.DIRTY


class TestCombining:
    def test_empty_combination(self):
        assert combine_region_responses([]) == NO_COPIES

    def test_or_semantics(self):
        combined = combine_region_responses([
            RegionSnoopResponse(clean=True),
            RegionSnoopResponse(),
            RegionSnoopResponse(dirty=True),
        ])
        assert combined.clean and combined.dirty
        assert combined.external_part is ExternalPart.DIRTY

    def test_all_silent(self):
        combined = combine_region_responses([RegionSnoopResponse()] * 3)
        assert combined.external_part is ExternalPart.NONE


class TestOneBitVariant:
    def test_clean_collapses_to_dirty(self):
        collapsed = RegionSnoopResponse(clean=True).collapsed()
        assert collapsed.dirty and not collapsed.clean
        assert collapsed.external_part is ExternalPart.DIRTY

    def test_none_stays_none(self):
        assert RegionSnoopResponse().collapsed() == NO_COPIES

    def test_collapse_is_conservative(self):
        # Collapsing never turns a cached region into "no copies".
        for clean in (False, True):
            for dirty in (False, True):
                response = RegionSnoopResponse(clean=clean, dirty=dirty)
                assert response.collapsed().cached == response.cached
