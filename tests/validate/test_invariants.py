"""Invariant check functions against hand-corrupted machines.

Each test runs a short real simulation (so the machine is in a
legitimately reachable quiescent state), asserts the checks come back
clean, then surgically corrupts one piece of state and asserts exactly
the right violation is reported. The corruption goes through the same
slots the protocol mutates — these are the states a real bug would
produce, minus the bug.
"""

import pytest

from repro.coherence.line_states import LineState
from repro.rca.states import RegionState
from repro.system.config import SystemConfig
from repro.system.simulator import Simulator
from repro.validate.invariants import (
    check_lines,
    check_machine,
    check_regions,
)
from repro.workloads.benchmarks import build_benchmark


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_cgct(512)


def fresh_machine(config, ops=2_000, workload="barnes"):
    trace = build_benchmark(workload, num_processors=config.num_processors,
                            ops_per_processor=ops, seed=0)
    simulator = Simulator(config, seed=0)
    simulator.run(trace, warmup_fraction=0.0)
    return simulator.machine


@pytest.fixture()
def machine(config):
    return fresh_machine(config)


def find_shared_line(machine, min_holders=2):
    """A line cached SHARED/OWNED by at least *min_holders* nodes."""
    for line, mask in machine._line_holders.items():
        holders = [
            node for node in machine.nodes
            if (mask >> node.proc_id) & 1
        ]
        if len(holders) < min_holders:
            continue
        if all(node.l2.peek(line).state in (LineState.SHARED,
                                            LineState.OWNED)
               for node in holders):
            return line, holders
    raise AssertionError("no multi-holder shared line in this run")


def find_region_entry(machine, external_letter):
    """(node, entry) whose region state has the given external letter."""
    for node in machine.nodes:
        for entry in node.rca.entries():
            if entry.state.value[1] == external_letter:
                return node, entry
    raise AssertionError(f"no region with external {external_letter!r}")


class TestCleanMachine:
    def test_reachable_state_has_no_violations(self, machine):
        assert check_machine(machine, deep=True) == []

    def test_baseline_machine_is_clean_too(self):
        baseline = fresh_machine(SystemConfig.paper_baseline())
        assert check_machine(baseline, deep=True) == []


class TestLineInvariants:
    def test_holder_bitmask_disagreement_is_flagged(self, machine):
        line = next(iter(machine._line_holders))
        machine._line_holders[line] ^= 1  # flip P0's presence bit
        violations = check_lines(machine, [line])
        assert len(violations) == 1
        assert "bitmask" in violations[0]

    def test_second_exclusive_copy_is_flagged(self, machine):
        line, holders = find_shared_line(machine)
        holders[0].l2.peek(line).state = LineState.MODIFIED
        violations = check_lines(machine, [line])
        assert any("exclusive copy coexists" in v for v in violations)

    def test_two_dirty_copies_are_flagged(self, machine):
        line, holders = find_shared_line(machine)
        holders[0].l2.peek(line).state = LineState.MODIFIED
        holders[1].l2.peek(line).state = LineState.OWNED
        violations = check_lines(machine, [line])
        assert any("multiple dirty copies" in v for v in violations)


class TestRegionInvariants:
    def test_line_count_drift_is_flagged(self, machine):
        node, entry = find_region_entry(machine, "D")
        entry.line_count += 1
        violations = check_regions(machine, [entry.region])
        assert any("line_count" in v for v in violations)

    def test_tracked_invalid_state_is_flagged(self, machine):
        node, entry = find_region_entry(machine, "D")
        entry.state = RegionState.INVALID
        violations = check_regions(machine, [entry.region])
        assert any("INVALID" in v for v in violations)

    def test_externally_invalid_with_remote_copy_is_flagged(self, machine):
        node, entry = find_region_entry(machine, "I")
        other = next(n for n in machine.nodes
                     if n.proc_id != node.proc_id)
        line = next(iter(machine.geometry.lines_in_region(entry.region)))
        machine._line_holders[line] = (
            machine._line_holders.get(line, 0) | (1 << other.proc_id)
        )
        violations = check_regions(machine, [entry.region])
        assert any("externally invalid" in v for v in violations)

    def test_externally_clean_with_remote_dirty_is_flagged(self, machine):
        # Find an externally-clean tracker whose region has a line
        # actually resident in some *other* node's L2, then dirty it.
        for node in machine.nodes:
            for entry in node.rca.entries():
                if entry.state.value[1] != "C":
                    continue
                for line in machine.geometry.lines_in_region(entry.region):
                    mask = machine._line_holders.get(line, 0)
                    remote = mask & ~(1 << node.proc_id)
                    for other in machine.nodes:
                        if not (remote >> other.proc_id) & 1:
                            continue
                        other.l2.peek(line).state = LineState.MODIFIED
                        violations = check_regions(machine, [entry.region])
                        assert any("externally clean" in v
                                   for v in violations)
                        return
        raise AssertionError("no externally-clean region with remote copies")

    def test_locally_clean_with_own_dirty_line_is_flagged(self, machine):
        for node in machine.nodes:
            for entry in node.rca.entries():
                if entry.state.value[0] != "C":
                    continue
                lines = node.l2.resident_lines_of_region(entry.region)
                if not lines:
                    continue
                lines[0].state = LineState.MODIFIED
                violations = check_regions(machine, [entry.region])
                assert any("locally clean" in v for v in violations)
                return
        raise AssertionError("no locally-clean region with resident lines")


class TestDeepAudit:
    def test_stale_region_tracker_bit_is_flagged(self, machine):
        node, entry = find_region_entry(machine, "D")
        # Record a tracker that no RCA actually holds.
        ghost = max(machine._region_trackers) + 1
        machine._region_trackers[ghost] = 1
        violations = check_machine(machine, deep=True)
        assert any("tracker bitmask" in v for v in violations)

    def test_machine_entry_point_raises_assertion(self, machine):
        # The historical Machine.check_coherence_invariants contract:
        # AssertionError whose text carries every violation.
        line = next(iter(machine._line_holders))
        machine._line_holders[line] ^= 1
        with pytest.raises(AssertionError, match="bitmask"):
            machine.check_coherence_invariants()
