"""The sanitizer's flight recorder: causal history in diagnostics bundles.

The sanitizer can say *what* invariant broke; the flight recorder says
what the machine was doing just before. These tests bind the sanitizer
*before* the workload runs (unlike the corruption tests, which bind at
check time), so the ring has real history when the violation fires, and
assert the bundle pinpoints the transactions that touched the violating
line.
"""

import json

import pytest

from repro.coherence.line_states import LineState
from repro.common.errors import InvariantViolation
from repro.obs.simtrace import SimTracer
from repro.system.machine import Machine
from repro.validate.sanitizer import CoherenceSanitizer
from tests.conftest import make_config

LINE = 64


def _bound_machine(tmp_path=None, **sanitizer_kwargs):
    machine = Machine(make_config(cgct=False))
    sanitizer = CoherenceSanitizer(
        mode="sampled",
        bundle_dir=str(tmp_path) if tmp_path is not None else None,
        **sanitizer_kwargs,
    )
    sanitizer.bind(machine, workload="injected", seed=0)
    return machine, sanitizer


def _drive(machine):
    now = 0
    for i in range(4):
        address = 0x1_0000 + i * LINE
        now += machine.load(0, address, now) + 10
        now += machine.load(1, address, now) + 10
    now += machine.store(0, 0x2_0000, now) + 10
    return now


class TestBinding:
    def test_bind_attaches_a_ring_tracer_by_default(self):
        machine, sanitizer = _bound_machine(flight_depth=16)
        assert sanitizer.flight is machine._tracer
        assert isinstance(sanitizer.flight, SimTracer)
        assert sanitizer.flight.ring == 16

    def test_bind_reuses_an_existing_tracer(self):
        machine = Machine(make_config(cgct=False))
        mine = SimTracer()
        machine.attach_tracer(mine)
        sanitizer = CoherenceSanitizer(mode="sampled")
        sanitizer.bind(machine, workload="injected", seed=0)
        assert machine._tracer is mine
        assert sanitizer.flight is mine

    def test_flight_recorder_can_be_disabled(self):
        machine, sanitizer = _bound_machine(flight_recorder=False)
        assert machine._tracer is None
        assert sanitizer.flight is None


class TestBundleHistory:
    def test_bundle_carries_causal_history_for_the_violation(self, tmp_path):
        machine, sanitizer = _bound_machine(tmp_path)
        now = _drive(machine)
        # The lost-writeback shape: a second dirty copy of 0x2_0000.
        machine.nodes[1].l2.fill(0x2_0000, LineState.MODIFIED)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.final_check(now=now)
        bundle = json.loads(
            open(excinfo.value.bundle_path, encoding="utf-8").read()
        )
        flight = bundle["flight_recorder"]
        assert flight is not None
        assert flight["depth"] == sanitizer.flight_depth
        assert flight["accesses_seen"] == 9
        line = 0x2_0000 >> machine._line_shift
        assert hex(line) in flight["lines"]
        # The store to 0x2_0000 is the only transaction that touched the
        # violating line; the recorder names it.
        involved = flight["involved"]
        assert len(involved) == 1
        assert involved[0]["op"] == "store"
        assert involved[0]["address"] == hex(0x2_0000)
        assert involved[0]["spans"]
        assert len(flight["recent"]) == 8

    def test_disabled_recorder_leaves_the_field_null(self, tmp_path):
        machine, sanitizer = _bound_machine(tmp_path, flight_recorder=False)
        now = _drive(machine)
        machine.nodes[1].l2.fill(0x2_0000, LineState.MODIFIED)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.final_check(now=now)
        bundle = json.loads(
            open(excinfo.value.bundle_path, encoding="utf-8").read()
        )
        assert bundle["flight_recorder"] is None

    def test_ring_bounds_the_history(self, tmp_path):
        machine, sanitizer = _bound_machine(tmp_path, flight_depth=2)
        now = _drive(machine)
        machine.nodes[1].l2.fill(0x2_0000, LineState.MODIFIED)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.final_check(now=now)
        bundle = json.loads(
            open(excinfo.value.bundle_path, encoding="utf-8").read()
        )
        flight = bundle["flight_recorder"]
        assert flight["depth"] == 2
        assert flight["accesses_seen"] == 9  # seen, not retained
        assert len(flight["recent"]) == 2
