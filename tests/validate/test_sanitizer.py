"""Runtime sanitizer: bit-identity, mutation detection, diagnostics.

The two load-bearing properties: (1) a sanitized run returns the exact
same ``RunResult`` as an unsanitized one — the sanitizer only reads
machine state; (2) a seeded protocol mutation (here: a region protocol
that ignores external broadcasts, i.e. skips a Table 1 decision) is
caught mid-run with an :class:`InvariantViolation` pointing at a
diagnostics bundle that is actually useful.
"""

import json

import pytest

from repro.common.errors import ConfigurationError, InvariantViolation
from repro.rca.protocol import RegionProtocol
from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.validate.sanitizer import CoherenceSanitizer, _EventRing
from repro.workloads.benchmarks import build_benchmark


def run(config, sanitizer=None, ops=2_000, workload="barnes", seed=0):
    trace = build_benchmark(workload, num_processors=config.num_processors,
                            ops_per_processor=ops, seed=0)
    return run_workload(config, trace, seed=seed, warmup_fraction=0.25,
                        sanitizer=sanitizer)


class TestBitIdentity:
    @pytest.mark.parametrize("mode", ["sampled", "deep"])
    def test_sanitized_run_is_bit_identical(self, mode):
        config = SystemConfig.paper_cgct(512)
        plain = run(config)
        sanitizer = CoherenceSanitizer(mode=mode, bundle_dir=None)
        audited = run(config, sanitizer=sanitizer)
        assert audited == plain  # full RunResult equality, every field
        assert sanitizer.checks > 0

    def test_baseline_machine_is_audited_too(self):
        config = SystemConfig.paper_baseline()
        plain = run(config)
        sanitizer = CoherenceSanitizer(mode="deep", bundle_dir=None)
        assert run(config, sanitizer=sanitizer) == plain

    def test_sampled_mode_rotates_windows(self):
        sanitizer = CoherenceSanitizer(mode="sampled", every=512,
                                       bundle_dir=None)
        run(SystemConfig.paper_cgct(512), sanitizer=sanitizer)
        assert sanitizer.checks > 2
        assert sanitizer.lines_checked > 0
        assert sanitizer.regions_checked > 0


class TestConfiguration:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            CoherenceSanitizer(mode="paranoid")

    def test_zero_cadence_rejected(self):
        with pytest.raises(ConfigurationError, match="cadence"):
            CoherenceSanitizer(mode="sampled", every=0)

    def test_check_before_bind_rejected(self):
        with pytest.raises(ConfigurationError, match="bind"):
            CoherenceSanitizer().check(now=0)


class TestMutationDetection:
    def test_skipped_broadcast_decision_is_caught(self, tmp_path,
                                                  monkeypatch):
        # The bug: external broadcasts never downgrade our region state
        # (Table 1's external-part transitions are skipped), so trackers
        # keep claiming exclusivity the rest of the machine has lost.
        monkeypatch.setattr(
            RegionProtocol, "_after_external_request",
            lambda self, state, request, fills=None: state,
        )
        sanitizer = CoherenceSanitizer(mode="sampled",
                                       bundle_dir=str(tmp_path))
        with pytest.raises(InvariantViolation) as excinfo:
            run(SystemConfig.paper_cgct(512), sanitizer=sanitizer)
        exc = excinfo.value
        assert exc.violations
        assert any("external" in v for v in exc.violations)
        assert exc.bundle_path is not None

    def test_bundle_contents_are_actionable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            RegionProtocol, "_after_external_request",
            lambda self, state, request, fills=None: state,
        )
        sanitizer = CoherenceSanitizer(mode="deep",
                                       bundle_dir=str(tmp_path))
        with pytest.raises(InvariantViolation) as excinfo:
            run(SystemConfig.paper_cgct(512), sanitizer=sanitizer)
        bundle = json.loads(open(excinfo.value.bundle_path).read())
        assert bundle["schema"] == "cgct-diagnostics/v1"
        assert bundle["workload"] == "barnes"
        assert bundle["seed"] == 0
        assert bundle["mode"] == "deep"
        assert bundle["violations"]
        assert bundle["config"]["cgct_enabled"] is True
        # The ring sink captured the lead-up to the violation.
        assert bundle["events"]
        assert {"time", "processor", "request", "address"} <= set(
            bundle["events"][-1])
        assert len(bundle["occupancy"]) == 4

    def test_bundle_names_count_up_without_timestamps(self, tmp_path):
        sanitizer = CoherenceSanitizer(bundle_dir=str(tmp_path))
        sanitizer.workload, sanitizer.seed = "barnes", 3

        class _Machine:
            config = SystemConfig.paper_baseline()
            event_log = None
            telemetry = None
            nodes = ()

        sanitizer.machine = _Machine()
        first = sanitizer.write_bundle(["v"], now=10)
        second = sanitizer.write_bundle(["v"], now=20)
        assert first.name == "bundle-barnes-seed3.json"
        assert second.name == "bundle-barnes-seed3-1.json"


class TestEventRing:
    def test_ring_is_bounded_and_tail_ordered(self):
        class _Req:
            value = "read"

        ring = _EventRing(capacity=4)
        for t in range(10):
            ring.record(t, 0, _Req(), 0x40 * t, "l2", 12)
        tail = ring.tail(2)
        assert [e["time"] for e in tail] == [8, 9]
        assert len(ring.tail()) == 4
