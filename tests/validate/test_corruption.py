"""Direct corruption injection: the sanitizer's detection floor.

The sanitizer tests in ``test_sanitizer.py`` seed *protocol* bugs and
let the machine corrupt itself. These tests skip the middleman: they run
a small healthy simulation, then reach into the machine and plant one
specific inconsistency — a second dirty copy, a phantom region holder, a
lost invalidation — and assert the very next exhaustive sweep reports
exactly that corruption, with a diagnostics bundle a human could debug
from. If any of these passes silently, the sanitizer is decorative.
"""

import json

import pytest

from repro.coherence.line_states import LineState
from repro.common.errors import InvariantViolation
from repro.rca.states import RegionState
from repro.system.machine import Machine
from repro.validate.sanitizer import CoherenceSanitizer
from tests.conftest import make_config

LINE = 64


def _warm_machine(cgct: bool) -> Machine:
    """A small machine with a few genuinely-shared lines resident."""
    machine = Machine(make_config(cgct=cgct))
    now = 0
    for i in range(4):
        address = 0x1_0000 + i * LINE
        now += machine.load(0, address, now) + 10
        now += machine.load(1, address, now) + 10
    now += machine.store(0, 0x2_0000, now) + 10
    machine._injection_now = now  # test bookkeeping only
    return machine


def _final_check(machine, mode="sampled", bundle_dir=None):
    sanitizer = CoherenceSanitizer(
        mode=mode,
        bundle_dir=str(bundle_dir) if bundle_dir is not None else None,
    )
    sanitizer.bind(machine, workload="injected", seed=0)
    sanitizer.final_check(now=machine._injection_now)
    return sanitizer


class TestHealthyBaseline:
    @pytest.mark.parametrize("cgct", [False, True])
    def test_uncorrupted_machine_passes(self, cgct):
        # The control: every injection test below must fail *because of
        # the injection*, not because the setup was already broken.
        _final_check(_warm_machine(cgct), mode="deep")


class TestStaleDirtyLine:
    def test_second_dirty_copy_is_caught(self, tmp_path):
        machine = _warm_machine(cgct=False)
        # P0 holds 0x2_0000 in M. Plant a *second* dirty copy at P1, as
        # a lost writeback race would: presence callbacks fire normally,
        # so only the single-writer invariant can see the corruption.
        machine.nodes[1].l2.fill(0x2_0000, LineState.MODIFIED)
        with pytest.raises(InvariantViolation) as excinfo:
            _final_check(machine, bundle_dir=tmp_path)
        assert any(
            "multiple dirty copies" in v for v in excinfo.value.violations
        ), excinfo.value.violations

    def test_bundle_is_debuggable(self, tmp_path):
        machine = _warm_machine(cgct=False)
        machine.nodes[1].l2.fill(0x2_0000, LineState.MODIFIED)
        with pytest.raises(InvariantViolation) as excinfo:
            _final_check(machine, bundle_dir=tmp_path)
        bundle_path = excinfo.value.bundle_path
        assert bundle_path is not None
        bundle = json.loads(open(bundle_path, encoding="utf-8").read())
        assert bundle["schema"] == "cgct-diagnostics/v1"
        assert bundle["workload"] == "injected"
        assert any("multiple dirty copies" in v for v in bundle["violations"])
        assert bundle["config"]["l2_bytes"] == machine.config.l2_bytes
        assert len(bundle["occupancy"]) == machine.topology.num_processors
        assert all("l2_lines" in entry for entry in bundle["occupancy"])


class TestPhantomRegionHolder:
    def test_phantom_tracker_bit_is_caught(self):
        machine = _warm_machine(cgct=True)
        region = 0x1_0000 >> machine._region_shift
        assert region in machine._region_trackers
        # Claim P3 tracks the region although its RCA has no entry —
        # the shape of a dropped RCA eviction notification.
        machine._region_trackers[region] |= 1 << 3
        with pytest.raises(InvariantViolation) as excinfo:
            _final_check(machine, mode="deep")
        assert any(
            "tracker bitmask" in v and "disagrees" in v
            for v in excinfo.value.violations
        ), excinfo.value.violations


class TestLostInvalidation:
    def test_externally_invalid_with_remote_copy_is_caught(self):
        machine = _warm_machine(cgct=True)
        region = 0x1_0000 >> machine._region_shift
        entry = machine.nodes[0].rca.probe(region)
        assert entry is not None
        # P0's tracker claims nobody else caches the region, while P1
        # demonstrably holds lines of it: the externally-invalid state a
        # lost invalidation (or a Table 1 bug) would leave behind.
        entry.state = RegionState.CLEAN_INVALID
        with pytest.raises(InvariantViolation) as excinfo:
            _final_check(machine)
        assert any(
            "externally invalid but line" in v and "cached by" in v
            for v in excinfo.value.violations
        ), excinfo.value.violations

    def test_violation_carries_the_event_tail(self, tmp_path):
        machine = _warm_machine(cgct=True)
        region = 0x1_0000 >> machine._region_shift
        entry = machine.nodes[0].rca.probe(region)
        entry.state = RegionState.CLEAN_INVALID
        with pytest.raises(InvariantViolation) as excinfo:
            _final_check(machine, bundle_dir=tmp_path)
        bundle = json.loads(
            open(excinfo.value.bundle_path, encoding="utf-8").read()
        )
        # The machine ran without an event log, so the sanitizer's own
        # ring was attached at bind(); post-bind events would appear
        # here. The field must exist (and be a list) either way.
        assert isinstance(bundle["events"], list)
        assert bundle["mode"] == "sampled"
