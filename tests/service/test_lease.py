"""Lease-protocol edge cases (satellite: expiry boundaries, races).

Boundary semantics under an injected clock: a lease is live *strictly
before* ``expires`` and reclaimable *at or after* it; renewal succeeds
past expiry as long as no reclaim happened first; a renewal racing a
reclaim reports the cell LOST; re-claims back off exponentially and
crash-looping cells are reaped into quarantine.
"""

import json

from repro.harness.supervisor import RetryPolicy
from repro.service.chaos import duplicate_claim
from repro.service.queue import CampaignQueue, Lease

from tests.service.test_queue import Clock, make_queue, submit_abc


def flat_policy(delay=0.0):
    return RetryPolicy(backoff_base=delay, backoff_factor=1.0,
                       backoff_cap=delay, max_delay=delay, jitter=0.0)


# ----------------------------------------------------------------------
# The expiry boundary, exactly
# ----------------------------------------------------------------------
def test_lease_live_strictly_before_expiry():
    lease = Lease("f1", expires=100.0, attempt=1)
    assert lease.live(99.999)
    assert not lease.live(100.0)   # reclaimable exactly at expiry
    assert not lease.live(100.001)


def test_reclaim_exactly_at_expiry_boundary(tmp_path):
    clock = Clock(start=1000.0)
    queue, _ = make_queue(tmp_path, clock=clock, policy=flat_policy())
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=10.0)
    clock.tick(10.0 - 1e-6)
    # One microsecond before expiry: still f1's cell.
    assert all(i != 0 for _, i, _ in queue.claim("f2", limit=10,
                                                 lease_s=10.0))
    clock.tick(1e-6)
    # Exactly at expiry: reclaimable.
    picks = queue.claim("f2", limit=10, lease_s=10.0)
    assert ("camp", 0) in [(c, i) for c, i, _ in picks]


def test_double_claim_is_rejected_while_lease_is_live(tmp_path):
    queue, _ = make_queue(tmp_path)
    submit_abc(queue)
    first = queue.claim("f1", limit=3, lease_s=30.0)
    assert len(first) == 3
    assert queue.claim("f2", limit=3, lease_s=30.0) == []


def test_renewal_extends_a_live_lease(tmp_path):
    clock = Clock()
    queue, _ = make_queue(tmp_path, clock=clock)
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=10.0)
    clock.tick(8.0)
    assert queue.renew("f1", [("camp", 0)], lease_s=10.0) == []
    clock.tick(8.0)  # 16s after claim; renewed lease still has 2s
    assert queue.claim("f2", limit=10, lease_s=10.0)[0][1] != 0


def test_renewal_past_expiry_succeeds_if_no_reclaim(tmp_path):
    clock = Clock()
    queue, _ = make_queue(tmp_path, clock=clock, policy=flat_policy())
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=10.0)
    clock.tick(12.0)  # expired, but nobody reclaimed
    assert queue.renew("f1", [("camp", 0)], lease_s=10.0) == []
    # The late renewal re-armed the lease: not claimable again.
    assert all(i != 0 for _, i, _ in queue.claim("f2", limit=10))


def test_renewal_racing_a_reclaim_reports_lost(tmp_path):
    clock = Clock()
    queue, _ = make_queue(tmp_path, clock=clock, policy=flat_policy())
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=10.0)
    clock.tick(10.0)
    reclaimed = queue.claim("f2", limit=1, lease_s=10.0)
    assert [(c, i) for c, i, _ in reclaimed] == [("camp", 0)]
    # f1's heartbeat arrives after the reclaim: the cell is LOST to it,
    # and f2's lease is untouched by the failed renewal.
    assert queue.renew("f1", [("camp", 0)], lease_s=10.0) == \
        [("camp", 0)]
    assert all(i != 0 for _, i, _ in queue.claim("f3", limit=10))


def test_renew_skips_settled_cells(tmp_path):
    queue, _ = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=2, lease_s=30.0)
    queue.commit("f1", "camp", 0, "key-a", "miss")
    # A settled cell is neither renewed nor reported lost.
    assert queue.renew("f1", [("camp", 0), ("camp", 1)],
                       lease_s=30.0) == []


def test_forged_duplicate_claim_loses_to_no_double_commit(tmp_path):
    """Split-brain: a second claim forged while the first is live. The
    original owner learns via renewal; whichever commit lands second
    is rejected."""
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=30.0)
    duplicate_claim(tmp_path / "svc", "camp", 0, "rogue", lease_s=30.0)
    assert queue.renew("f1", [("camp", 0)], lease_s=30.0) == \
        [("camp", 0)]
    assert queue.commit("rogue", "camp", 0, "key-a", "miss")
    assert not queue.commit("f1", "camp", 0, "key-a", "miss")
    wal = (tmp_path / "svc" / "queue.wal").read_text().splitlines()
    assert sum(1 for l in wal
               if json.loads(l).get("record") == "done") == 1


# ----------------------------------------------------------------------
# Re-admission backoff + reaping
# ----------------------------------------------------------------------
def test_expired_reclaim_backs_off_exponentially(tmp_path):
    clock = Clock()
    policy = RetryPolicy(backoff_base=4.0, backoff_factor=2.0,
                         backoff_cap=64.0, max_delay=64.0, jitter=0.0)
    queue, _ = make_queue(tmp_path, clock=clock, policy=policy)
    queue.submit("camp", {}, ["key-a"])
    queue.claim("f1", limit=1, lease_s=10.0)      # attempt 1
    clock.tick(10.0)
    queue.claim("f2", limit=1, lease_s=10.0)      # attempt 2, backoff 8s
    clock.tick(10.0)
    # Lease expired but the cell is inside its 8s re-admission window.
    assert queue.claim("f3", limit=1, lease_s=10.0) == []
    clock.tick(8.0)
    picks = queue.claim("f3", limit=1, lease_s=10.0)  # attempt 3
    assert len(picks) == 1
    # Delay grows with the attempt count (exponential re-admission).
    clock.tick(10.0)
    assert queue.claim("f4", limit=1, lease_s=10.0) == []
    clock.tick(16.0 - 1e-3)
    assert queue.claim("f4", limit=1, lease_s=10.0) == []
    clock.tick(1e-3)
    assert len(queue.claim("f4", limit=1, lease_s=10.0)) == 1


def test_backoff_delay_is_capped(tmp_path):
    clock = Clock()
    policy = RetryPolicy(backoff_base=4.0, backoff_factor=10.0,
                         backoff_cap=1000.0, max_delay=12.0, jitter=0.0)
    queue, _ = make_queue(tmp_path, clock=clock, policy=policy,
                          max_attempts=50)
    queue.submit("camp", {}, ["key-a"])
    for _ in range(4):
        assert len(queue.claim("f", limit=1, lease_s=1.0)) == 1
        clock.tick(1.0 + 12.0)  # lease + capped delay always suffices
    assert queue.status("camp")["pending"] == 1


def test_crash_looping_cell_is_reaped_with_bundle(tmp_path):
    clock = Clock()
    queue, _ = make_queue(tmp_path, clock=clock, policy=flat_policy(),
                          max_attempts=3)
    queue.submit("camp", {"kind": "test"}, ["key-a", "key-b"])
    for _ in range(3):
        picks = queue.claim("f", limit=1, lease_s=1.0)
        assert picks[0][1] == 0
        clock.tick(1.0)
    queue.commit("f", "camp", 1, "key-b", "miss")
    reaped = queue.reap(tmp_path / "bundles")
    assert [r["index"] for r in reaped] == [0]
    assert queue.status("camp")["quarantined"] == 1
    bundle = json.loads((tmp_path / "bundles" /
                         "queue-camp-cell0.json").read_text())
    assert bundle["schema"] == "cgct-diagnostics/v1"
    assert bundle["kind"] == "queue-reap"
    assert bundle["attempts"] == 3
    # Reaping is terminal: the cell never comes back.
    assert queue.claim("f", limit=10, lease_s=1.0) == []


def test_reap_spares_cells_under_live_leases(tmp_path):
    clock = Clock()
    queue, _ = make_queue(tmp_path, clock=clock, policy=flat_policy(),
                          max_attempts=2)
    queue.submit("camp", {}, ["key-a"])
    queue.claim("f1", limit=1, lease_s=10.0)
    clock.tick(10.0)
    queue.claim("f2", limit=1, lease_s=10.0)  # attempt 2, lease live
    assert queue.reap() == []  # working right now — not crash-looping
    clock.tick(10.0)
    assert [r["index"] for r in queue.reap()] == [0]
