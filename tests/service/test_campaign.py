"""Campaign service end-to-end: determinism, chaos, degradation.

The headline invariant, asserted from every angle: any schedule of
fleets, SIGKILLs, disk faults, and resumes produces a campaign whose
``result_fingerprint`` is bit-identical to an undisturbed serial run's.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.campaign import CampaignService
from repro.service.chaos import ChaosPlan, chaos_execute, tokens_spent
from repro.service.fleet import Fleet
from repro.service.queue import CampaignQueue

SPEC = {"kind": "matrix", "benchmarks": ["barnes", "ocean"],
        "configs": ["4p-baseline", "4p-cgct"], "ops": 500, "seeds": 1}

SRC = str(Path(__file__).resolve().parents[2] / "src")


def reference_fingerprint(tmp_path, spec=SPEC):
    """An undisturbed serial run in a pristine service dir."""
    service = CampaignService(tmp_path / "reference")
    campaign = service.submit(spec)["campaign"]
    report = service.run(campaign, fleets=0)
    service.close()
    assert report.complete
    return campaign, report.result_fingerprint


@pytest.fixture(autouse=True)
def _no_inherited_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_CHAOS", raising=False)


# ----------------------------------------------------------------------
# Submission + reporting
# ----------------------------------------------------------------------
def test_submit_is_content_addressed_and_idempotent(tmp_path):
    service = CampaignService(tmp_path / "svc")
    first = service.submit(SPEC)
    again = service.submit(SPEC)
    assert first["campaign"] == again["campaign"]
    assert not first["resumed"] and again["resumed"]
    assert first["cells"] == 4


def test_serial_run_matches_fleet_run(tmp_path):
    _, expected = reference_fingerprint(tmp_path)
    service = CampaignService(tmp_path / "svc", lease_s=5.0, poll_s=0.05)
    campaign = service.submit(SPEC)["campaign"]
    report = service.run(campaign, fleets=2)
    assert report.complete
    assert report.result_fingerprint == expected
    assert service.status(campaign)["completed"]


def test_overlapping_campaigns_share_the_result_store(tmp_path):
    """Identical cells across concurrent campaigns are computed once:
    the second campaign's overlapping cells are cache hits."""
    service = CampaignService(tmp_path / "svc", poll_s=0.05)
    small = dict(SPEC, benchmarks=["barnes"])
    big = SPEC
    c_small = service.submit(small)["campaign"]
    service.run(c_small, fleets=0)
    c_big = service.submit(big)["campaign"]
    service.run(c_big, fleets=0)
    wal = (tmp_path / "svc" / "queue.wal").read_text().splitlines()
    dones = [json.loads(l) for l in wal
             if json.loads(l).get("record") == "done"
             and json.loads(l)["campaign"] == c_big]
    small_keys = set(service.queue.keys(c_small).values())
    for done in dones:
        if done["key"] in small_keys:
            assert done["cache"] == "hit"
    assert sum(1 for d in dones if d["cache"] == "hit") == 2


# ----------------------------------------------------------------------
# Kill the ENTIRE service mid-campaign; resume
# ----------------------------------------------------------------------
_SERVICE_SCRIPT = """
import sys
from repro.service.campaign import CampaignService
spec = {spec!r}
service = CampaignService({service_dir!r}, lease_s=1.0, poll_s=0.05)
campaign = service.submit(spec)["campaign"]
service.run(campaign, fleets=2, timeout_s=240)
"""


def test_kill_entire_service_and_resume_is_bit_identical(tmp_path):
    _, expected = reference_fingerprint(tmp_path)
    spec = dict(SPEC, ops=900)  # slow enough to catch mid-campaign
    _, expected_slow = reference_fingerprint(
        tmp_path / "slowref", spec)
    service_dir = str(tmp_path / "svc")
    proc = subprocess.Popen(
        [sys.executable, "-c",
         _SERVICE_SCRIPT.format(spec=spec, service_dir=service_dir)],
        env={**os.environ, "PYTHONPATH": SRC},
        start_new_session=True,  # so killpg reaches the fleets too
    )
    try:
        queue = CampaignQueue(service_dir)
        deadline = time.monotonic() + 120.0
        campaign = None
        while time.monotonic() < deadline:
            names = queue.campaigns()
            if names:
                campaign = names[0]
                status = queue.status(campaign)
                if 1 <= status["done"] < status["cells"]:
                    break
            time.sleep(0.02)
        else:
            pytest.fail("service never reached mid-campaign")
        # SIGKILL the whole process group: coordinator AND fleets.
        os.killpg(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30.0)
    status = queue.status(campaign)
    assert not status["drained"]  # genuinely interrupted
    # Resume in this process; dead fleets' leases expire and their
    # cells re-issue. The report must match the undisturbed run's.
    service = CampaignService(service_dir, lease_s=1.0, poll_s=0.05)
    report = service.resume(campaign, fleets=1, timeout_s=240)
    assert report.complete
    assert report.result_fingerprint == expected_slow
    assert expected_slow != expected  # different spec, different grid


# ----------------------------------------------------------------------
# Chaos: worker SIGKILLs, disk-full, total fleet loss
# ----------------------------------------------------------------------
def test_fleet_sigkills_recover_with_identical_results(tmp_path):
    _, expected = reference_fingerprint(tmp_path)
    plan = ChaosPlan(marker_dir=str(tmp_path / "markers"),
                     kill_worker=2, protect_pid=os.getpid())
    plan.to_env()
    try:
        service = CampaignService(tmp_path / "svc", lease_s=0.5,
                                  poll_s=0.05)
        campaign = service.submit(SPEC)["campaign"]
        report = service.run(campaign, fleets=2, timeout_s=240)
    finally:
        ChaosPlan.clear_env()
    assert tokens_spent(tmp_path / "markers", "kill") == 2
    assert report.complete
    assert report.result_fingerprint == expected


def test_disk_full_on_result_store_is_retried_not_lost(tmp_path):
    _, expected = reference_fingerprint(tmp_path)
    plan = ChaosPlan(marker_dir=str(tmp_path / "markers"), disk_full=2)
    service = CampaignService(tmp_path / "svc", poll_s=0.05)
    campaign = service.submit(SPEC)["campaign"]
    fleet = Fleet(tmp_path / "svc", "f1", campaign=campaign,
                  cache_dir=service.cache_dir, retries=3,
                  execute=chaos_execute(plan))
    counters = fleet.run()
    assert tokens_spent(tmp_path / "markers", "enospc") == 2
    assert counters["committed"] == 4
    assert counters["quarantined"] == 0
    report = service.results(campaign)
    assert report.complete
    assert report.result_fingerprint == expected


def test_all_fleets_dying_degrades_to_serial(tmp_path):
    """Every fleet process dies on its first cell; restart budgets
    exhaust; the service must degrade to an in-process serial drain
    and still finish with the undisturbed fingerprint."""
    _, expected = reference_fingerprint(tmp_path)
    plan = ChaosPlan(marker_dir=str(tmp_path / "markers"),
                     kill_worker=99, protect_pid=os.getpid())
    plan.to_env()
    try:
        service = CampaignService(
            tmp_path / "svc", lease_s=0.5, poll_s=0.05,
            fleet_restart_limit=1,
        )
        campaign = service.submit(SPEC)["campaign"]
        report = service.run(campaign, fleets=2, timeout_s=240)
    finally:
        ChaosPlan.clear_env()
    assert report.complete
    assert report.result_fingerprint == expected
    events = [json.loads(l)["event"] for l in
              (tmp_path / "svc" / "service.jsonl").read_text()
              .splitlines()]
    assert "fleet-retire" in events
    assert "campaign-degrade-serial" in events


def test_cancel_stops_a_campaign(tmp_path):
    service = CampaignService(tmp_path / "svc", poll_s=0.05)
    campaign = service.submit(SPEC)["campaign"]
    service.cancel(campaign)
    report = service.run(campaign, fleets=0)
    assert not report.complete
    assert report.status["cancelled"]
