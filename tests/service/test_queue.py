"""WAL durability and lifecycle invariants of the campaign queue.

The queue's contract (``cgct-queue/v1``): every acknowledged mutation
survives a crash, a torn trailing record is tolerated and never
concatenated into, corruption before the tail is skipped-and-reported
(never silently lost), compaction is atomic, and ``done`` is written at
most once per cell.
"""

import json

import pytest

from repro.common.errors import ConfigurationError, HarnessError
from repro.harness.supervisor import RetryPolicy
from repro.service.chaos import corrupt_record, torn_tail
from repro.service.queue import QUEUE_SCHEMA, CampaignQueue


class Clock:
    """Hand-cranked wall clock: lease boundaries become exact."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def make_queue(tmp_path, **kwargs):
    clock = kwargs.pop("clock", Clock())
    queue = CampaignQueue(tmp_path / "svc", clock=clock, **kwargs)
    return queue, clock


def submit_abc(queue, campaign="camp"):
    keys = ["key-a", "key-b", "key-c"]
    queue.submit(campaign, {"kind": "test"}, keys)
    return keys


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_submit_claim_commit_drains(tmp_path):
    queue, _ = make_queue(tmp_path)
    keys = submit_abc(queue)
    picks = queue.claim("f1", limit=10, lease_s=30.0)
    assert [(c, i) for c, i, _ in picks] == \
        [("camp", 0), ("camp", 1), ("camp", 2)]
    assert [k for _, _, k in picks] == keys
    for campaign, index, key in picks:
        assert queue.commit("f1", campaign, index, key, "miss")
    status = queue.status("camp")
    assert status["done"] == 3
    assert status["drained"]


def test_submit_is_idempotent_and_guards_fingerprint(tmp_path):
    queue, _ = make_queue(tmp_path)
    keys = submit_abc(queue)
    receipt = queue.submit("camp", {"kind": "test"}, keys)
    assert receipt["resumed"] and receipt["repaired"] == 0
    with pytest.raises(ConfigurationError):
        queue.submit("camp", {"kind": "test"}, ["other-key"])


def test_state_survives_reopen(tmp_path):
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=30.0)
    queue.commit("f1", "camp", 0, "key-a", "miss")
    reopened = CampaignQueue(tmp_path / "svc", clock=clock)
    status = reopened.status("camp")
    assert status["cells"] == 3
    assert status["done"] == 1
    assert status["pending"] == 2


def test_done_is_written_at_most_once(tmp_path):
    queue, _ = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=30.0)
    assert queue.commit("f1", "camp", 0, "key-a", "miss")
    # Second commit — from anyone — is rejected and writes nothing.
    assert not queue.commit("f1", "camp", 0, "key-a", "hit")
    assert not queue.commit("f2", "camp", 0, "key-a", "hit")
    wal = (tmp_path / "svc" / "queue.wal").read_text().splitlines()
    dones = [json.loads(l) for l in wal
             if json.loads(l).get("record") == "done"]
    assert len(dones) == 1


def test_quarantine_settles_a_cell(tmp_path):
    queue, _ = make_queue(tmp_path)
    submit_abc(queue)
    assert queue.quarantine("camp", 1, "injected bug", bundle="b.json")
    assert not queue.quarantine("camp", 1, "again")
    assert not queue.commit("f1", "camp", 1, "key-b", "miss")
    status = queue.status("camp")
    assert status["quarantined"] == 1
    assert 1 in queue.quarantined("camp")
    # Quarantined cells never come back as pending.
    picks = queue.claim("f1", limit=10)
    assert all(i != 1 for _, i, _ in picks)


def test_cancel_stops_claims(tmp_path):
    queue, _ = make_queue(tmp_path)
    submit_abc(queue)
    queue.cancel("camp")
    assert queue.claim("f1", limit=10) == []
    assert queue.status("camp")["cancelled"]


def test_unknown_campaign_raises_harness_error(tmp_path):
    queue, _ = make_queue(tmp_path)
    with pytest.raises(HarnessError):
        queue.status("nope")


# ----------------------------------------------------------------------
# Torn trailing record (crash mid-append)
# ----------------------------------------------------------------------
def test_torn_trailing_record_is_dropped_on_replay(tmp_path):
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=30.0)
    wal = tmp_path / "svc" / "queue.wal"
    torn = torn_tail(wal)
    assert json.loads(torn)["record"] == "claim"
    reopened = CampaignQueue(tmp_path / "svc", clock=clock)
    status = reopened.status("camp")
    # The torn claim was never acknowledged; the cell is simply pending.
    assert status["leased"] == 0
    assert status["pending"] == 3
    assert reopened.corrupt == []  # a tear is not corruption


def test_append_after_tear_never_concatenates(tmp_path):
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    wal = tmp_path / "svc" / "queue.wal"
    torn_tail(wal)
    fresh = CampaignQueue(tmp_path / "svc", clock=clock)
    fresh.claim("f2", limit=1, lease_s=30.0)
    lines = wal.read_bytes().split(b"\n")
    # The torn fragment sits alone on its line; every other line parses.
    parsed, garbage = 0, 0
    for line in lines:
        if not line.strip():
            continue
        try:
            json.loads(line)
            parsed += 1
        except json.JSONDecodeError:
            garbage += 1
    assert garbage == 1
    assert fresh.status("camp")["leased"] == 1


def test_tear_at_every_record_boundary_is_recoverable(tmp_path):
    """Crash-point sweep: tearing the WAL after any prefix of appends
    leaves a queue that reopens with a consistent (prefix) view."""
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=2, lease_s=30.0)
    queue.commit("f1", "camp", 0, "key-a", "miss")
    wal = tmp_path / "svc" / "queue.wal"
    full = wal.read_bytes()
    offsets = [i + 1 for i, b in enumerate(full) if b == 0x0A]
    for cut in offsets:
        for extra in (0, 3):  # clean boundary, and mid-next-record
            wal.write_bytes(full[:cut + extra])
            reopened = CampaignQueue(tmp_path / "svc", clock=clock)
            reopened.refresh()  # must not raise
            if "camp" in reopened.campaigns():
                status = reopened.status("camp")
                assert 0 <= status["done"] <= 1
    wal.write_bytes(full)


# ----------------------------------------------------------------------
# Mid-file corruption (disk damage) + repair
# ----------------------------------------------------------------------
def test_corrupt_record_is_skipped_and_reported(tmp_path):
    queue, clock = make_queue(tmp_path)
    keys = submit_abc(queue)
    queue.commit("f1", "camp", 0, "key-a", "miss")
    wal = tmp_path / "svc" / "queue.wal"
    # Line 2 is the second 'cell' record (0=header, 1=campaign, 2..=cells)
    original = corrupt_record(wal, 2)
    assert json.loads(original)["record"] == "cell"
    reopened = CampaignQueue(tmp_path / "svc", clock=clock)
    status = reopened.status("camp")
    assert status["cells"] == 2              # one cell record lost
    assert status["expected_cells"] == 3     # but the loss is visible
    assert len(reopened.corrupt) == 1
    report = reopened.recover(tmp_path / "bundles")
    assert report["corrupt"] == 1
    bundle = json.loads((tmp_path / "bundles" /
                         "queue-corruption.json").read_text())
    assert bundle["schema"] == "cgct-diagnostics/v1"
    assert bundle["kind"] == "queue-corruption"
    # Cells derive from the spec: repair restores the queue's view.
    assert reopened.repair("camp", keys) == 1
    assert reopened.status("camp")["cells"] == 3


def test_repair_refuses_wrong_keys(tmp_path):
    queue, _ = make_queue(tmp_path)
    submit_abc(queue)
    with pytest.raises(ConfigurationError):
        queue.repair("camp", ["x", "y", "z"])


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def test_compact_preserves_state_and_bumps_generation(tmp_path):
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=30.0)
    queue.commit("f1", "camp", 0, "key-a", "miss")
    queue.quarantine("camp", 2, "bad")
    before = queue.status("camp")
    queue.compact()
    wal = tmp_path / "svc" / "queue.wal"
    header = json.loads(wal.read_text().splitlines()[0])
    assert header["record"] == "wal"
    assert header["schema"] == QUEUE_SCHEMA
    assert header["generation"] == 2
    assert header["compacted"]
    assert queue.status("camp") == before


def test_concurrent_reader_detects_compaction(tmp_path):
    queue, clock = make_queue(tmp_path)
    submit_abc(queue)
    other = CampaignQueue(tmp_path / "svc", clock=clock)
    assert other.status("camp")["cells"] == 3
    queue.commit("f1", "camp", 0, "key-a", "miss")
    queue.compact()
    queue.commit("f1", "camp", 1, "key-b", "miss")
    # `other` replayed the old generation; its next look must rebuild
    # from the new WAL, not mis-apply offsets into it.
    status = other.status("camp")
    assert status["done"] == 2
    assert status["cells"] == 3


def test_backoff_records_survive_compaction(tmp_path):
    clock = Clock()
    queue, _ = make_queue(tmp_path, clock=clock,
                          policy=RetryPolicy(backoff_base=2.0,
                                             backoff_cap=8.0,
                                             max_delay=8.0, jitter=0.0))
    submit_abc(queue)
    queue.claim("f1", limit=1, lease_s=1.0)
    clock.tick(1.0)  # expire
    queue.claim("f2", limit=1, lease_s=1.0)  # reclaim → backoff record
    clock.tick(1.0)  # expire f2's lease too
    queue.compact()
    reopened = CampaignQueue(tmp_path / "svc", clock=clock)
    # Cell 0 is inside its re-admission backoff: claims skip to cell 1.
    picks = reopened.claim("f3", limit=1, lease_s=1.0)
    assert [(c, i) for c, i, _ in picks] == [("camp", 1)]
