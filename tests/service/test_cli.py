"""Campaign CLI: spec-flag validation around explicit campaign ids.

A stored campaign's cell list is immutable, so ``campaign run <id>``
must refuse spec flags (they would be silently ignored otherwise) —
and keep accepting run flags, which do apply.
"""

from repro.service.campaign import CampaignService
from repro.service.cli import campaign_command

SPEC = {"kind": "matrix", "benchmarks": ["barnes"],
        "configs": ["4p-cgct"], "ops": 300, "seeds": 1}


def submit(tmp_path):
    service = CampaignService(tmp_path / "svc")
    campaign = service.submit(SPEC)["campaign"]
    service.close()
    return campaign


def test_run_with_explicit_id_rejects_spec_flags(tmp_path, capsys):
    campaign = submit(tmp_path)
    rc = campaign_command([
        "--service-dir", str(tmp_path / "svc"), "run", campaign,
        "--ops", "999", "--seeds", "7", "--quiet",
    ])
    assert rc == 2
    out = capsys.readouterr().out
    assert "--ops" in out and "--seeds" in out
    assert "would be ignored" in out
    # Nothing ran: the campaign is still fully pending.
    service = CampaignService(tmp_path / "svc")
    assert service.status(campaign)["done"] == 0
    service.close()


def test_run_with_explicit_id_and_run_flags_still_works(tmp_path):
    campaign = submit(tmp_path)
    rc = campaign_command([
        "--service-dir", str(tmp_path / "svc"), "run", campaign,
        "--fleets", "0", "--quiet",
    ])
    assert rc == 0
    service = CampaignService(tmp_path / "svc")
    status = service.status(campaign)
    assert status["done"] == status["cells"]
    service.close()


def test_run_rejects_campaign_id_plus_name(tmp_path, capsys):
    campaign = submit(tmp_path)
    rc = campaign_command([
        "--service-dir", str(tmp_path / "svc"), "run", campaign,
        "--name", "other", "--quiet",
    ])
    assert rc == 2
    assert "not both" in capsys.readouterr().out
