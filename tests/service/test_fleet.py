"""Fleet behavior: claim → execute → commit, failure taxonomy, leases.

Runs fleets in-process (``workers=1`` executes cells in the fleet's
own process) against real — tiny — simulations, so every assertion is
about the actual contract: committed results land in the shared
content-addressed store, deterministic failures quarantine with a
bundle, transient ones retry, and a lost lease never double-commits.
"""

import json
import threading
import time
from pathlib import Path

from repro.harness.cache import DiskCache
from repro.harness.parallel import execute_envelope
from repro.harness.supervisor import RetryPolicy
from repro.service.campaign import CampaignService
from repro.service.fleet import Fleet
from repro.service.queue import CampaignQueue

SPEC = {"kind": "matrix", "benchmarks": ["barnes"],
        "configs": ["4p-cgct"], "ops": 400, "seeds": 2}


def submit(tmp_path, spec=SPEC):
    service = CampaignService(tmp_path / "svc")
    campaign = service.submit(spec)["campaign"]
    service.close()
    return service, campaign


# ----------------------------------------------------------------------
# Injected execute hooks
# ----------------------------------------------------------------------
def _fail_index0_deterministic(envelope):
    if envelope.index == 0:
        raise ValueError("impossible region transition (injected)")
    return execute_envelope(envelope)


def _fail_twice_transient(envelope, marker):
    path = Path(marker)
    seen = len(path.read_text()) if path.exists() else 0
    if seen < 2:
        path.write_text("x" * (seen + 1))
        raise TimeoutError("injected transient fault")
    return execute_envelope(envelope)


def _slow_execute(envelope):
    time.sleep(0.8)
    return execute_envelope(envelope)


# ----------------------------------------------------------------------
def test_fleet_drains_and_results_land_in_shared_store(tmp_path):
    service, campaign = submit(tmp_path)
    fleet = Fleet(tmp_path / "svc", "f1", campaign=campaign,
                  cache_dir=service.cache_dir)
    counters = fleet.run()
    assert counters["committed"] == 2
    assert counters["quarantined"] == 0
    status = fleet.queue.status(campaign)
    assert status["drained"] and status["done"] == 2
    store = DiskCache(service.cache_dir)
    for key in fleet.queue.keys(campaign).values():
        assert store.load(key) is not None


def test_multi_campaign_batch_keys_commits_by_cell_identity(tmp_path):
    """A fleet serving every campaign (``campaign=None``) claims
    batches that span campaigns sharing cell indices (both have cell
    0); every commit must resolve its envelope's own
    (campaign, index, key) — a ``done`` for the *other* campaign's
    cell would durably mark it finished before it ever ran."""
    service = CampaignService(tmp_path / "svc")
    campaign_a = service.submit(SPEC)["campaign"]
    campaign_b = service.submit(dict(SPEC, ops=500))["campaign"]
    service.close()
    assert campaign_a != campaign_b
    fleet = Fleet(tmp_path / "svc", "f1", campaign=None,
                  cache_dir=service.cache_dir, batch=4)
    counters = fleet.run()
    assert counters["committed"] == 4
    assert counters["rejected_commits"] == 0
    store = DiskCache(service.cache_dir)
    for campaign in (campaign_a, campaign_b):
        status = fleet.queue.status(campaign)
        assert status["drained"] and status["done"] == 2
        for key in fleet.queue.keys(campaign).values():
            assert store.load(key) is not None
    # Each durable ``done`` record carries its own campaign's key.
    wal = (tmp_path / "svc" / "queue.wal").read_text().splitlines()
    for record in (json.loads(line) for line in wal):
        if record.get("record") == "done":
            keys = fleet.queue.keys(record["campaign"])
            assert record["key"] == keys[record["index"]]


def test_retry_configuration_threads_to_every_queue_view(tmp_path):
    """The service-level policy/max_attempts reach the coordinator's
    queue and each fleet's queue, so one service directory has one
    re-admission backoff and one quarantine threshold."""
    policy = RetryPolicy(backoff_base=0.01, backoff_cap=0.02,
                         max_delay=0.02, jitter=0.0)
    service = CampaignService(tmp_path / "svc", policy=policy,
                              max_attempts=3)
    assert service.queue.policy is policy
    assert service.queue.max_attempts == 3
    fleet = Fleet(tmp_path / "svc", "f1", policy=policy, max_attempts=3)
    assert fleet.queue.policy is policy
    assert fleet.queue.max_attempts == 3
    service.close()


def test_deterministic_failure_quarantines_with_bundle(tmp_path):
    service, campaign = submit(tmp_path)
    fleet = Fleet(tmp_path / "svc", "f1", campaign=campaign,
                  cache_dir=service.cache_dir,
                  execute=_fail_index0_deterministic,
                  bundle_dir=tmp_path / "bundles")
    counters = fleet.run()
    assert counters["committed"] == 1
    assert counters["quarantined"] == 1
    quarantined = fleet.queue.quarantined(campaign)
    assert list(quarantined) == [0]
    bundle = json.loads(Path(quarantined[0]["bundle"]).read_text())
    assert bundle["schema"] == "cgct-diagnostics/v1"
    assert bundle["kind"] == "cell-failure"
    assert bundle["exc_type"] == "ValueError"
    assert "injected" in bundle["message"]


def test_transient_failure_retries_and_recovers(tmp_path):
    service, campaign = submit(tmp_path)
    fleet = Fleet(
        tmp_path / "svc", "f1", campaign=campaign,
        cache_dir=service.cache_dir, retries=3,
        policy=RetryPolicy(backoff_base=0.01, backoff_cap=0.02,
                           max_delay=0.02),
        execute=lambda env: _fail_twice_transient(
            env, tmp_path / "marker"),
    )
    counters = fleet.run()
    assert counters["committed"] == 2
    assert counters["quarantined"] == 0
    assert fleet.queue.status(campaign)["drained"]


def test_abandoned_cell_is_reclaimed_then_reaped(tmp_path):
    """A cell that transiently fails every claimant: the fleet abandons
    it (lease expires), re-claims with backoff, and once the attempt
    budget is spent the idle-loop reap quarantines it with a bundle —
    never an infinite crash loop, never a silent loss."""
    def always_transient(envelope):
        raise TimeoutError("injected: fails under every claimant")

    service, campaign = submit(tmp_path)
    fleet = Fleet(
        tmp_path / "svc", "f1", campaign=campaign,
        cache_dir=service.cache_dir, retries=0, lease_s=0.05,
        poll_s=0.02, execute=always_transient,
        bundle_dir=tmp_path / "bundles", max_attempts=2,
        policy=RetryPolicy(backoff_base=0.01, backoff_factor=1.0,
                           backoff_cap=0.01, max_delay=0.01, jitter=0.0),
    )
    counters = fleet.run()
    assert counters["committed"] == 0
    assert counters["abandoned"] >= 2
    quarantined = fleet.queue.quarantined(campaign)
    assert sorted(quarantined) == [0, 1]
    for record in quarantined.values():
        bundle = json.loads(Path(record["bundle"]).read_text())
        assert bundle["kind"] == "queue-reap"


def test_stalled_heartbeats_lose_cells_without_double_commit(tmp_path):
    """Chaos: fleet A claims everything, stalls its heartbeats, and
    executes slowly; fleet B reclaims after expiry and finishes. Exactly
    one ``done`` lands per cell, whoever wins the commit race."""
    service, campaign = submit(tmp_path)
    stalled = Fleet(tmp_path / "svc", "stalled", campaign=campaign,
                    cache_dir=service.cache_dir, lease_s=0.2,
                    poll_s=0.02, execute=_slow_execute,
                    stall_heartbeats=True)
    healthy = Fleet(tmp_path / "svc", "healthy", campaign=campaign,
                    cache_dir=service.cache_dir, lease_s=5.0,
                    poll_s=0.02)
    thread = threading.Thread(target=stalled.run, daemon=True)
    thread.start()
    time.sleep(0.25)  # let the stalled fleet's leases expire
    healthy.run()
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    queue = CampaignQueue(tmp_path / "svc")
    status = queue.status(campaign)
    assert status["drained"] and status["done"] == 2
    wal = (tmp_path / "svc" / "queue.wal").read_text().splitlines()
    dones = [json.loads(l) for l in wal
             if json.loads(l).get("record") == "done"]
    assert sorted(d["index"] for d in dones) == [0, 1]
    # Both fleets together committed exactly once per cell.
    total = stalled.committed + healthy.committed
    assert total == 2


def test_sigkilled_fleets_cells_are_reissued_and_identical(tmp_path):
    """The headline lease property, without processes: a claimant that
    vanishes (never commits, never renews) simply loses its cells to
    the next fleet, and the results are the undisturbed ones."""
    service, campaign = submit(tmp_path)
    queue = CampaignQueue(tmp_path / "svc")
    picks = queue.claim("doomed@1", limit=10, lease_s=0.05)
    assert len(picks) == 2  # then the fleet is SIGKILLed: silence
    time.sleep(0.06)
    fleet = Fleet(tmp_path / "svc", "f2", campaign=campaign,
                  cache_dir=service.cache_dir, lease_s=5.0, poll_s=0.02)
    counters = fleet.run()
    assert counters["committed"] == 2
    reference = CampaignService(tmp_path / "ref")
    ref_campaign = reference.submit(SPEC)["campaign"]
    ref_report = reference.run(ref_campaign, fleets=0)
    report = CampaignService(
        tmp_path / "svc", cache_dir=service.cache_dir,
    ).results(campaign)
    assert report.complete
    assert report.result_fingerprint == ref_report.result_fingerprint
