"""The chaos harness itself: plans, tokens, and injection mechanics."""

import errno
import json
import os

import pytest

from repro.service.chaos import (
    CHAOS_ENV,
    ChaosPlan,
    _take_token,
    chaos_execute,
    tokens_spent,
)


def test_plan_round_trips_through_the_environment(tmp_path):
    environ = {}
    plan = ChaosPlan(marker_dir=str(tmp_path), kill_worker=3,
                     disk_full=1, stall_heartbeats=True,
                     protect_pid=1234)
    plan.to_env(environ)
    assert ChaosPlan.from_env(environ) == plan
    ChaosPlan.clear_env(environ)
    assert ChaosPlan.from_env(environ) is None


def test_garbage_env_yields_no_plan():
    assert ChaosPlan.from_env({CHAOS_ENV: "{not json"}) is None
    assert ChaosPlan.from_env({CHAOS_ENV: ""}) is None
    assert ChaosPlan.from_env({}) is None


def test_tokens_are_exactly_once_across_any_claimants(tmp_path):
    taken = sum(1 for _ in range(10)
                if _take_token(tmp_path / "m", "kill", budget=3))
    assert taken == 3
    assert tokens_spent(tmp_path / "m", "kill") == 3
    assert tokens_spent(tmp_path / "m", "enospc") == 0


def test_disk_full_injection_raises_enospc_then_relents(tmp_path):
    plan = ChaosPlan(marker_dir=str(tmp_path / "m"), disk_full=1)
    seen = []
    execute = chaos_execute(plan, inner=lambda env: seen.append(env))

    class Envelope:
        index = 0

    with pytest.raises(OSError) as excinfo:
        execute(Envelope())
    assert excinfo.value.errno == errno.ENOSPC
    assert seen == []
    execute(Envelope())  # budget spent: runs clean
    assert len(seen) == 1


def test_protected_pid_is_never_killed(tmp_path):
    plan = ChaosPlan(marker_dir=str(tmp_path / "m"), kill_worker=5,
                     protect_pid=os.getpid())
    ran = []
    execute = chaos_execute(plan, inner=lambda env: ran.append(env))

    class Envelope:
        index = 0

    execute(Envelope())  # would SIGKILL us if protection failed
    assert len(ran) == 1
    assert tokens_spent(tmp_path / "m", "kill") == 0


def test_marker_records_the_injecting_pid(tmp_path):
    assert _take_token(tmp_path / "m", "kill", budget=1)
    content = (tmp_path / "m" / "kill-0").read_text()
    assert int(content.strip()) == os.getpid()
