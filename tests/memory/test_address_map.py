"""Home-memory-controller interleaving."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memory.address_map import AddressMap
from repro.memory.geometry import Geometry


@pytest.fixture
def amap():
    return AddressMap(Geometry(), num_controllers=2, interleave_bytes=4096)


def test_round_robin_across_controllers(amap):
    assert amap.home_of(0) == 0
    assert amap.home_of(4096) == 1
    assert amap.home_of(8192) == 0


def test_whole_interleave_unit_has_one_home(amap):
    base = 7 * 4096
    home = amap.home_of(base)
    assert all(amap.home_of(base + off) == home for off in (0, 64, 512, 4095))


def test_region_home_matches_address_home(amap):
    geom = amap.geometry
    for address in (0, 512, 123456, 999424):
        region = geom.region_of(address)
        assert amap.home_of_region(region) == amap.home_of(geom.region_base(address))


def test_interleave_smaller_than_region_rejected():
    with pytest.raises(ConfigurationError):
        AddressMap(Geometry(region_bytes=1024), num_controllers=2,
                   interleave_bytes=512)


def test_non_power_of_two_interleave_rejected():
    with pytest.raises(ConfigurationError):
        AddressMap(Geometry(), num_controllers=2, interleave_bytes=3000)


def test_zero_controllers_rejected():
    with pytest.raises(ConfigurationError):
        AddressMap(Geometry(), num_controllers=0)


def test_out_of_range_address_rejected(amap):
    with pytest.raises(ValueError):
        amap.home_of(1 << 40)


def test_addresses_homed_at_generates_only_that_home(amap):
    for controller in range(2):
        addresses = list(amap.addresses_homed_at(controller, count=5))
        assert len(addresses) == 5
        assert all(amap.home_of(a) == controller for a in addresses)


def test_addresses_homed_at_respects_start(amap):
    addresses = list(amap.addresses_homed_at(1, count=3, start=100_000))
    assert all(a >= 100_000 for a in addresses)


def test_addresses_homed_at_bad_controller(amap):
    with pytest.raises(ValueError):
        list(amap.addresses_homed_at(9, count=1))
