"""Memory-controller latency and occupancy model."""

import pytest

from repro.memory.dram import MemoryController


@pytest.fixture
def mc():
    return MemoryController(0, dram_cycles=160, dram_overlapped_cycles=70,
                            occupancy_cycles=5)


def test_direct_access_pays_full_dram(mc):
    assert mc.access_direct(1000) == 1160


def test_snooped_access_pays_only_residual(mc):
    # Fireplane overlaps DRAM with the snoop: +7 system cycles remain.
    assert mc.access_snooped(1000) == 1070


def test_channel_occupancy_queues_reads(mc):
    first = mc.access_direct(0)
    second = mc.access_direct(0)
    assert first == 160
    assert second == 165  # queued 5 cycles behind the first


def test_writeback_does_not_occupy_read_channel(mc):
    mc.write_back(0)
    assert mc.access_direct(0) == 160
    assert mc.writes == 1


def test_counters(mc):
    mc.access_direct(0)
    mc.access_snooped(0)
    mc.write_back(0)
    assert mc.reads == 2
    assert mc.writes == 1


def test_reset(mc):
    mc.access_direct(0)
    mc.write_back(0)
    mc.reset()
    assert mc.reads == 0
    assert mc.writes == 0
    assert mc.access_direct(0) == 160


def test_overlap_larger_than_full_rejected():
    with pytest.raises(ValueError):
        MemoryController(0, dram_cycles=100, dram_overlapped_cycles=200)
