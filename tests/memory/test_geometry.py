"""Address geometry: line/region/page decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.memory.geometry import Geometry


@pytest.fixture
def geom():
    return Geometry()  # 64B lines, 512B regions, 4KB pages, 40-bit


class TestValidation:
    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            Geometry(line_bytes=48)

    def test_region_smaller_than_line_rejected(self):
        with pytest.raises(ConfigurationError):
            Geometry(line_bytes=64, region_bytes=32)

    def test_region_equal_to_line_allowed(self):
        geom = Geometry(region_bytes=64)
        assert geom.lines_per_region == 1

    def test_address_bits_range(self):
        with pytest.raises(ConfigurationError):
            Geometry(physical_address_bits=16)
        with pytest.raises(ConfigurationError):
            Geometry(physical_address_bits=65)


class TestDerived:
    def test_paper_default_sizes(self, geom):
        assert geom.lines_per_region == 8
        assert geom.lines_per_page == 64
        assert geom.regions_per_page == 8
        assert geom.line_offset_bits == 6
        assert geom.region_offset_bits == 9

    def test_region_size_sweep(self):
        assert Geometry(region_bytes=256).lines_per_region == 4
        assert Geometry(region_bytes=1024).lines_per_region == 16

    def test_max_address(self, geom):
        assert geom.max_address == 1 << 40
        assert geom.contains(geom.max_address - 1)
        assert not geom.contains(geom.max_address)
        assert not geom.contains(-1)


class TestDecomposition:
    def test_line_and_region_of(self, geom):
        address = 0x12345
        assert geom.line_of(address) == address // 64
        assert geom.region_of(address) == address // 512
        assert geom.line_base(address) == (address // 64) * 64
        assert geom.region_base(address) == (address // 512) * 512

    def test_region_of_line_consistent(self, geom):
        address = 0xABCDE0
        assert geom.region_of_line(geom.line_of(address)) == geom.region_of(address)

    def test_line_index_in_region(self, geom):
        base = 0x1000  # region-aligned
        for i in range(8):
            assert geom.line_index_in_region(base + i * 64) == i

    def test_lines_in_region_covers_region(self, geom):
        region = geom.region_of(0x2345)
        lines = list(geom.lines_in_region(region))
        assert len(lines) == 8
        assert all(geom.region_of_line(line) == region for line in lines)

    def test_region_addresses_are_line_aligned(self, geom):
        for address in geom.region_addresses(5):
            assert address % 64 == 0
            assert geom.region_of(address) == 5

    @given(st.integers(0, 2**40 - 1))
    def test_line_within_its_region(self, address):
        geom = Geometry()
        line = geom.line_of(address)
        assert line in geom.lines_in_region(geom.region_of(address))

    @given(st.integers(0, 2**40 - 1))
    def test_bases_are_idempotent(self, address):
        geom = Geometry()
        assert geom.region_base(geom.region_base(address)) == geom.region_base(address)
        assert geom.line_base(geom.line_base(address)) == geom.line_base(address)


class TestWithRegionBytes:
    def test_preserves_other_fields(self, geom):
        other = geom.with_region_bytes(1024)
        assert other.region_bytes == 1024
        assert other.line_bytes == geom.line_bytes
        assert other.page_bytes == geom.page_bytes
        assert other.physical_address_bits == geom.physical_address_bits

    def test_rejects_bad_sizes(self, geom):
        with pytest.raises(ConfigurationError):
            geom.with_region_bytes(100)
