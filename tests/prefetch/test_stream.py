"""Stream prefetcher: detection, ramping, direction, exclusivity."""

import pytest

from repro.prefetch.stream import PrefetchCandidate, StreamPrefetcher


@pytest.fixture
def pf():
    return StreamPrefetcher(num_streams=8, runahead=5)


def miss(pf, line, store=False):
    return pf.observe_access(line, is_store=store, was_miss=True)


def hit(pf, line, store=False):
    return pf.observe_access(line, is_store=store, was_miss=False)


class TestDetection:
    def test_single_miss_prefetches_nothing(self, pf):
        assert miss(pf, 100) == []

    def test_second_sequential_miss_confirms_ascending(self, pf):
        miss(pf, 100)
        candidates = miss(pf, 101)
        assert candidates
        assert [c.line for c in candidates][:2] == [102, 103]
        assert pf.streams_confirmed == 1

    def test_descending_stream(self, pf):
        miss(pf, 100)
        candidates = miss(pf, 99)
        assert [c.line for c in candidates][:2] == [98, 97]

    def test_random_misses_never_confirm(self, pf):
        for line in (10, 50, 200, 999, 5):
            assert miss(pf, line) == []
        assert pf.streams_confirmed == 0

    def test_non_adjacent_second_miss_does_not_confirm(self, pf):
        miss(pf, 100)
        assert miss(pf, 102) == []


class TestRamping:
    def test_initial_depth_is_two(self, pf):
        miss(pf, 100)
        candidates = miss(pf, 101)
        # Depth ramps from 2 (+1 on later advances), limiting overshoot.
        assert len(candidates) <= 3

    def test_depth_grows_with_confirmations(self, pf):
        miss(pf, 100)
        issued = {c.line for c in miss(pf, 101)}
        for line in range(102, 110):
            issued |= {c.line for c in hit(pf, line)}
        # After sustained advance the stream runs the full 5 lines ahead.
        assert max(issued) >= 109 + 4

    def test_depth_capped_at_runahead(self):
        pf = StreamPrefetcher(runahead=3)
        miss(pf, 0)
        covered = {c.line for c in miss(pf, 1)}
        for line in range(2, 12):
            covered |= {c.line for c in hit(pf, line)}
            assert max(covered) <= line + 3


class TestAdvanceOnHits:
    def test_stream_keeps_rolling_on_prefetched_hits(self, pf):
        miss(pf, 100)
        miss(pf, 101)
        # Demand now hits the prefetched lines; the stream must advance.
        candidates = hit(pf, 102)
        assert candidates
        assert all(c.line > 102 for c in candidates)

    def test_no_duplicate_prefetches(self, pf):
        miss(pf, 100)
        issued = [c.line for c in miss(pf, 101)]
        for line in range(102, 108):
            issued += [c.line for c in hit(pf, line)]
        assert len(issued) == len(set(issued))


class TestExclusivity:
    def test_load_stream_issues_shared_prefetches(self, pf):
        miss(pf, 100)
        candidates = miss(pf, 101)
        assert all(not c.exclusive for c in candidates)

    def test_store_stream_issues_exclusive_prefetches(self, pf):
        miss(pf, 100, store=True)
        candidates = miss(pf, 101, store=True)
        assert candidates
        assert all(c.exclusive for c in candidates)

    def test_stream_turns_exclusive_when_stores_join(self, pf):
        miss(pf, 100)
        miss(pf, 101)
        candidates = hit(pf, 102, store=True)
        assert all(c.exclusive for c in candidates)


class TestCapacity:
    def test_stream_table_is_bounded(self):
        pf = StreamPrefetcher(num_streams=2, runahead=4)
        for base in (100, 200, 300):
            miss(pf, base)
            miss(pf, base + 1)
        assert pf.active_streams <= 2

    def test_negative_lines_never_prefetched(self, pf):
        miss(pf, 1)
        candidates = miss(pf, 0)
        assert all(c.line >= 0 for c in candidates)

    def test_reset(self, pf):
        miss(pf, 100)
        miss(pf, 101)
        pf.reset()
        assert pf.active_streams == 0
        assert pf.issued == 0


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(num_streams=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(runahead=-1)
