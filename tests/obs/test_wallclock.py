"""Wall-clock spans: the recorder, and the ParallelRunner's use of it."""

from functools import partial
from pathlib import Path

import pytest

from repro.harness.parallel import ExperimentTask, ParallelRunner, \
    execute_envelope
from repro.harness.runlog import RunLog, read_runlog
from repro.obs.span import CLOCK_WALL, validate_span
from repro.obs.wallclock import WallSpanRecorder
from repro.system.config import SystemConfig


class FakeClock:
    def __init__(self, start=100.0):
        self.t = start

    def __call__(self):
        self.t += 0.25
        return self.t


class TestRecorder:
    def test_start_finish_nest_and_validate(self):
        rec = WallSpanRecorder("run-1", clock=FakeClock())
        campaign = rec.start("campaign", experiments=["fig2"])
        sweep = rec.start("sweep", parent_id=campaign)
        rec.finish(sweep, completed=3)
        rec.finish(campaign)
        spans = rec.to_spans()
        assert [s["name"] for s in spans] == ["sweep", "campaign"]
        for span in spans:
            validate_span(span)
            assert span["clock"] == CLOCK_WALL
            assert span["trace_id"] == "run-1"
        assert spans[0]["parent_id"] == campaign
        assert spans[1]["parent_id"] is None
        assert spans[0]["attrs"] == {"completed": 3}
        # The campaign brackets the sweep it parented.
        assert spans[1]["start"] < spans[0]["start"]
        assert spans[1]["end"] > spans[0]["end"]

    def test_add_records_retroactively_and_clamps(self):
        rec = WallSpanRecorder("run-2", clock=FakeClock())
        rec.add("task", 50.0, 58.5, benchmark="barnes")
        rec.add("retry", 60.0, 59.0)  # end before start clamps to instant
        first, second = rec.to_spans()
        assert (first["start"], first["end"]) == (50.0, 58.5)
        assert second["start"] == second["end"] == 60.0

    def test_span_ids_are_unique_per_recorder(self):
        rec = WallSpanRecorder("run-3", clock=FakeClock())
        ids = {rec.add("x", 0, 1) for _ in range(5)}
        ids.add(rec.start("y"))
        assert len(ids) == 6

    def test_default_trace_id_includes_pid(self):
        import os

        rec = WallSpanRecorder(clock=FakeClock())
        assert rec.trace_id.startswith(f"{os.getpid()}-")

    def test_spans_mirror_into_the_runlog(self, tmp_path):
        log_path = tmp_path / "log.jsonl"
        with RunLog(log_path) as log:
            rec = WallSpanRecorder("run-4", runlog=log, clock=FakeClock())
            sweep = rec.start("sweep")
            rec.finish(sweep, completed=1)
        records = read_runlog(log_path)
        mirrored = [r for r in records if r["event"] == "span"]
        assert len(mirrored) == 1
        record = mirrored[0]
        span = rec.to_spans()[0]
        for key in ("trace_id", "span_id", "parent_id", "name",
                    "start", "end", "attrs", "clock"):
            assert record[key] == span[key]


# ----------------------------------------------------------------------
# ParallelRunner integration
# ----------------------------------------------------------------------
def tiny_tasks(count=2):
    return [
        ExperimentTask("barnes", SystemConfig.paper_baseline(), 300,
                       seed=seed, warmup_fraction=0.0)
        for seed in range(count)
    ]


def test_runner_records_sweep_and_task_spans():
    rec = WallSpanRecorder("sweep-test")
    campaign = rec.start("campaign")
    runner = ParallelRunner(workers=0, spans=rec, span_parent=campaign)
    results = runner.run(tiny_tasks())
    rec.finish(campaign)
    assert all(result is not None for result in results)
    spans = {s["name"]: s for s in rec.to_spans()}
    by_name = [s["name"] for s in rec.to_spans()]
    assert by_name.count("task") == 2
    assert by_name.count("sweep") == 1
    sweep = spans["sweep"]
    assert sweep["parent_id"] == campaign
    assert sweep["attrs"] == {"tasks": 2, "workers": 1, "resumed": 0,
                              "completed": 2, "failures": 0,
                              "quarantined": 0}
    tasks = [s for s in rec.to_spans() if s["name"] == "task"]
    for span in tasks:
        validate_span(span)
        assert span["parent_id"] == sweep["span_id"]
        assert span["attrs"]["benchmark"] == "barnes"
        assert span["attrs"]["cache"] == "off"  # no DiskCache configured
        assert span["attrs"]["worker_pid"] > 0
        # Retroactive placement: the task ran inside the sweep window.
        assert sweep["start"] <= span["start"] <= span["end"] <= sweep["end"]
    assert {s["attrs"]["index"] for s in tasks} == {0, 1}


def _poisoned_execute(envelope, marker, fail_times):
    path = Path(marker)
    if envelope.index == 0:
        count = int(path.read_text()) if path.exists() else 0
        if count < fail_times:
            path.write_text(str(count + 1))
            raise RuntimeError("injected transient fault")
    return execute_envelope(envelope)


def test_runner_records_an_instant_retry_span(tmp_path):
    rec = WallSpanRecorder("retry-test")
    execute = partial(_poisoned_execute, marker=str(tmp_path / "marker"),
                      fail_times=1)
    runner = ParallelRunner(workers=0, execute=execute, spans=rec)
    results = runner.run(tiny_tasks())
    assert all(result is not None for result in results)
    retries = [s for s in rec.to_spans() if s["name"] == "retry"]
    assert len(retries) == 1
    retry = retries[0]
    assert retry["start"] == retry["end"]
    assert retry["attrs"]["index"] == 0
    assert retry["attrs"]["attempt"] == 1
    assert retry["attrs"]["will_retry"] is True
    sweep = next(s for s in rec.to_spans() if s["name"] == "sweep")
    assert retry["parent_id"] == sweep["span_id"]
    assert sweep["attrs"]["failures"] == 0  # the retry succeeded


def test_runner_without_spans_records_nothing():
    runner = ParallelRunner(workers=0)
    runner.run(tiny_tasks(1))
    assert runner.spans is None
