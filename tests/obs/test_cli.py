"""The ``trace`` CLI: record → summary → critical-path → export."""

import json

import pytest

from repro.harness.__main__ import main
from repro.obs.export import read_spans, validate_chrome_trace
from repro.obs.span import CLOCK_CYCLES, CLOCK_WALL


@pytest.fixture(scope="module")
def sim_trace(tmp_path_factory):
    """One small traced simulation, shared by the read-only tests."""
    root = tmp_path_factory.mktemp("sim-trace")
    trace = root / "trace.jsonl"
    telemetry = root / "telemetry.json"
    code = main(["trace", "record", "barnes", "--config", "8p-cgct",
                 "--ops", "400", "--out", str(trace),
                 "--telemetry", str(telemetry)])
    assert code == 0
    return trace, telemetry


def test_record_writes_a_valid_span_file(sim_trace, capsys):
    trace, telemetry = sim_trace
    spans = read_spans(trace)
    assert spans
    assert all(s["clock"] == CLOCK_CYCLES for s in spans)
    assert json.loads(telemetry.read_text())["histograms"]


def test_summary_reports_paths_and_verdicts(sim_trace, capsys):
    trace, _ = sim_trace
    assert main(["trace", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "transactions" in out
    assert "broadcast" in out
    assert "avoided" in out


def test_critical_path_reconciles_and_writes_json(sim_trace, tmp_path,
                                                  capsys):
    trace, telemetry = sim_trace
    report_path = tmp_path / "report.json"
    code = main(["trace", "critical-path", str(trace),
                 "--telemetry", str(telemetry),
                 "--json", str(report_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "reconciliation" in out
    report = json.loads(report_path.read_text())
    for entry in report["reconciliation"].values():
        assert entry["mean_delta"] == pytest.approx(0.0)


def test_export_chrome_validates(sim_trace, tmp_path, capsys):
    trace, _ = sim_trace
    out_path = tmp_path / "trace.json"
    code = main(["trace", "export", str(trace), "--chrome",
                 "-o", str(out_path)])
    assert code == 0
    assert "perfetto" in capsys.readouterr().out
    loaded = json.loads(out_path.read_text())
    assert validate_chrome_trace(loaded) == len(read_spans(trace))


def test_export_without_chrome_flag_fails(sim_trace, tmp_path, capsys):
    trace, _ = sim_trace
    code = main(["trace", "export", str(trace),
                 "-o", str(tmp_path / "x.json")])
    assert code == 2
    assert "--chrome" in capsys.readouterr().err


def test_sweep_mode_records_wall_spans(tmp_path, capsys):
    trace = tmp_path / "sweep.jsonl"
    code = main(["trace", "record", "fig2", "--sweep", "--quick",
                 "--ops", "400", "--out", str(trace)])
    assert code == 0
    spans = read_spans(trace)
    names = [s["name"] for s in spans]
    assert all(s["clock"] == CLOCK_WALL for s in spans)
    assert "campaign" in names
    assert "sweep" in names
    assert names.count("task") >= 2
    # One shared trace id, rooted at the campaign.
    assert len({s["trace_id"] for s in spans}) == 1
    campaign = next(s for s in spans if s["name"] == "campaign")
    sweep = next(s for s in spans if s["name"] == "sweep")
    assert sweep["parent_id"] == campaign["span_id"]
    # The wall trace exports and summarizes like any other.
    out_path = tmp_path / "sweep.json"
    assert main(["trace", "export", str(trace), "--chrome",
                 "-o", str(out_path)]) == 0
    validate_chrome_trace(json.loads(out_path.read_text()))
    assert main(["trace", "summary", str(trace)]) == 0
    assert "parallelism" in capsys.readouterr().out


def test_sweep_mode_rejects_unknown_experiments(tmp_path, capsys):
    code = main(["trace", "record", "not-an-experiment", "--sweep",
                 "--out", str(tmp_path / "x.jsonl")])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err
