"""Span files and the Chrome trace-event (Perfetto) exporter."""

import json

import pytest

from repro.obs.export import (
    read_spans,
    to_chrome_trace,
    trace_clock,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans,
)
from repro.obs.span import CLOCK_CYCLES, CLOCK_WALL, make_span


def sim_spans():
    """Two tiny transactions on different processors."""
    spans = []
    for tid, proc in (("0", 2), ("1", 5)):
        spans.append(make_span(tid, f"{tid}:0", None, "transaction",
                               CLOCK_CYCLES, 100, 400,
                               {"proc": proc, "op": "load"}))
        spans.append(make_span(tid, f"{tid}:1", f"{tid}:0", "l1_lookup",
                               CLOCK_CYCLES, 100, 102))
        spans.append(make_span(tid, f"{tid}:2", f"{tid}:0", "dram",
                               CLOCK_CYCLES, 150, 400))
    return spans


def wall_spans():
    sweep = make_span("w", "w:0", None, "sweep", CLOCK_WALL,
                      1000.0, 1010.0, {"tasks": 2})
    return [
        make_span("w", "w:1", "w:0", "task", CLOCK_WALL, 1000.5, 1004.0,
                  {"worker_pid": 111, "benchmark": "barnes"}),
        make_span("w", "w:2", "w:0", "task", CLOCK_WALL, 1001.0, 1009.0,
                  {"worker_pid": 222, "benchmark": "ocean"}),
        sweep,
    ]


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    spans = sim_spans()
    assert write_spans(spans, path) == len(spans)
    assert read_spans(path) == spans


def test_write_rejects_invalid_spans(tmp_path):
    bad = sim_spans()
    bad[1]["schema"] = "not-a-span"
    with pytest.raises(ValueError, match="schema"):
        write_spans(bad, tmp_path / "trace.jsonl")


def test_read_errors_carry_file_and_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    good = sim_spans()[0]
    path.write_text(json.dumps(good) + "\n" + "{broken\n")
    with pytest.raises(ValueError, match=r"trace\.jsonl:2.*not JSON"):
        read_spans(path)
    record = dict(good)
    record["end"] = record["start"] - 1
    path.write_text(json.dumps(good) + "\n\n" + json.dumps(record) + "\n")
    with pytest.raises(ValueError, match=r"trace\.jsonl:3"):
        read_spans(path)


def test_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "trace.jsonl"
    span = sim_spans()[0]
    path.write_text("\n" + json.dumps(span) + "\n\n")
    assert read_spans(path) == [span]


# ----------------------------------------------------------------------
# Clock discipline
# ----------------------------------------------------------------------
def test_trace_clock_detects_each_layer():
    assert trace_clock(sim_spans()) == CLOCK_CYCLES
    assert trace_clock(wall_spans()) == CLOCK_WALL


def test_mixed_clocks_are_refused():
    with pytest.raises(ValueError, match="mixed clocks"):
        trace_clock(sim_spans() + wall_spans())
    with pytest.raises(ValueError, match="mixed clocks"):
        to_chrome_trace(sim_spans() + wall_spans())


def test_empty_trace_is_refused():
    with pytest.raises(ValueError, match="empty"):
        trace_clock([])


# ----------------------------------------------------------------------
# Chrome conversion
# ----------------------------------------------------------------------
def test_cycles_spans_land_on_their_processor_track():
    trace = to_chrome_trace(sim_spans())
    assert validate_chrome_trace(trace) == 6
    assert trace["otherData"]["clock"] == CLOCK_CYCLES
    events = {e["args"]["span_id"]: e
              for e in trace["traceEvents"] if e["ph"] == "X"}
    # Children inherit the transaction's processor via trace_id.
    assert events["0:0"]["pid"] == 2
    assert events["0:1"]["pid"] == 2
    assert events["1:2"]["pid"] == 5
    # One cycle is one microsecond; durations are end - start.
    assert events["0:0"]["ts"] == 100.0
    assert events["0:0"]["dur"] == 300.0
    labels = {e["pid"]: e["args"]["name"]
              for e in trace["traceEvents"] if e["ph"] == "M"}
    assert labels == {2: "cpu2 (simulated)", 5: "cpu5 (simulated)"}


def test_wall_spans_land_on_worker_tracks_relative_to_origin():
    trace = to_chrome_trace(wall_spans())
    assert validate_chrome_trace(trace) == 3
    events = {e["args"]["span_id"]: e
              for e in trace["traceEvents"] if e["ph"] == "X"}
    assert events["w:0"]["pid"] == 0          # coordinator track
    assert events["w:1"]["pid"] == 111
    assert events["w:2"]["pid"] == 222
    # Timestamps are microseconds past the earliest span.
    assert events["w:0"]["ts"] == 0.0
    assert events["w:1"]["ts"] == pytest.approx(0.5e6)
    assert events["w:2"]["dur"] == pytest.approx(8e6)
    labels = {e["pid"]: e["args"]["name"]
              for e in trace["traceEvents"] if e["ph"] == "M"}
    assert labels == {0: "coordinator", 111: "worker 111",
                      222: "worker 222"}


def test_span_identity_survives_in_args():
    trace = to_chrome_trace(sim_spans())
    child = next(e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["args"]["span_id"] == "0:1")
    assert child["args"]["trace_id"] == "0"
    assert child["args"]["parent_id"] == "0:0"
    root = next(e for e in trace["traceEvents"]
                if e["ph"] == "X" and e["args"]["span_id"] == "0:0")
    assert "parent_id" not in root["args"]
    assert root["args"]["op"] == "load"


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(wall_spans(), path)
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == 3
    assert loaded["displayTimeUnit"] == "ms"


@pytest.mark.parametrize("mutate,fragment", [
    (lambda t: t.clear(), "traceEvents"),
    (lambda t: t.update(traceEvents="nope"), "traceEvents"),
    (lambda t: t["traceEvents"].append("nope"), "not an object"),
    (lambda t: t["traceEvents"].append({"ph": "Z", "name": "x",
                                        "pid": 0, "tid": 0}), "ph"),
    (lambda t: t["traceEvents"].append({"ph": "X", "pid": 0, "tid": 0}),
     "name"),
    (lambda t: t["traceEvents"].append(
        {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": "soon",
         "dur": 1}), "number"),
    (lambda t: t["traceEvents"].append(
        {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0,
         "dur": -5}), "negative"),
])
def test_validate_chrome_trace_rejections(mutate, fragment):
    trace = to_chrome_trace(sim_spans())
    mutate(trace)
    with pytest.raises(ValueError, match=fragment):
        validate_chrome_trace(trace)


def test_validate_chrome_trace_rejects_non_object():
    with pytest.raises(ValueError, match="object"):
        validate_chrome_trace([1, 2, 3])
