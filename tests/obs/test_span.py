"""The cgct-span/v1 record: construction and validation."""

import pytest

from repro.obs.span import (
    CLOCK_CYCLES,
    CLOCK_WALL,
    REQUIRED_KEYS,
    SPAN_SCHEMA,
    make_span,
    validate_span,
)


def test_make_span_is_schema_complete():
    span = make_span("7", "7:0", None, "transaction", CLOCK_CYCLES, 10, 20,
                     {"proc": 3})
    assert span["schema"] == SPAN_SCHEMA
    assert set(span) == set(REQUIRED_KEYS)
    validate_span(span)


def test_instant_span_is_valid():
    validate_span(make_span("t", "t:1", "t:0", "fill", CLOCK_WALL, 5.0, 5.0))


def test_missing_attrs_default_to_empty_dict():
    span = make_span("t", "t:0", None, "x", CLOCK_CYCLES, 0, 1)
    assert span["attrs"] == {}


@pytest.mark.parametrize("mutation,fragment", [
    (lambda s: s.pop("trace_id"), "missing"),
    (lambda s: s.update(schema="cgct-span/v0"), "schema"),
    (lambda s: s.update(clock="lamport"), "clock"),
    (lambda s: s.update(name=""), "name"),
    (lambda s: s.update(start="ten"), "numbers"),
    (lambda s: s.update(end=-1, start=0), "before"),
    (lambda s: s.update(attrs=[1, 2]), "attrs"),
])
def test_validate_rejects_malformed_records(mutation, fragment):
    span = make_span("t", "t:0", None, "x", CLOCK_CYCLES, 0, 1)
    mutation(span)
    with pytest.raises(ValueError, match=fragment):
        validate_span(span)


def test_validate_rejects_non_dict():
    with pytest.raises(ValueError):
        validate_span(["not", "a", "span"])
