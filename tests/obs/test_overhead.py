"""Tracer overhead guard: observation must stay cheap.

The cost contract (see docs/tracing.md) is one ``is None`` check per
hook site when no tracer is attached — measured against the pre-hook
code at ≤1.05x, recorded in docs/tracing.md — and bounded bookkeeping
when one is (sampled capture within 1.5x). The disabled case cannot be
re-measured here (the hook-free code no longer exists in the tree), so
these guards cover the enabled modes. Like the telemetry guard next
door, they compare best-of-three wall times with a generous multiplier
plus an absolute slack so timer noise on loaded CI machines cannot
flake them.
"""

import time

from repro.obs.simtrace import SimTracer
from repro.system.config import SystemConfig
from repro.system.simulator import run_workload
from repro.workloads.benchmarks import build_benchmark


def best_of(n, fn) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _setup():
    config = SystemConfig.paper_cgct()
    workload = build_benchmark(
        "barnes", num_processors=config.num_processors,
        ops_per_processor=4000, seed=0,
    )
    return config, workload


def test_sampled_tracer_overhead_within_guard():
    config, workload = _setup()

    def plain():
        run_workload(config, workload, seed=0, warmup_fraction=0.4)

    def sampled():
        run_workload(config, workload, seed=0, warmup_fraction=0.4,
                     tracer=SimTracer(sample=16))

    plain()
    off = best_of(3, plain)
    on = best_of(3, sampled)
    assert on <= off * 1.5 + 0.05, (
        f"sampled tracing overhead too high: {on:.3f}s vs {off:.3f}s "
        f"({on / off:.2f}x)"
    )


def test_ring_capture_is_bounded_and_within_guard():
    config, workload = _setup()

    def plain():
        run_workload(config, workload, seed=0, warmup_fraction=0.4)

    tracers = []

    def flight():
        tracer = SimTracer(ring=64)
        tracers.append(tracer)
        run_workload(config, workload, seed=0, warmup_fraction=0.4,
                     tracer=tracer)

    plain()
    off = best_of(3, plain)
    on = best_of(3, flight)
    # The flight recorder is default-on in the sanitizer, so its cost
    # matters even though it captures everything: the ring bounds memory,
    # not work. Hold it to the same guard as full telemetry.
    assert on <= off * 1.5 + 0.05, (
        f"flight-recorder overhead too high: {on:.3f}s vs {off:.3f}s "
        f"({on / off:.2f}x)"
    )
    assert all(len(t.transactions) == 64 for t in tracers)
