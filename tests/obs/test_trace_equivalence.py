"""The tracer's bit-identity contract.

Attaching a :class:`SimTracer` must never change simulated results —
the same contract the ``snoop="walk"`` reference path and the telemetry
funnel are held to. These tests compare full result fingerprints
(cycles, request routing, hit counters) with tracing off and on, across
CGCT and baseline machines, sampled and ring capture modes, both snoop
implementations, and with telemetry attached alongside.
"""

import pytest

from repro.harness.perfbench import bench_config
from repro.obs.simtrace import SimTracer
from repro.system.simulator import run_workload
from repro.workloads.benchmarks import build_benchmark

OPS = 600


def _workload(config, name="barnes"):
    return build_benchmark(
        name, num_processors=config.num_processors,
        ops_per_processor=OPS, seed=0,
    )


def _fingerprint(result):
    return (
        result.cycles,
        result.stats.total_external,
        result.stats.total_broadcasts,
        result.stats.total_directs,
        result.stats.total_no_requests,
        result.l1_hits,
        result.l2_hits,
    )


def _run(config, workload, tracer=None, **kwargs):
    return run_workload(config, workload, seed=0, tracer=tracer, **kwargs)


@pytest.mark.parametrize("config_name", ["8p-cgct", "8p-baseline"])
def test_tracing_never_changes_results(config_name):
    config = bench_config(config_name)
    workload = _workload(config)
    plain = _fingerprint(_run(config, workload))
    tracer = SimTracer()
    traced = _fingerprint(_run(config, workload, tracer=tracer))
    assert traced == plain
    assert tracer.accesses == config.num_processors * OPS
    assert tracer.recorded == tracer.accesses


def test_sampled_and_ring_modes_are_equivalent_too():
    config = bench_config("8p-cgct")
    workload = _workload(config)
    plain = _fingerprint(_run(config, workload))
    sampled = SimTracer(sample=7)
    assert _fingerprint(_run(config, workload, tracer=sampled)) == plain
    # Ids advance for unsampled accesses: ordinals stay global.
    assert sampled.accesses == config.num_processors * OPS
    assert sampled.recorded == (sampled.accesses + 6) // 7
    ring = SimTracer(ring=32)
    assert _fingerprint(_run(config, workload, tracer=ring)) == plain
    assert len(ring.transactions) == 32


def test_walk_snoop_with_tracer_matches_bitmask_without():
    config = bench_config("8p-cgct")
    workload = _workload(config)
    plain = _fingerprint(_run(config, workload, snoop="bitmask"))
    traced = _fingerprint(
        _run(config, workload, tracer=SimTracer(), snoop="walk")
    )
    assert traced == plain


def test_tracer_coexists_with_telemetry():
    from repro.telemetry import TelemetryRegistry

    config = bench_config("8p-cgct")
    workload = _workload(config)
    plain = _fingerprint(_run(config, workload))
    registry = TelemetryRegistry()
    tracer = SimTracer()
    traced = _fingerprint(
        _run(config, workload, tracer=tracer, telemetry=registry)
    )
    assert traced == plain
    # Both observers saw the same external-request population.
    snapshot = registry.to_dict()
    routes = [
        child for txn in tracer.transactions
        for child in txn.children
        if child[0] in ("external", "prefetch", "nested")
    ]
    total = sum(
        data["count"] for name, data in snapshot["histograms"].items()
        if name.startswith("machine.latency.")
        and name != "machine.latency.demand"
    )
    assert len(routes) == total


def test_warmup_resets_the_tracer_with_the_statistics():
    config = bench_config("8p-cgct")
    workload = _workload(config)
    plain = _fingerprint(_run(config, workload, warmup_fraction=0.4))
    tracer = SimTracer()
    traced = _fingerprint(
        _run(config, workload, tracer=tracer, warmup_fraction=0.4)
    )
    assert traced == plain
    # Every access was seen, but only the measured portion is retained.
    assert tracer.accesses == config.num_processors * OPS
    assert 0 < tracer.recorded < tracer.accesses
    # Retained trace ids are exactly the post-warmup ordinals.
    assert tracer.recorded == tracer.accesses - tracer.transactions[0].trace_id
