"""Trace analysis: summaries, critical paths, telemetry reconciliation."""

import pytest

from repro.harness.perfbench import bench_config
from repro.obs.analyze import (
    PHASES,
    critical_path,
    render_critical_path,
    render_summary,
    summarize,
)
from repro.obs.simtrace import SimTracer
from repro.obs.span import CLOCK_CYCLES, CLOCK_WALL, make_span
from repro.system.simulator import run_workload
from repro.telemetry import TelemetryRegistry
from repro.workloads.benchmarks import build_benchmark

OPS = 500


def traced_run(config_name="8p-cgct", telemetry=None, sample=1):
    config = bench_config(config_name)
    workload = build_benchmark(
        "barnes", num_processors=config.num_processors,
        ops_per_processor=OPS, seed=0,
    )
    tracer = SimTracer(sample=sample)
    run_workload(config, workload, seed=0, tracer=tracer,
                 telemetry=telemetry)
    return tracer


# ----------------------------------------------------------------------
# Cycles traces
# ----------------------------------------------------------------------
def test_summary_accounts_for_every_transaction():
    tracer = traced_run()
    spans = list(tracer.to_spans())
    summary = summarize(spans)
    assert summary["clock"] == CLOCK_CYCLES
    assert summary["spans"] == len(spans)
    assert summary["transactions"] == tracer.recorded
    assert sum(summary["by_path"].values()) == tracer.recorded
    assert sum(summary["by_verdict"].values()) == tracer.recorded
    # A CGCT run exercises both routes plus cache hits.
    assert summary["by_path"].get("broadcast", 0) > 0
    assert summary["by_path"].get("direct", 0) > 0
    assert summary["by_path"].get("l1_hit", 0) > 0
    assert set(summary["by_verdict"]) <= {
        "avoided", "required", "mispredicted", "hit"
    }
    for stats in summary["paths"].values():
        assert stats["count"] > 0
        assert 0 <= stats["mean_cycles"] <= stats["max_cycles"]


def test_summary_latency_means_match_the_raw_spans():
    tracer = traced_run()
    summary = summarize(list(tracer.to_spans()))
    broadcast = [
        t.end - t.start for t in tracer.transactions
        if t.resolved_path == "broadcast"
    ]
    stats = summary["paths"]["broadcast"]
    assert stats["count"] == len(broadcast)
    assert stats["mean_cycles"] == pytest.approx(
        sum(broadcast) / len(broadcast))


def test_critical_path_phases_stay_within_the_mean():
    tracer = traced_run()
    report = critical_path(list(tracer.to_spans()))
    assert set(report["paths"]) == {"broadcast", "direct", "l1_hit",
                                    "l2_hit"}
    for path in ("broadcast", "direct"):
        entry = report["paths"][path]
        assert entry["count"] > 0
        assert entry["phases"], path
        for name, mean in entry["phases"].items():
            assert name in PHASES
            # Phases overlap, but no single phase can outlast the
            # transaction on average.
            assert 0 <= mean <= entry["mean_cycles"] + 1e-9
    # The broadcast path snoops every transaction.
    assert "line_snoop" in report["paths"]["broadcast"]["phases"]
    assert "dram" in report["paths"]["direct"]["phases"]


def test_direct_demand_requests_never_line_snoop():
    # The point of CGCT: the demand portion of a direct transaction (the
    # children before its "external" route record) skips the snoop.
    # Nested prefetches may still broadcast, so the per-path phase
    # aggregate can show line_snoop — the demand window must not.
    tracer = traced_run()
    directs = 0
    for txn in tracer.transactions:
        if txn.resolved_path != "direct":
            continue
        directs += 1
        demand = []
        for name, _, _, _ in txn.children:
            if name == "external":
                break
            demand.append(name)
        assert "line_snoop" not in demand, (txn.trace_id, demand)
        assert "dram" in demand, (txn.trace_id, demand)
    assert directs > 0


def test_reconciliation_is_exact_at_full_sampling():
    registry = TelemetryRegistry()
    tracer = traced_run(telemetry=registry)
    snapshot = registry.to_dict()
    report = critical_path(list(tracer.to_spans()), telemetry=snapshot)
    recon = report["reconciliation"]
    assert recon, "no machine.latency.<path> histograms to reconcile"
    for path, entry in recon.items():
        assert entry["trace_count"] == entry["telemetry_count"], path
        assert entry["trace_mean"] == pytest.approx(
            entry["telemetry_mean"]), path
        assert entry["mean_delta"] == pytest.approx(0.0), path


def test_reconciliation_reports_gaps_under_sampling():
    registry = TelemetryRegistry()
    tracer = traced_run(telemetry=registry, sample=13)
    report = critical_path(list(tracer.to_spans()),
                           telemetry=registry.to_dict())
    # A sampled trace sees fewer events than telemetry; the report says
    # so instead of papering over it.
    assert any(
        entry["trace_count"] < (entry["telemetry_count"] or 0)
        for entry in report["reconciliation"].values()
    )


def test_renderers_produce_text():
    tracer = traced_run()
    spans = list(tracer.to_spans())
    text = render_summary(summarize(spans))
    assert "by path" in text and "broadcast" in text
    text = render_critical_path(critical_path(spans))
    assert "mean demand latency" in text and "dram" in text


# ----------------------------------------------------------------------
# Wall traces
# ----------------------------------------------------------------------
def wall_trace():
    return [
        make_span("w", "w:0", None, "sweep", CLOCK_WALL, 0.0, 10.0,
                  {"tasks": 3}),
        make_span("w", "w:1", "w:0", "task", CLOCK_WALL, 0.0, 6.0,
                  {"worker_pid": 11, "benchmark": "barnes", "index": 0}),
        make_span("w", "w:2", "w:0", "task", CLOCK_WALL, 0.0, 9.0,
                  {"worker_pid": 22, "benchmark": "ocean", "index": 1}),
        make_span("w", "w:3", "w:0", "task", CLOCK_WALL, 6.0, 10.0,
                  {"worker_pid": 11, "benchmark": "tpc-w", "index": 2}),
        make_span("w", "w:4", "w:0", "retry", CLOCK_WALL, 2.0, 2.0,
                  {"index": 1, "attempt": 1}),
    ]


def test_wall_summary_measures_parallelism():
    summary = summarize(wall_trace())
    assert summary["clock"] == "wall"
    assert summary["by_name"]["task"]["count"] == 3
    assert summary["by_name"]["task"]["max_seconds"] == 9.0
    assert summary["sweep_seconds"] == 10.0
    assert summary["task_seconds"] == 19.0
    assert summary["parallelism"] == pytest.approx(1.9)
    assert summary["slowest_tasks"][0]["benchmark"] == "ocean"
    assert summary["slowest_tasks"][0]["seconds"] == 9.0


def test_wall_critical_path_attributes_busy_time_per_worker():
    report = critical_path(wall_trace())
    assert report["clock"] == "wall"
    assert report["workers"]["11"] == {"count": 2, "busy_seconds": 10.0}
    assert report["workers"]["22"] == {"count": 1, "busy_seconds": 9.0}
    assert report["longest_tasks"][0]["benchmark"] == "ocean"
    text = render_critical_path(report)
    assert "worker 11" in text and "busy" in text
