"""SimTracer structure: causal spans, verdicts, capture modes."""

import pytest

from repro.obs.simtrace import SimTracer
from repro.obs.span import validate_span
from repro.system.machine import Machine
from tests.conftest import make_config

LINE = 64


def traced_machine(cgct=True, **tracer_kwargs):
    machine = Machine(make_config(cgct=cgct))
    tracer = SimTracer(**tracer_kwargs)
    machine.attach_tracer(tracer)
    return machine, tracer


def drive(machine, now=0):
    """A tiny scripted scenario: miss, remote share, upgrade, hits."""
    now += machine.load(0, 0x1_0000, now) + 10       # cold broadcast miss
    now += machine.load(1, 0x1_0000, now) + 10       # c2c share
    now += machine.store(0, 0x1_0000, now) + 10      # upgrade
    now += machine.load(0, 0x1_0000, now) + 10       # L1 hit
    now += machine.ifetch(1, 0x2_0000, now) + 10     # ifetch miss
    return now


class TestTransactionStructure:
    def test_every_access_becomes_one_transaction(self):
        machine, tracer = traced_machine()
        drive(machine)
        assert tracer.accesses == 5
        assert tracer.recorded == 5
        ops = [t.op for t in tracer.transactions]
        assert ops == ["load", "load", "store", "load", "ifetch"]

    def test_cold_miss_spans_are_causally_ordered(self):
        machine, tracer = traced_machine()
        drive(machine)
        txn = tracer.transactions[0]
        names = [name for name, _, _, _ in txn.children]
        # Lookups precede the snoop, data movement precedes the fill,
        # and the route record closes the demand request.
        assert names.index("l1_lookup") < names.index("l2_lookup")
        assert names.index("l2_lookup") < names.index("line_snoop")
        assert names.index("line_snoop") < names.index("fill")
        assert "external" in names
        for name, start, end, _ in txn.children:
            assert end >= start, (name, start, end)
        assert txn.end >= txn.start

    def test_rca_decision_recorded_on_cgct_only(self):
        cg_machine, cg_tracer = traced_machine(cgct=True)
        drive(cg_machine)
        base_machine, base_tracer = traced_machine(cgct=False)
        drive(base_machine)
        cg_names = {
            name for t in cg_tracer.transactions
            for name, _, _, _ in t.children
        }
        base_names = {
            name for t in base_tracer.transactions
            for name, _, _, _ in t.children
        }
        assert "rca_lookup" in cg_names
        assert "rca_lookup" not in base_names
        assert "region_snoop" not in base_names

    def test_l1_hit_is_a_one_child_transaction(self):
        machine, tracer = traced_machine()
        drive(machine)
        hit = tracer.transactions[3]
        assert hit.path == "l1_hit"
        assert hit.verdict == "hit"
        assert [name for name, _, _, _ in hit.children] == ["l1_lookup"]


class TestVerdicts:
    def test_baseline_unnecessary_broadcast_is_mispredicted(self):
        machine, tracer = traced_machine(cgct=False)
        # A cold miss nobody else holds: the oracle calls the broadcast
        # avoidable, and the baseline has nothing to filter it with.
        machine.load(0, 0x5_0000, 0)
        txn = tracer.transactions[0]
        assert txn.path == "broadcast"
        assert txn.verdict == "mispredicted"

    def test_remote_dirty_broadcast_is_required(self):
        machine, tracer = traced_machine(cgct=False)
        now = machine.store(0, 0x1_0000, 0) + 10
        machine.load(1, 0x1_0000, now)
        txn = tracer.transactions[-1]
        assert txn.path == "broadcast"
        assert txn.verdict == "required"

    def test_cgct_direct_request_is_avoided(self):
        machine, tracer = traced_machine(cgct=True)
        now = machine.load(0, 0x1_0000, 0) + 10
        # Second line of the now-exclusive region: CGCT routes direct.
        machine.load(0, 0x1_0000 + LINE, now)
        txn = tracer.transactions[-1]
        assert txn.path == "direct"
        assert txn.verdict == "avoided"


class TestCaptureModes:
    def test_ring_keeps_only_the_tail(self):
        machine, tracer = traced_machine(ring=2)
        drive(machine)
        assert tracer.recorded == 5
        assert [t.op for t in tracer.transactions] == ["load", "ifetch"]
        assert [t.trace_id for t in tracer.transactions] == [3, 4]

    def test_sink_streams_finished_records(self):
        streamed = []
        machine = Machine(make_config())
        machine.attach_tracer(SimTracer(sink=streamed.append, keep=False))
        drive(machine)
        assert len(streamed) == 5
        assert streamed[0]["trace_id"] == 0
        assert streamed[0]["spans"]
        assert machine._tracer.transactions == []

    def test_sampling_keeps_global_ordinals(self):
        machine, tracer = traced_machine(sample=2)
        drive(machine)
        assert tracer.accesses == 5
        assert [t.trace_id for t in tracer.transactions] == [0, 2, 4]

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            SimTracer(sample=0)
        with pytest.raises(ValueError):
            SimTracer(ring=0)


class TestHistory:
    def test_history_filters_by_line_and_region(self):
        machine, tracer = traced_machine()
        drive(machine)
        line = 0x1_0000 >> machine._line_shift
        touching = tracer.history(line=line)
        assert [r["op"] for r in touching] == ["load", "load", "store", "load"]
        region = 0x2_0000 >> machine._region_shift
        assert [r["op"] for r in tracer.history(region=region)] == ["ifetch"]
        assert len(tracer.history(last=2)) == 2

    def test_reset_drops_capture_but_keeps_ordinals(self):
        machine, tracer = traced_machine()
        drive(machine)
        tracer.reset()
        assert tracer.transactions == []
        assert tracer.recorded == 0
        assert tracer.accesses == 5
        machine.load(0, 0x9_0000, 10_000)
        assert tracer.transactions[0].trace_id == 5


class TestSpanRecords:
    def test_to_spans_validate_and_parent_correctly(self):
        machine, tracer = traced_machine()
        drive(machine)
        spans = list(tracer.to_spans())
        for span in spans:
            validate_span(span)
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 5
        for root in roots:
            assert root["name"] == "transaction"
            children = [s for s in spans
                        if s["parent_id"] == root["span_id"]]
            assert children, root
            for child in children:
                assert child["trace_id"] == root["trace_id"]

    def test_transaction_record_is_json_ready(self):
        import json

        machine, tracer = traced_machine()
        drive(machine)
        record = tracer.transaction_record(tracer.transactions[0])
        json.dumps(record)  # no enums or objects may leak through
        assert record["address"] == hex(0x1_0000)
        assert record["path"] == "broadcast"
